#!/usr/bin/env bash
# CI entry point. Everything here must pass on a machine with no network
# access: the workspace is hermetic (see CONTRIBUTING.md, "Hermetic
# builds") and this script is what enforces it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: no registry dependencies in any manifest =="
# Path-only dependencies are the policy. A registry dependency is any
# [*dependencies] entry that carries a version requirement instead of a
# `path`/`workspace` reference — catch both the member manifests and the
# [workspace.dependencies] table, plus the lockfile.
fail=0
while IFS= read -r manifest; do
    if awk '
        /^\[.*dependencies[^]]*\]/ { in_deps = 1; next }
        /^\[/                      { in_deps = 0 }
        in_deps && NF && $0 !~ /^#/ \
                && $0 !~ /path *=/ && $0 !~ /\.workspace *= *true/ \
                && $0 !~ /^\s*(features|optional|default-features)\b/ {
            print FILENAME ": " $0
            found = 1
        }
        END { exit !found }
    ' "$manifest"; then
        fail=1
    fi
done < <(git ls-files -co --exclude-standard '*Cargo.toml')
if grep -n 'source = "registry' Cargo.lock; then
    echo "Cargo.lock references a registry package"
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    echo "registry dependencies found — the workspace must stay hermetic" >&2
    exit 1
fi
echo "ok"

echo "== build (release, offline) =="
cargo build --release --offline

# The whole suite runs twice: once pinned to one thread and once with a
# 4-thread pool, so every default-configured Analyzer in every test
# exercises both the sequential and the parallel pipeline (results must
# be bit-identical — par_equiv checks that differentially, this checks
# nothing else regresses under either default).
echo "== tests (offline, MODREF_THREADS=1) =="
MODREF_THREADS=1 cargo test -q --offline

echo "== tests (offline, MODREF_THREADS=4) =="
MODREF_THREADS=4 cargo test -q --offline

# Third pass: fault injection armed. MODREF_FAULT seeds a deterministic
# fault pattern (panics/stalls/budget-exhaustions at solver checkpoints)
# in every guard that arms FaultPlan::from_env — the CLI does, the
# library's plain analyze path must not. Goldens strip the variable
# themselves, guarded suites pin their own plans, so a green run here
# proves (a) nothing hangs or crashes with faults in the environment and
# (b) fault arming is never implicit. Fixed seeds keep failures
# replayable.
for fault_seed in 20260806 7; do
    for t in 1 4; do
        echo "== tests (offline, MODREF_FAULT=$fault_seed, MODREF_THREADS=$t) =="
        MODREF_FAULT=$fault_seed MODREF_THREADS=$t cargo test -q --offline
    done
done

# Drive the binary's degradation contract directly: a tiny op budget must
# degrade (exit 3, not a crash), and the same command unbudgeted must be
# byte-identical to the unguarded run even with MODREF_FAULT unset vs set
# on the clean path (the CLI only arms faults it is told about).
echo "== cli degradation contract =="
MODREF="target/release/modref"
DEMO="examples/programs/demo.mp"
set +e
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --budget-ops 0 >/dev/null 2>ci_degraded.err
code=$?
set -e
if [ "$code" -ne 3 ]; then
    echo "expected exit 3 from a zero budget, got $code" >&2
    exit 1
fi
grep -q "analysis degraded" ci_degraded.err || {
    echo "degraded run must explain itself on stderr" >&2
    exit 1
}
rm -f ci_degraded.err
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" > ci_plain.out
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --timeout-ms 60000 --budget-ops 100000000 > ci_guarded.out
cmp ci_plain.out ci_guarded.out || {
    echo "an untripped guard changed the output" >&2
    exit 1
}
rm -f ci_plain.out ci_guarded.out

# Traced pass: recording must be a pure observer (stdout byte-identical
# to the plain run) and the emitted file must be a valid Chrome trace
# that names the pipeline phases — `trace-check` is the binary's own
# validator, the grep pins the span set.
echo "== cli trace contract =="
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" > ci_plain.out
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --trace ci_trace.json --metrics \
    > ci_traced.out 2> ci_metrics.err
cmp ci_plain.out ci_traced.out || {
    echo "recording a trace changed the report" >&2
    exit 1
}
grep -q "analyze" ci_metrics.err || {
    echo "--metrics must print the span summary on stderr" >&2
    exit 1
}
env -u MODREF_FAULT "$MODREF" trace-check ci_trace.json > ci_tracecheck.out
grep -q "valid trace" ci_tracecheck.out || {
    echo "trace-check did not accept the emitted trace" >&2
    exit 1
}
for phase in analyze frontend local rmod gmod dmod modsets; do
    grep -q "$phase" ci_tracecheck.out || {
        echo "emitted trace is missing the $phase span" >&2
        exit 1
    }
done
rm -f ci_plain.out ci_traced.out ci_metrics.err ci_trace.json ci_tracecheck.out

# Incremental engine: the edit-script differential suites (bit-identity
# to from-scratch after every prefix) at both thread defaults, and the
# exhaustive ≤4-procedure enumeration — the sampling-free solver oracle.
# Both also run inside the full passes above; the explicit invocation
# keeps them from silently dropping out of the suite.
echo "== incremental differential suites (MODREF_THREADS=1 and 4) =="
for t in 1 4; do
    MODREF_THREADS=$t cargo test -q --offline -p modref-incr
done
echo "== exhaustive small-world solver enumeration =="
cargo test -q --offline -p modref-core --test exhaustive

# Set-representation differential wall: the bitset-level op equivalence
# suite, the full-pipeline dense≡hybrid enumeration inside `exhaustive`
# (runs above), and the binary end-to-end — every `--set-repr` value
# must produce a byte-identical report, and the default must be dense.
echo "== set-representation differential wall =="
cargo test -q --offline -p modref-bitset --test repr_equiv
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" > ci_repr_default.out
for repr in dense hybrid auto; do
    env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --set-repr "$repr" > "ci_repr_$repr.out"
    cmp ci_repr_default.out "ci_repr_$repr.out" || {
        echo "--set-repr $repr changed the report" >&2
        exit 1
    }
done
rm -f ci_repr_default.out ci_repr_dense.out ci_repr_hybrid.out ci_repr_auto.out

# Incremental performance gate: a fresh incrscale run must show the
# amortized per-edit cost within 1.10x of a from-scratch re-analysis on
# every workload family (the engine's whole point is to win everywhere;
# see EXPERIMENTS.md E11). The JSON is regenerated from zero so stale
# rows from earlier builds can neither fail a healthy run nor mask a
# regression.
echo "== incremental bench regression gate =="
rm -f target/modref-bench/BENCH_incrscale.json
cargo bench --bench incrscale --offline
cargo run --release --offline -p modref-bench --bin bench_gate -- \
    target/modref-bench/BENCH_incrscale.json 1.10

# Demand-query sublinearity gate: one MOD(site) point query must cost
# < 10% of the exhaustive solve's operation count (the paper's own cost
# units, deterministic) on every workload — see docs/QUERY.md and
# EXPERIMENTS.md E12. Timed rows ride along for the human-readable
# speedup but only the recorded op counts are gated.
echo "== demand-query sublinearity gate =="
rm -f target/modref-bench/BENCH_demand.json
cargo bench --bench demand --offline
cargo run --release --offline -p modref-bench --bin bench_gate -- \
    --pair query_site_ops:exhaustive_ops \
    target/modref-bench/BENCH_demand.json 0.10

# Set-representation auto gate: across the universe × density sweep, the
# representation `--set-repr auto` resolves must never cost more than
# 1.10x dense on any cell (the heuristic may only pick winners; see
# docs/SETREPR.md and the checked-in BENCH_setrepr.json).
echo "== set-representation bench gate =="
rm -f target/modref-bench/BENCH_setrepr.json
cargo bench --bench setrepr --offline
cargo run --release --offline -p modref-bench --bin bench_gate -- \
    --pair auto:dense \
    target/modref-bench/BENCH_setrepr.json 1.10

# The --edits mode end-to-end: a script applies, the report reflects the
# edited program, and a bad script fails with the offending line.
echo "== cli --edits contract =="
printf 'set-local bump mod=count use=total\n' > ci_session.edits
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --edits ci_session.edits > ci_edits.out
grep -q "after 1 edits" ci_edits.out || {
    echo "--edits report must name the applied edit count" >&2
    exit 1
}
printf 'set-local nosuchproc mod=count\n' > ci_session.edits
set +e
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --edits ci_session.edits 2> ci_edits.err
code=$?
set -e
if [ "$code" -ne 1 ]; then
    echo "expected exit 1 from a bad edit script, got $code" >&2
    exit 1
fi
grep -q "script line 1" ci_edits.err || {
    echo "a bad edit script must name the offending line" >&2
    exit 1
}
rm -f ci_session.edits ci_edits.out ci_edits.err

# Served mode end-to-end: boot the daemon on an OS-assigned port, drive
# a full session lifecycle over the wire, and require the served query
# report to be byte-identical to the batch `analyze --json` run — the
# same program must answer the same regardless of transport.
echo "== serve contract =="
env -u MODREF_FAULT "$MODREF" serve --addr 127.0.0.1:0 2> ci_serve.addr &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true' EXIT
for _ in $(seq 1 100); do
    grep -q "listening on" ci_serve.addr 2>/dev/null && break
    sleep 0.1
done
serve_addr=$(sed -n 's/^modref-serve listening on //p' ci_serve.addr | head -1)
if [ -z "$serve_addr" ]; then
    echo "serve never announced its listen address" >&2
    exit 1
fi
printf 'open s examples/programs/demo.mp\nquery s all\nstats\nclose s\n' > ci_drive.txt
env -u MODREF_FAULT "$MODREF" client --addr "$serve_addr" ci_drive.txt \
    > ci_served.out 2> ci_client.err
env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --json > ci_batch.out
cmp ci_served.out ci_batch.out || {
    echo "served query report differs from the batch analyze report" >&2
    exit 1
}
grep -q "sessions=" ci_client.err || {
    echo "stats must report the live session count" >&2
    exit 1
}
kill "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
trap - EXIT
rm -f ci_serve.addr ci_drive.txt ci_served.out ci_client.err ci_batch.out

# The concurrency soak wall, explicitly at both thread defaults: 8
# clients over 16 sessions interleaving open/edit/query, every response
# bit-identical to a from-scratch analysis of the same edited program.
# Both also run inside the full passes above; the explicit invocation
# keeps the wall from silently dropping out of the suite.
echo "== serve soak (MODREF_THREADS=1 and 4) =="
for t in 1 4; do
    MODREF_THREADS=$t cargo test -q --offline -p modref-serve --test soak
done

# The kill-and-restart chaos wall (cargo side): seeded MODREF_CRASH
# aborts mid-edit-stream, restart recovery, torn-tail truncation, the
# late-booting client, and SIGTERM drain — at both thread defaults.
echo "== serve crash wall (MODREF_THREADS=1 and 4) =="
for t in 1 4; do
    MODREF_THREADS=$t cargo test -q --offline -p modref-cli --test chaos
done

# And the same contract end-to-end against the release binary: crash the
# daemon at a seeded point while a client streams edits, restart it on
# the same --state-dir, and require the recovered session's `query all`
# to be byte-identical to `analyze --json --edits` over exactly the
# durable prefix of the stream. Two crash specs × both thread defaults:
# an abort *before* an append (the record is lost) and an abort *mid*
# write (a torn tail recovery must truncate). Record 1 is the open
# snapshot, so edit k is record k+1.
echo "== serve chaos (kill, restart, recover) =="
printf 'set-local deep mod=total,count use=total\nadd-call main bump args=total,3\nremove-call 0\n' > ci_chaos.edits
printf 'open s examples/programs/demo.mp\nedit s ci_chaos.edits\n' > ci_chaos_drive.txt
printf 'query s all\n' > ci_chaos_query.txt
for t in 1 4; do
    for chaos_case in "serve.journal.append:3 1" "serve.journal.torn:4 2"; do
        spec=${chaos_case% *}
        durable=${chaos_case#* }
        echo "--  $spec (MODREF_THREADS=$t): expect $durable durable edits"
        rm -rf ci_chaos_state
        rm -f ci_chaos.addr
        env -u MODREF_FAULT MODREF_CRASH="$spec" MODREF_THREADS=$t \
            "$MODREF" serve --addr 127.0.0.1:0 --state-dir ci_chaos_state 2> ci_chaos.addr &
        chaos_pid=$!
        trap 'kill "$chaos_pid" 2>/dev/null || true' EXIT
        for _ in $(seq 1 100); do
            grep -q "listening on" ci_chaos.addr 2>/dev/null && break
            sleep 0.1
        done
        chaos_addr=$(sed -n 's/^modref-serve listening on //p' ci_chaos.addr | head -1)
        if [ -z "$chaos_addr" ]; then
            echo "chaos serve never announced its listen address" >&2
            exit 1
        fi
        set +e
        env -u MODREF_FAULT "$MODREF" client --addr "$chaos_addr" ci_chaos_drive.txt >/dev/null 2>&1
        client_code=$?
        set -e
        if [ "$client_code" -eq 0 ]; then
            echo "client survived the $spec crash — the daemon never died" >&2
            exit 1
        fi
        if wait "$chaos_pid" 2>/dev/null; then
            echo "daemon exited cleanly through its own $spec crash point" >&2
            exit 1
        fi
        trap - EXIT

        # Restart on the surviving state dir and compare the recovered
        # session against a from-scratch run over the durable prefix.
        rm -f ci_chaos.addr
        env -u MODREF_FAULT MODREF_THREADS=$t \
            "$MODREF" serve --addr 127.0.0.1:0 --state-dir ci_chaos_state 2> ci_chaos.addr &
        chaos_pid=$!
        trap 'kill "$chaos_pid" 2>/dev/null || true' EXIT
        for _ in $(seq 1 100); do
            grep -q "listening on" ci_chaos.addr 2>/dev/null && break
            sleep 0.1
        done
        chaos_addr=$(sed -n 's/^modref-serve listening on //p' ci_chaos.addr | head -1)
        env -u MODREF_FAULT "$MODREF" client --addr "$chaos_addr" ci_chaos_query.txt \
            > ci_chaos_served.out
        head -n "$durable" ci_chaos.edits > ci_chaos_prefix.edits
        env -u MODREF_FAULT "$MODREF" analyze "$DEMO" --json --edits ci_chaos_prefix.edits \
            > ci_chaos_batch.out
        cmp ci_chaos_served.out ci_chaos_batch.out || {
            echo "$spec: recovered report is not the $durable-edit durable prefix" >&2
            exit 1
        }
        kill "$chaos_pid"
        wait "$chaos_pid" 2>/dev/null || true
        trap - EXIT
    done
done
rm -rf ci_chaos_state
rm -f ci_chaos.edits ci_chaos_drive.txt ci_chaos_query.txt ci_chaos.addr \
    ci_chaos_prefix.edits ci_chaos_served.out ci_chaos_batch.out

echo "CI green"
