#!/usr/bin/env bash
# CI entry point. Everything here must pass on a machine with no network
# access: the workspace is hermetic (see CONTRIBUTING.md, "Hermetic
# builds") and this script is what enforces it.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: no registry dependencies in any manifest =="
# Path-only dependencies are the policy. A registry dependency is any
# [*dependencies] entry that carries a version requirement instead of a
# `path`/`workspace` reference — catch both the member manifests and the
# [workspace.dependencies] table, plus the lockfile.
fail=0
while IFS= read -r manifest; do
    if awk '
        /^\[.*dependencies[^]]*\]/ { in_deps = 1; next }
        /^\[/                      { in_deps = 0 }
        in_deps && NF && $0 !~ /^#/ \
                && $0 !~ /path *=/ && $0 !~ /\.workspace *= *true/ \
                && $0 !~ /^\s*(features|optional|default-features)\b/ {
            print FILENAME ": " $0
            found = 1
        }
        END { exit !found }
    ' "$manifest"; then
        fail=1
    fi
done < <(git ls-files -co --exclude-standard '*Cargo.toml')
if grep -n 'source = "registry' Cargo.lock; then
    echo "Cargo.lock references a registry package"
    fail=1
fi
if [ "$fail" -ne 0 ]; then
    echo "registry dependencies found — the workspace must stay hermetic" >&2
    exit 1
fi
echo "ok"

echo "== build (release, offline) =="
cargo build --release --offline

# The whole suite runs twice: once pinned to one thread and once with a
# 4-thread pool, so every default-configured Analyzer in every test
# exercises both the sequential and the parallel pipeline (results must
# be bit-identical — par_equiv checks that differentially, this checks
# nothing else regresses under either default).
echo "== tests (offline, MODREF_THREADS=1) =="
MODREF_THREADS=1 cargo test -q --offline

echo "== tests (offline, MODREF_THREADS=4) =="
MODREF_THREADS=4 cargo test -q --offline

echo "CI green"
