//! Regular sections in action (§6): deciding whether a loop whose body is
//! a procedure call can run its iterations in parallel.
//!
//! Whole-array `MOD` information must serialise both loops below — each
//! call "modifies `grid`". Regular sections distinguish the row-wise loop
//! (iterations touch disjoint rows → parallel) from the accumulating loop
//! (every iteration writes the same row → serial).
//!
//! ```text
//! cargo run -p modref-sections --example parallelizer
//! ```

use std::error::Error;

use modref_frontend::parse_program;
use modref_sections::{analyze_sections, independent_across_iterations};

fn main() -> Result<(), Box<dyn Error>> {
    let source = "
        var grid[*, *];

        proc smooth_row(row[*], n) {
          var j;
          j = 0;
          while (j < n) { row[j] = row[j] * 2; j = j + 1; }
        }

        proc add_into_first(row[*], n) {
          var j;
          j = 0;
          while (j < n) { grid[0, j] = grid[0, j] + row[j]; j = j + 1; }
        }

        main {
          var i, n;
          read n;

          i = 0;
          while (i < n) {            # loop A: parallelisable
            call smooth_row(grid[i, *], value n);
            i = i + 1;
          }

          i = 1;
          while (i < n) {            # loop B: carries a dependence
            call add_into_first(grid[i, *], value n);
            i = i + 1;
          }
        }
    ";

    let program = parse_program(source)?;
    let sections = analyze_sections(&program);

    let grid = program
        .vars()
        .find(|&v| program.var_name(v) == "grid")
        .expect("grid exists");
    let loop_i = program
        .vars()
        .find(|&v| program.var_name(v) == "i")
        .expect("i exists");

    println!("per-call-site sections of `grid`:\n");
    let mut verdicts = Vec::new();
    for site in program.sites() {
        let callee = program.proc_name(program.site(site).callee());
        let mod_sec = sections.mod_section_at_site(site, grid);
        let use_sec = sections.use_section_at_site(site, grid);
        println!(
            "  call {callee:<15} MOD(grid) = {:<12} USE(grid) = {}",
            mod_sec.map_or("∅".to_owned(), |s| s.display_named(&program)),
            use_sec.map_or("∅".to_owned(), |s| s.display_named(&program)),
        );

        // The loop is parallel only if BOTH the writes and the reads of
        // each iteration stay inside the iteration's own slice.
        let writes_private = mod_sec.is_none_or(|s| independent_across_iterations(s, loop_i));
        let reads_private = use_sec.is_none_or(|s| independent_across_iterations(s, loop_i));
        verdicts.push(writes_private && reads_private);
    }

    println!();
    println!(
        "loop A (smooth_row):     {}",
        if verdicts[0] {
            "PARALLELISABLE — each iteration owns row i"
        } else {
            "serial"
        }
    );
    println!(
        "loop B (add_into_first): {}",
        if verdicts[1] {
            "parallelisable"
        } else {
            "SERIAL — every iteration hits grid[0, *]"
        }
    );

    if !verdicts[0] || verdicts[1] {
        return Err("section analysis did not separate the two loops".into());
    }
    Ok(())
}
