//! Lexical nesting (§3.3 and §4): a Pascal-style program where a deeply
//! nested procedure modifies variables at several enclosing levels, and
//! the multi-level `GMOD` algorithm keeps each local confined to the
//! scope that declared it.
//!
//! ```text
//! cargo run -p modref-core --example pascal_nesting
//! ```

use std::error::Error;

use modref_core::{Analyzer, GmodAlgorithm};
use modref_frontend::parse_program;

fn main() -> Result<(), Box<dyn Error>> {
    let source = "
        var depth0;                      # a true global

        proc outer(x) {
          var depth1;                    # local to outer
          proc middle() {
            var depth2;                  # local to middle
            proc innermost() {
              depth0 = 1;                # touches every level
              depth1 = 2;
              depth2 = 3;
              x = 4;                     # outer's reference formal!
            }
            call innermost();
          }
          call middle();
        }

        main {
          var m;
          call outer(m);
        }
    ";

    let program = parse_program(source)?;
    let summary = Analyzer::new()
        .gmod_algorithm(GmodAlgorithm::MultiLevelFused)
        .analyze(&program);

    let proc_by_name = |name: &str| {
        program
            .procs()
            .find(|&p| program.proc_name(p) == name)
            .expect("procedure exists")
    };
    let var_by_name = |name: &str| {
        program
            .vars()
            .find(|&v| program.var_name(v) == name)
            .expect("variable exists")
    };

    println!("GMOD per procedure (what an invocation may modify):\n");
    for name in ["innermost", "middle", "outer", "main"] {
        let p = proc_by_name(name);
        let mut mods: Vec<&str> = summary
            .gmod(p)
            .iter()
            .map(|i| program.var_name(modref_ir::VarId::new(i)))
            .collect();
        mods.sort_unstable();
        println!("  GMOD({name:<9}) = {{{}}}", mods.join(", "));
    }

    // Each `depthN` local is visible in GMOD up to its declaring scope and
    // no further.
    let (outer, middle, main) = (
        proc_by_name("outer"),
        proc_by_name("middle"),
        program.main(),
    );
    assert!(summary.gmod(middle).contains(var_by_name("depth1").index()));
    assert!(!summary.gmod(main).contains(var_by_name("depth1").index()));
    assert!(!summary.gmod(outer).contains(var_by_name("depth2").index()));
    assert!(summary.gmod(main).contains(var_by_name("depth0").index()));

    // The write to outer's formal three scopes down is a reference-formal
    // effect: RMOD(outer) reports it, and main's call site sees `m`
    // modified.
    assert!(summary.rmod(outer).contains(var_by_name("x").index()));
    let site = program
        .sites()
        .find(|&s| program.site(s).caller() == main)
        .expect("main calls outer");
    assert!(summary.mod_site(site).contains(var_by_name("m").index()));
    println!("\ncall outer(m) in main: MOD contains m — the write reaches up through");
    println!("three nesting levels via the reference formal, while depth1/depth2 stay confined.");
    Ok(())
}
