//! The paper's §2 motivation, quantified: in a FORTRAN-style program with
//! many globals, "if the compiler has no knowledge about the called
//! procedure, it must assume that the called procedure both uses and
//! modifies the value of every variable it can see. In practice, the
//! called procedure typically modifies only a fraction of these
//! variables."
//!
//! This example builds a global-heavy random program, runs the analysis,
//! and compares the computed `MOD` sets against the no-information
//! assumption, printing the precision gained.
//!
//! ```text
//! cargo run -p modref-core --example fortran_mod
//! ```

use std::error::Error;

use modref_core::Analyzer;
use modref_progen::{generate, GenConfig};

fn main() -> Result<(), Box<dyn Error>> {
    let program = generate(&GenConfig::fortran_like(120), 7);
    let summary = Analyzer::new().analyze(&program);

    let globals = program.global_set();
    let mut assumed_total = 0usize; // "modifies everything visible"
    let mut actual_total = 0usize; // computed MOD
    let mut exact_sites = 0usize; // sites where MOD is empty

    for site in program.sites() {
        // Without interprocedural analysis, every global plus every
        // by-reference actual must be assumed clobbered.
        let info = program.site(site);
        let mut assumed = globals.len();
        for arg in info.args() {
            if arg.as_ref_var().is_some() {
                assumed += 1;
            }
        }
        let actual = summary.mod_site(site).len();
        assumed_total += assumed;
        actual_total += actual;
        if actual == 0 {
            exact_sites += 1;
        }
    }

    println!(
        "program: {} procedures, {} call sites, {} globals",
        program.num_procs(),
        program.num_sites(),
        globals.len()
    );
    println!("worst-case assumption: {assumed_total} variable slots clobbered across all sites");
    println!("computed MOD:          {actual_total} variable slots actually at risk");
    let pct = 100.0 * (1.0 - actual_total as f64 / assumed_total.max(1) as f64);
    println!("precision gained:      {pct:.1}% of assumed side effects ruled out");
    println!("side-effect-free call sites found: {exact_sites}");

    // Sanity: the analysis can only rule effects *out*, never overshoot
    // the conservative assumption on globals it knows about.
    if actual_total > assumed_total {
        return Err("computed MOD exceeded the conservative bound".into());
    }
    Ok(())
}
