//! Using `Summary::may_interfere` as a task scheduler would: partition a
//! straight-line sequence of calls into *waves* that could run
//! concurrently, because no call in a wave writes anything another call
//! in the wave touches.
//!
//! ```text
//! cargo run -p modref-core --example scheduler
//! ```

use std::error::Error;

use modref_core::Analyzer;
use modref_frontend::parse_program;
use modref_ir::Stmt;

fn main() -> Result<(), Box<dyn Error>> {
    let source = "
        var inbox, parsed, index, stats, archive;

        proc parse()     { parsed = inbox + 1; }
        proc build_idx() { index = parsed * 2; }
        proc tally()     { stats = parsed * 3; }       # independent of build_idx
        proc archive_it(){ archive = inbox; }          # independent of both
        proc publish()   { inbox = index + stats; }

        main {
          call parse();
          call build_idx();
          call tally();
          call archive_it();
          call publish();
        }
    ";

    let program = parse_program(source)?;
    let summary = Analyzer::new().analyze(&program);

    // The call statements of main, in order.
    let calls: Vec<_> = program
        .proc_(program.main())
        .body()
        .iter()
        .filter_map(|s| match s {
            Stmt::Call { site } => Some(*site),
            _ => None,
        })
        .collect();

    // Greedy wave construction: a call joins the current wave when it
    // does not interfere with any member; otherwise it starts a new wave.
    // (Order within the original sequence is respected: a call must also
    // not interfere with anything *left behind* in an earlier position —
    // greedy adjacency keeps this simple for the demo.)
    let mut waves: Vec<Vec<modref_ir::CallSiteId>> = Vec::new();
    for &site in &calls {
        let fits = waves.last().is_some_and(|wave| {
            wave.iter()
                .all(|&other| !summary.may_interfere(site, other))
        });
        if fits {
            waves.last_mut().expect("non-empty").push(site);
        } else {
            waves.push(vec![site]);
        }
    }

    println!("call waves (members of one wave could run concurrently):\n");
    for (i, wave) in waves.iter().enumerate() {
        let names: Vec<&str> = wave
            .iter()
            .map(|&s| program.proc_name(program.site(s).callee()))
            .collect();
        println!("  wave {i}: {}", names.join(" | "));
    }

    // The pipeline structure the summaries recover:
    //   parse → {build_idx, tally, archive_it…} → publish
    if waves.len() >= 3 && waves[1].len() >= 2 {
        println!(
            "\n{} calls compressed into {} dependence-ordered waves.",
            calls.len(),
            waves.len()
        );
        Ok(())
    } else {
        Err("expected the middle calls to share a wave".into())
    }
}
