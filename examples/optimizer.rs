//! The optimizer clients end to end: dead-store elimination, call-site
//! purity classes, and loop-invariant call hoisting on one program —
//! with the "no interprocedural information" counterfactual alongside,
//! which is the comparison §2 of the paper is about.
//!
//! ```text
//! cargo run -p modref-opt --example optimizer
//! ```

use std::error::Error;

use modref_core::Analyzer;
use modref_frontend::parse_program;
use modref_opt::{
    classify_sites, eliminate_dead_stores, eliminate_dead_stores_assuming_worst,
    find_hoistable_calls, SiteClass,
};

fn main() -> Result<(), Box<dyn Error>> {
    let source = "
        var config, total, log_count;

        proc get_config() { print config; }          # observer
        proc accumulate(x) { total = total + x; }    # mutator
        proc note() { log_count = log_count + 1; }   # mutator

        proc work(n) {
          var cache, i;
          cache = config;          # dead: nothing below reads cache
          call note();             # note() provably ignores cache
          i = 0;
          while (i < n) {
            call get_config();     # invariant: loop never writes config
            call accumulate(value i);
            i = i + 1;
          }
        }

        main { call work(value 10); }
    ";

    let program = parse_program(source)?;
    let summary = Analyzer::new().analyze(&program);

    // 1. Dead stores, with and without the summaries.
    let with = eliminate_dead_stores(&program, &summary);
    let without = eliminate_dead_stores_assuming_worst(&program);
    println!("dead stores removed:");
    println!("  with interprocedural USE:    {}", with.removed);
    println!("  assuming calls read all:     {}", without.removed);
    println!(
        "  (of which across calls:      {})",
        with.removed_across_calls
    );

    // 2. Purity classes.
    let classes = classify_sites(&program, &summary);
    println!("\ncall-site classes:");
    for (site, class) in classes.iter() {
        println!(
            "  call {:<12} {:?}",
            program.proc_name(program.site(site).callee()),
            class
        );
    }

    // 3. Hoistable calls.
    let hoistable = find_hoistable_calls(&program, &summary);
    println!("\nloop-invariant calls: {}", hoistable.len());
    for h in &hoistable {
        println!(
            "  call {} (in {}) can move out of its loop",
            program.proc_name(program.site(h.site).callee()),
            program.proc_name(h.proc_)
        );
    }

    // The story this example tells:
    let ok = with.removed == 1
        && without.removed == 0
        && hoistable.len() == 1
        && classes.iter().any(|(_, c)| c == SiteClass::Observer);
    if ok {
        println!("\nEverything above is impossible without the summaries: the");
        println!("worst-case compiler removes 0 stores, hoists 0 calls, and must");
        println!("treat every call as a mutator.");
        Ok(())
    } else {
        Err("unexpected optimization results".into())
    }
}
