//! Quickstart: parse a MiniProc program and print the `MOD`/`USE`
//! summary of every call site.
//!
//! ```text
//! cargo run -p modref-core --example quickstart
//! ```

use std::error::Error;

use modref_core::Analyzer;
use modref_frontend::parse_program;

fn main() -> Result<(), Box<dyn Error>> {
    let source = "
        var total, count;

        proc bump(x, amount) {
          x = x + amount;
          count = count + 1;
        }

        proc reset(x) {
          x = 0;
        }

        main {
          var acc;
          call bump(total, value 5);
          call bump(acc, value 1);
          call reset(count);
        }
    ";

    let program = parse_program(source)?;
    let summary = Analyzer::new().analyze(&program);

    println!("call-site side effects (flow-insensitive):\n");
    for site in program.sites() {
        let info = program.site(site);
        let names = |set: &modref_bitset::BitSet| -> String {
            let mut v: Vec<&str> = set
                .iter()
                .map(|i| program.var_name(modref_ir::VarId::new(i)))
                .collect();
            v.sort_unstable();
            if v.is_empty() {
                "∅".to_owned()
            } else {
                v.join(", ")
            }
        };
        println!(
            "  call {}(…) in {}:",
            program.proc_name(info.callee()),
            program.proc_name(info.caller()),
        );
        println!("    MOD = {{{}}}", names(summary.mod_site(site)));
        println!("    USE = {{{}}}", names(summary.use_site(site)));
    }

    // A compiler would use this to keep `total` in a register across the
    // call to reset(count), because total ∉ MOD of that site:
    let reset_site = program
        .sites()
        .last()
        .expect("the program has three call sites");
    let total = program
        .vars()
        .find(|&v| program.var_name(v) == "total")
        .expect("total exists");
    assert!(!summary.mod_site(reset_site).contains(total.index()));
    println!("\n`total` survives the reset(count) call — safe to keep in a register.");
    Ok(())
}
