//! An elimination-method `GMOD` solver — the Graham–Wegman-style
//! comparator §2 alludes to ("both the iterative algorithm and the
//! Graham-Wegman algorithm will achieve their fast time bounds").
//!
//! Equation (4)'s transfer functions have the closed form
//! `f(X) = (X ∖ K) ∪ C` with `K` a union of `LOCAL` sets and `C` a
//! constant. This family is closed under the three elimination
//! operations:
//!
//! * **composition** `f₂∘f₁`: `K = K₁ ∪ K₂`, `C = (C₁ ∖ K₂) ∪ C₂`;
//! * **union** (parallel edges): `K = K₁ ∩ K₂`, `C = C₁ ∪ C₂`;
//! * **loop closure** `f*`: because the system is *rapid* in the
//!   Kam–Ullman sense, `f*(X) = X ∪ f(X) = X ∪ C` — one extra
//!   application, no iteration. (`(X ∖ K) ⊆ X` and `f²(X) ⊆ f(X) ∪ C`.)
//!
//! With those, straightforward Gaussian elimination on the equation
//! system `GMOD(p) = IMOD⁺(p) ∪ ⋃_{(p,q)} f_q(GMOD(q))` solves the
//! problem on *any* graph, reducible or not — at `O(N³)` transfer-function
//! operations in the worst case, which is exactly why the paper's
//! linear-time depth-first method wins. Used as a third `GMOD` oracle and
//! as the elimination-cost comparator.

use std::collections::HashMap;

use modref_bitset::{BitSet, OpCounter};
use modref_graph::DiGraph;
use modref_ir::{ProcId, Program};

/// `f(X) = (X ∖ kill) ∪ constant` — the closed transfer-function family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferFn {
    /// Variables removed (unions of callee `LOCAL` sets).
    pub kill: BitSet,
    /// Variables added unconditionally.
    pub constant: BitSet,
}

impl TransferFn {
    /// The identity function over a universe of `domain` variables.
    pub fn identity(domain: usize) -> Self {
        TransferFn {
            kill: BitSet::new(domain),
            constant: BitSet::new(domain),
        }
    }

    /// The equation-(4) edge function `X ↦ X ∖ local`.
    pub fn minus(local: &BitSet) -> Self {
        TransferFn {
            kill: local.clone(),
            constant: BitSet::new(local.domain()),
        }
    }

    /// Applies the function.
    pub fn apply(&self, x: &BitSet) -> BitSet {
        let mut out = x.clone();
        out.difference_with(&self.kill);
        out.union_with(&self.constant);
        out
    }

    /// `self ∘ earlier` (run `earlier` first).
    pub fn compose_after(&self, earlier: &TransferFn) -> TransferFn {
        let mut constant = earlier.constant.clone();
        constant.difference_with(&self.kill);
        constant.union_with(&self.constant);
        let mut kill = earlier.kill.clone();
        kill.union_with(&self.kill);
        TransferFn { kill, constant }
    }

    /// Pointwise union with another function (parallel edges).
    pub fn union_with_fn(&mut self, other: &TransferFn) {
        self.kill.intersect_with(&other.kill);
        self.constant.union_with(&other.constant);
    }

    /// Loop closure `f* = id ∪ f ∪ f² ∪ …`; rapid, so `X ∪ C` suffices.
    pub fn star(&self) -> TransferFn {
        TransferFn {
            kill: BitSet::new(self.kill.domain()),
            constant: self.constant.clone(),
        }
    }
}

/// The elimination solver's result.
#[derive(Debug, Clone)]
pub struct EliminationGmod {
    gmod: Vec<BitSet>,
    stats: OpCounter,
}

impl EliminationGmod {
    /// `GMOD(p)`.
    pub fn gmod(&self, p: ProcId) -> &BitSet {
        &self.gmod[p.index()]
    }

    /// All sets, indexed by procedure.
    pub fn gmod_all(&self) -> &[BitSet] {
        &self.gmod
    }

    /// Work counters: `bitvec_steps` counts transfer-function operations
    /// (each touches up to three whole vectors).
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// Solves equation (4) by Gaussian elimination over the
/// [`TransferFn`] family.
///
/// Eliminates procedures in ascending id order: procedure `n`'s equation
/// is first self-closed (`f*` on its self-coefficient, exact because the
/// system is rapid), then substituted into every remaining equation.
/// Back-substitution then evaluates the triangular system. Works on
/// irreducible graphs.
///
/// # Panics
///
/// Panics if the slice lengths differ from `program.num_procs()`.
pub fn elimination_gmod(
    program: &Program,
    call_graph: &DiGraph,
    seeds: &[BitSet],
    locals: &[BitSet],
) -> EliminationGmod {
    assert_eq!(seeds.len(), program.num_procs(), "one seed per procedure");
    assert_eq!(locals.len(), program.num_procs(), "one LOCAL per procedure");
    let n = call_graph.num_nodes();
    let nv = program.num_vars();
    let mut stats = OpCounter::new();

    // equations[p]: constant ∪ ⋃ coeff[q](X_q)
    let mut constants: Vec<BitSet> = seeds.to_vec();
    let mut coeffs: Vec<HashMap<usize, TransferFn>> = vec![HashMap::new(); n];
    #[allow(clippy::needless_range_loop)] // p indexes both the graph and coeffs
    for p in 0..n {
        for q in call_graph.successor_nodes(p) {
            let f = TransferFn::minus(&locals[q]);
            stats.bitvec_steps += 1;
            coeffs[p]
                .entry(q)
                .and_modify(|existing| existing.union_with_fn(&f))
                .or_insert(f);
        }
    }

    // Forward elimination.
    for v in 0..n {
        // Close the self-loop: X_v = f(X_v) ∪ R  ⇒  X_v = f*(R).
        if let Some(self_fn) = coeffs[v].remove(&v) {
            let closure = self_fn.star();
            stats.bitvec_steps += 1;
            constants[v] = closure.apply(&constants[v]);
            let entries: Vec<(usize, TransferFn)> = coeffs[v].drain().collect();
            for (q, f) in entries {
                coeffs[v].insert(q, closure.compose_after(&f));
                stats.bitvec_steps += 1;
            }
        }
        // Substitute X_v into every later equation that references it.
        let v_constant = constants[v].clone();
        let v_coeffs: Vec<(usize, TransferFn)> =
            coeffs[v].iter().map(|(&q, f)| (q, f.clone())).collect();
        for p in (v + 1)..n {
            let Some(g) = coeffs[p].remove(&v) else {
                continue;
            };
            stats.bitvec_steps += 1;
            constants[p].union_with(&g.apply(&v_constant));
            for (q, f) in &v_coeffs {
                let through = g.compose_after(f);
                stats.bitvec_steps += 1;
                if *q == p {
                    // Became a self-loop of p; fold at p's own turn.
                    coeffs[p]
                        .entry(p)
                        .and_modify(|e| e.union_with_fn(&through))
                        .or_insert(through);
                } else {
                    coeffs[p]
                        .entry(*q)
                        .and_modify(|e| e.union_with_fn(&through))
                        .or_insert(through);
                }
            }
        }
    }

    // Back-substitution. Pass v removed every reference to v from the
    // later equations, and each equation's self-loop was closed at its
    // own turn, so after forward elimination equation p references only
    // q > p: the system is triangular. Solve descending.
    let mut gmod: Vec<BitSet> = vec![BitSet::new(nv); n];
    for p in (0..n).rev() {
        let mut value = constants[p].clone();
        let entries: Vec<(usize, TransferFn)> =
            coeffs[p].iter().map(|(&q, f)| (q, f.clone())).collect();
        for (q, f) in entries {
            debug_assert!(q > p, "elimination left a reference to an unsolved node");
            stats.bitvec_steps += 1;
            value.union_with(&f.apply(&gmod[q]));
        }
        gmod[p] = value;
    }

    EliminationGmod { gmod, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{CallGraph, Expr, LocalEffects, ProgramBuilder};

    fn compare_with_findgmod(b: &ProgramBuilder) {
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let cg = CallGraph::build(&program);
        let locals = program.local_sets();
        let fast = modref_core::solve_gmod_one_level(&program, cg.graph(), fx.imod_all(), &locals);
        let elim = elimination_gmod(&program, cg.graph(), fx.imod_all(), &locals);
        for p in program.procs() {
            assert_eq!(fast.gmod(p), elim.gmod(p), "at {p}");
        }
    }

    #[test]
    fn transfer_function_algebra() {
        let k1 = BitSet::from_iter_with_domain(8, [1, 2]);
        let c1 = BitSet::from_iter_with_domain(8, [2, 3]);
        let k2 = BitSet::from_iter_with_domain(8, [3]);
        let c2 = BitSet::from_iter_with_domain(8, [4]);
        let f1 = TransferFn {
            kill: k1,
            constant: c1,
        };
        let f2 = TransferFn {
            kill: k2,
            constant: c2,
        };
        let x = BitSet::from_iter_with_domain(8, [0, 1, 3]);
        // Compose must equal sequential application.
        let composed = f2.compose_after(&f1);
        assert_eq!(composed.apply(&x), f2.apply(&f1.apply(&x)));
        // Union must equal pointwise set union of results.
        let mut unioned = f1.clone();
        unioned.union_with_fn(&f2);
        let mut expect = f1.apply(&x);
        expect.union_with(&f2.apply(&x));
        assert_eq!(unioned.apply(&x), expect);
    }

    #[test]
    fn rapidity_star_equals_iterated_application() {
        // f* computed in closed form must match iterating f to a fixpoint
        // — the "trivially rapid" claim of §2 in executable form.
        for seed in 0..50u64 {
            let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15);
            let mut bits = |n: usize| {
                let mut set = BitSet::new(16);
                for i in 0..n {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    set.insert(((state >> 33) as usize + i) % 16);
                }
                set
            };
            let f = TransferFn {
                kill: bits(4),
                constant: bits(3),
            };
            let x = bits(5);
            // Iterate x ∪ f(x) ∪ f(f(x)) ∪ … to a fixpoint.
            let mut acc = x.clone();
            let mut cur = x.clone();
            for _ in 0..20 {
                cur = f.apply(&cur);
                let before = acc.clone();
                acc.union_with(&cur);
                if acc == before {
                    break;
                }
            }
            assert_eq!(f.star().apply(&x), acc, "seed {seed}");
        }
    }

    #[test]
    fn matches_findgmod_on_a_chain() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let r = b.proc_("r", &[]);
        b.assign(r, g, Expr::constant(1));
        let q = b.proc_("q", &[]);
        b.call(q, r, &[]);
        let main = b.main();
        b.call(main, q, &[]);
        compare_with_findgmod(&b);
    }

    #[test]
    fn matches_findgmod_on_mutual_recursion() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        b.assign(p, g, Expr::constant(1));
        b.assign(q, h, Expr::constant(2));
        b.call(p, q, &[]);
        b.call(q, p, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        compare_with_findgmod(&b);
    }

    #[test]
    fn matches_findgmod_on_irreducible_graph() {
        // main → p, main → q, p ⇄ q: no single loop header — elimination
        // by substitution handles it where interval analysis would not.
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        b.assign(q, g, Expr::constant(1));
        b.call(p, q, &[]);
        b.call(q, p, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        b.call(main, q, &[]);
        compare_with_findgmod(&b);
    }

    #[test]
    fn matches_findgmod_with_locals_filtered() {
        let mut b = ProgramBuilder::new();
        let q = b.proc_("q", &[]);
        let t = b.local(q, "t");
        b.assign(q, t, Expr::constant(1));
        let p = b.proc_("p", &[]);
        b.call(p, q, &[]);
        b.call(q, p, &[]); // cycle so elimination closure runs
        let main = b.main();
        b.call(main, p, &[]);
        compare_with_findgmod(&b);
    }

    #[test]
    fn self_recursion_closed_exactly() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &[]);
        b.assign(p, g, Expr::constant(1));
        b.call(p, p, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        compare_with_findgmod(&b);
    }
}
