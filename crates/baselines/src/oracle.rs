//! The exhaustive reference oracle: equation (1) solved directly.
//!
//! No decomposition, no clever graphs — just the defining fixpoint
//! `GMOD(p) = IMOD(p) ∪ ⋃_{e=(p,q)} b_e(GMOD(q))` with the full binding
//! projection `b_e`:
//!
//! * a formal of the callee maps to the by-reference actual bound to it
//!   (nothing, for a by-value actual);
//! * any other variable declared by the callee (its locals) is dropped —
//!   deallocated on return;
//! * everything else (globals, variables of enclosing scopes) maps to
//!   itself.
//!
//! Seeds are the §3.3-extended `IMOD` sets, exactly as in the fast
//! pipeline, so the two must agree **exactly** — the property suite in
//! `tests/` asserts bit-for-bit equality on random programs.

use modref_bitset::{BitSet, OpCounter};
use modref_ir::{Actual, CallSiteId, ProcId, Program, VarKind};

/// The oracle's results: `GMOD`/`RMOD`/`DMOD` computed the slow way.
#[derive(Debug, Clone)]
pub struct OracleSolution {
    gmod: Vec<BitSet>,
    dmod_sites: Vec<BitSet>,
    stats: OpCounter,
}

impl OracleSolution {
    /// Solves the `MOD` side from the given seeds (`effects.imod_all()`
    /// for `MOD`, `effects.iuse_all()` for `USE`).
    ///
    /// Worklist fixpoint; each pass over a call site costs one projection
    /// that is linear in the variable universe, so the whole thing is
    /// `O(iterations · E_C · |V|)` — the "direct solution will not achieve
    /// the fast time bounds" route of §2.
    ///
    /// # Panics
    ///
    /// Panics if `seeds.len() != program.num_procs()`.
    pub fn solve(program: &Program, seeds: &[BitSet]) -> Self {
        assert_eq!(seeds.len(), program.num_procs(), "one seed per procedure");
        let mut stats = OpCounter::new();
        let mut gmod: Vec<BitSet> = seeds.to_vec();

        // sites_in[p]: the call sites whose caller is p.
        let mut sites_in: Vec<Vec<CallSiteId>> = vec![Vec::new(); program.num_procs()];
        for s in program.sites() {
            sites_in[program.site(s).caller().index()].push(s);
        }

        // Chaotic iteration to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            stats.iterations += 1;
            for p in program.procs() {
                for &s in &sites_in[p.index()] {
                    stats.edges_visited += 1;
                    let projected = project(program, s, &gmod[program.site(s).callee().index()]);
                    stats.bitvec_steps += 1;
                    if gmod[p.index()].union_with(&projected) {
                        changed = true;
                    }
                }
            }
        }

        let dmod_sites = program
            .sites()
            .map(|s| project(program, s, &gmod[program.site(s).callee().index()]))
            .collect();

        OracleSolution {
            gmod,
            dmod_sites,
            stats,
        }
    }

    /// Oracle `GMOD(p)`.
    pub fn gmod(&self, p: ProcId) -> &BitSet {
        &self.gmod[p.index()]
    }

    /// All oracle `GMOD` sets.
    pub fn gmod_all(&self) -> &[BitSet] {
        &self.gmod
    }

    /// Oracle `RMOD(p)`: `GMOD(p)` restricted to `p`'s formals.
    pub fn rmod(&self, program: &Program, p: ProcId) -> BitSet {
        let mut set = BitSet::new(self.gmod[p.index()].domain());
        for &f in program.proc_(p).formals() {
            if self.gmod[p.index()].contains(f.index()) {
                set.insert(f.index());
            }
        }
        set
    }

    /// Oracle `DMOD` for a call site (`b_e(GMOD(callee))`).
    pub fn dmod_site(&self, s: CallSiteId) -> &BitSet {
        &self.dmod_sites[s.index()]
    }

    /// Work counters (note `iterations`: the fixpoint pass count).
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// The full binding projection `b_e`.
fn project(program: &Program, s: CallSiteId, callee_set: &BitSet) -> BitSet {
    let site = program.site(s);
    let callee = site.callee();
    let mut out = BitSet::new(callee_set.domain());
    for v in callee_set.iter() {
        let vid = modref_ir::VarId::new(v);
        let info = program.var(vid);
        if info.owner() == Some(callee) {
            match info.kind() {
                VarKind::Formal { position } => {
                    if let Actual::Ref(r) = &site.args()[position] {
                        out.insert(r.var.index());
                    }
                }
                _ => { /* callee local: deallocated on return */ }
            }
        } else {
            out.insert(v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{Expr, LocalEffects, ProgramBuilder};

    fn oracle(b: &ProgramBuilder) -> (Program, OracleSolution) {
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let sol = OracleSolution::solve(&program, fx.imod_all());
        (program, sol)
    }

    #[test]
    fn formal_chain_and_global() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let q = b.proc_("q", &["y"]);
        b.assign(q, b.formal(q, 0), Expr::constant(1));
        b.assign(q, h, Expr::constant(2));
        let p = b.proc_("p", &["x"]);
        b.call(p, q, &[b.formal(p, 0)]);
        let main = b.main();
        b.call(main, p, &[g]);
        let (_, sol) = oracle(&b);
        // q: its formal and h.
        assert!(sol.gmod(q).contains(b.formal(q, 0).index()));
        assert!(sol.gmod(q).contains(h.index()));
        // p: its formal (bound through) and h.
        assert!(sol.gmod(p).contains(b.formal(p, 0).index()));
        assert!(sol.gmod(p).contains(h.index()));
        assert!(!sol.gmod(p).contains(b.formal(q, 0).index()));
        // main: g (the actual) and h.
        assert!(sol.gmod(main).contains(g.index()));
        assert!(sol.gmod(main).contains(h.index()));
    }

    #[test]
    fn recursion_converges() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.call(p, p, &[b.formal(p, 0)]);
        b.assign(p, g, Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[g]);
        let (_, sol) = oracle(&b);
        assert!(sol.gmod(p).contains(g.index()));
        assert!(sol.gmod(main).contains(g.index()));
        assert!(sol.stats().iterations >= 1);
    }

    #[test]
    fn nested_local_filtered_at_declaring_proc() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let t = b.local(p, "t");
        let inner = b.nested_proc(p, "inner", &[]);
        b.assign(inner, t, Expr::constant(1));
        b.call(p, inner, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let (_, sol) = oracle(&b);
        assert!(sol.gmod(inner).contains(t.index()));
        assert!(sol.gmod(p).contains(t.index())); // t is p's own
        assert!(!sol.gmod(main).contains(t.index())); // filtered at p
    }

    #[test]
    fn dmod_site_projection() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let q = b.proc_("q", &["y"]);
        b.assign(q, b.formal(q, 0), Expr::constant(1));
        let main = b.main();
        let s = b.call(main, q, &[g]);
        let (_, sol) = oracle(&b);
        assert!(sol.dmod_site(s).contains(g.index()));
        assert!(!sol.dmod_site(s).contains(b.formal(q, 0).index()));
    }
}
