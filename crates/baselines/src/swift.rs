//! A *swift*-style `RMOD` solver — bit vectors over the call multi-graph.
//!
//! Before the binding multi-graph, the Cooper–Kennedy 1984 ("swift")
//! formulation solved the reference-parameter problem as a data-flow
//! problem **on the call graph**, where every transfer moves a *vector* of
//! formal-parameter bits through a per-site binding map. The original used
//! Tarjan's path-compression elimination to reach
//! `O(E_C α(E_C, N_C))` bit-vector steps on reducible graphs; this
//! stand-in uses worklist iteration, which reproduces the same defining
//! cost *shape* — `Θ(N_β)`-wide vector operations, one per call-graph edge
//! per pass — that §3.2's comparison is about: the swift algorithm costs
//! `O(N_β · E_C · α)` bit operations where Figure 1 needs `O(k · E_C)`
//! booleans. (Substitution documented in `DESIGN.md` §4.)

use modref_bitset::{BitSet, OpCounter};
use modref_ir::{Actual, ProcId, Program, VarId};

/// The swift-style solver's result.
#[derive(Debug, Clone)]
pub struct SwiftRmod {
    rmod: Vec<BitSet>,
    modified: BitSet,
    stats: OpCounter,
}

impl SwiftRmod {
    /// `RMOD(p)` over the variable universe.
    pub fn rmod(&self, p: ProcId) -> &BitSet {
        &self.rmod[p.index()]
    }

    /// `true` if the formal may be modified by an invocation of its owner.
    pub fn is_modified(&self, formal: VarId) -> bool {
        self.modified.contains(formal.index())
    }

    /// Work counters. `bitvec_steps` counts whole-formal-vector transfers
    /// (each `Θ(N_β)` bits wide); `bool_steps` the per-position binding
    /// lookups inside them.
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// Solves the reference-formal problem by iterating formal-bit vectors
/// over the call multi-graph to a fixpoint.
///
/// The vector for procedure `p` lives in the program-wide variable
/// universe restricted to `p`'s formals. At a call site `s = (p, q)`,
/// information flows callee→caller: if formal `i` of `q` is marked and the
/// `i`-th actual at `s` is a formal of `p` (or of a lexical ancestor —
/// §3.3 applies here too), that formal gets marked.
///
/// # Panics
///
/// Panics if `initial.len() != program.num_procs()`.
pub fn rmod_swift_standin(program: &Program, initial: &[BitSet]) -> SwiftRmod {
    assert_eq!(
        initial.len(),
        program.num_procs(),
        "one initial set per procedure"
    );
    let mut stats = OpCounter::new();
    let nv = program.num_vars();

    // Seed: each procedure's formals that are locally modified.
    let mut marked = BitSet::new(nv);
    for p in program.procs() {
        for &f in program.proc_(p).formals() {
            stats.bool_steps += 1;
            if initial[p.index()].contains(f.index()) {
                marked.insert(f.index());
            }
        }
    }

    // Chaotic iteration over all call sites.
    let mut changed = true;
    while changed {
        changed = false;
        stats.iterations += 1;
        for s in program.sites() {
            let site = program.site(s);
            let caller = site.caller();
            let callee_formals = program.proc_(site.callee()).formals();
            stats.edges_visited += 1;
            stats.bitvec_steps += 1; // one vector transfer per edge per pass
            for (pos, arg) in site.args().iter().enumerate() {
                stats.bool_steps += 1;
                if !marked.contains(callee_formals[pos].index()) {
                    continue;
                }
                let Actual::Ref(r) = arg else { continue };
                let Some((owner, _)) = program.formal_position(r.var) else {
                    continue;
                };
                let in_context = owner == caller || program.ancestors(caller).any(|a| a == owner);
                if in_context && marked.insert(r.var.index()) {
                    changed = true;
                }
            }
        }
    }

    let mut rmod = vec![BitSet::new(nv); program.num_procs()];
    for p in program.procs() {
        for &f in program.proc_(p).formals() {
            if marked.contains(f.index()) {
                rmod[p.index()].insert(f.index());
            }
        }
    }

    SwiftRmod {
        rmod,
        modified: marked,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_binding::{solve_rmod, BindingGraph};
    use modref_ir::{Expr, LocalEffects, ProgramBuilder};

    fn compare(b: &ProgramBuilder) {
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);
        let fast = solve_rmod(&program, fx.imod_all(), &beta);
        let swift = rmod_swift_standin(&program, fx.imod_all());
        for p in program.procs() {
            assert_eq!(fast.rmod(p), swift.rmod(p), "disagree at {p}");
        }
    }

    #[test]
    fn agrees_on_chain() {
        let mut b = ProgramBuilder::new();
        let c = b.proc_("c", &["z"]);
        b.assign(c, b.formal(c, 0), Expr::constant(1));
        let q = b.proc_("q", &["y"]);
        b.call(q, c, &[b.formal(q, 0)]);
        let p = b.proc_("p", &["x"]);
        b.call(p, q, &[b.formal(p, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        compare(&b);
    }

    #[test]
    fn agrees_on_mutual_recursion() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.call(q, p, &[b.formal(q, 0)]);
        b.assign(q, b.formal(q, 0), Expr::constant(7));
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        compare(&b);
    }

    #[test]
    fn agrees_with_nested_context_bindings() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.assign(q, b.formal(q, 0), Expr::constant(1));
        let inner = b.nested_proc(p, "inner", &[]);
        b.call(inner, q, &[b.formal(p, 0)]);
        b.call(p, inner, &[]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        compare(&b);
    }

    #[test]
    fn pays_vector_steps_where_figure1_pays_booleans() {
        // On a binding chain, swift-standin performs E_C-many vector
        // transfers per pass, several passes; Figure 1 does O(N_β + E_β)
        // booleans once.
        let mut b = ProgramBuilder::new();
        let n = 40;
        let mut procs = Vec::new();
        for i in 0..n {
            procs.push(b.proc_(&format!("p{i}"), &["x"]));
        }
        b.assign(procs[n - 1], b.formal(procs[n - 1], 0), Expr::constant(1));
        for i in 0..n - 1 {
            b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
        }
        // A cycle to force extra passes.
        b.call(procs[n - 1], procs[0], &[b.formal(procs[n - 1], 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, procs[0], &[g]);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let swift = rmod_swift_standin(&program, fx.imod_all());
        assert!(swift.stats().iterations >= 2);
        assert!(swift.stats().bitvec_steps >= program.num_sites() as u64 * 2);
    }
}
