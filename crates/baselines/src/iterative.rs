//! Iterative worklist solution of equation (4) — the standard data-flow
//! baseline for the global phase.
//!
//! `GMOD(p) = IMOD⁺(p) ∪ ⋃_{e=(p,q)} (GMOD(q) ∖ LOCAL(q))` solved by
//! chaotic iteration. This computes the *same* least fixpoint as Figure 2
//! (and the multi-level algorithms) for any nesting depth — equation (4)'s
//! filters do not need the level decomposition; only the single-pass
//! closure trick does. It is therefore both a second `GMOD` oracle and the
//! cost baseline: each round touches every edge with one bit-vector step,
//! and cyclic call graphs need several rounds, giving the
//! `O(rounds · E_C)` bit-vector-step profile the paper's `O(E_C + N_C)`
//! result eliminates.

use modref_bitset::{BitSet, OpCounter};
use modref_graph::DiGraph;
use modref_ir::{ProcId, Program};

/// The iterative solution and its work counters.
#[derive(Debug, Clone)]
pub struct IterativeGmod {
    gmod: Vec<BitSet>,
    stats: OpCounter,
}

impl IterativeGmod {
    /// `GMOD(p)`.
    pub fn gmod(&self, p: ProcId) -> &BitSet {
        &self.gmod[p.index()]
    }

    /// All sets, indexed by procedure.
    pub fn gmod_all(&self) -> &[BitSet] {
        &self.gmod
    }

    /// Work counters: `iterations` is the number of full rounds,
    /// `bitvec_steps` the number of edge applications of equation (4).
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// Solves equation (4) by round-robin iteration in DFS post-order
/// (callees before callers — the favourable order for this problem).
///
/// # Panics
///
/// Panics if the slice lengths differ from `program.num_procs()`.
pub fn iterative_gmod(
    program: &Program,
    call_graph: &DiGraph,
    seeds: &[BitSet],
    locals: &[BitSet],
) -> IterativeGmod {
    assert_eq!(seeds.len(), program.num_procs(), "one seed per procedure");
    assert_eq!(locals.len(), program.num_procs(), "one LOCAL per procedure");
    let mut stats = OpCounter::new();
    let mut gmod: Vec<BitSet> = seeds.to_vec();

    // Post-order: callees come before callers, the favourable order for
    // callee-to-caller propagation.
    let dfs = modref_graph::DepthFirst::run(call_graph, call_graph.nodes());
    let order: Vec<usize> = dfs.postorder().to_vec();

    let mut changed = true;
    while changed {
        changed = false;
        stats.iterations += 1;
        for &p in &order {
            // Split-borrow via a temporary: unions from each callee.
            for q in call_graph.successor_nodes(p).collect::<Vec<_>>() {
                stats.edges_visited += 1;
                stats.bitvec_steps += 1;
                if p == q {
                    continue; // self-call adds nothing new
                }
                let (src, minus) = (gmod[q].clone(), &locals[q]);
                if gmod[p].union_with_difference(&src, minus) {
                    changed = true;
                }
            }
        }
    }

    IterativeGmod { gmod, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{CallGraph, Expr, LocalEffects, ProgramBuilder};

    #[test]
    fn matches_figure2_on_a_cycle() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        b.assign(p, g, Expr::constant(1));
        b.assign(q, h, Expr::constant(2));
        b.call(p, q, &[]);
        b.call(q, p, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let cg = CallGraph::build(&program);
        let locals = program.local_sets();

        let iter = iterative_gmod(&program, cg.graph(), fx.imod_all(), &locals);
        let fast = modref_core::solve_gmod_one_level(&program, cg.graph(), fx.imod_all(), &locals);
        for proc_ in program.procs() {
            assert_eq!(iter.gmod(proc_), fast.gmod(proc_));
        }
        assert!(iter.stats().iterations >= 2);
    }

    #[test]
    fn long_cycle_costs_many_rounds_figure2_does_not() {
        // Adversarial family for round-robin in post-order: a tree chain
        // main → x1 → x2 → … → xn where every x_{i+1} also calls its
        // *ancestor* x_i (back edges). Information seeded at x1 must hop
        // one back edge per round — Θ(n) rounds of Θ(n) edge steps —
        // while Figure 2 handles the whole SCC in one pass.
        let n = 30;
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let procs: Vec<_> = (0..n).map(|i| b.proc_(&format!("p{i}"), &[])).collect();
        for i in 0..n - 1 {
            b.call(procs[i], procs[i + 1], &[]); // tree chain
            b.call(procs[i + 1], procs[i], &[]); // back edge
        }
        b.assign(procs[0], g, Expr::constant(1));
        let main = b.main();
        b.call(main, procs[0], &[]);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let cg = CallGraph::build(&program);
        let locals = program.local_sets();

        let iter = iterative_gmod(&program, cg.graph(), fx.imod_all(), &locals);
        let fast = modref_core::solve_gmod_one_level(&program, cg.graph(), fx.imod_all(), &locals);
        for proc_ in program.procs() {
            assert_eq!(iter.gmod(proc_), fast.gmod(proc_));
        }
        assert!(
            iter.stats().bitvec_steps > fast.stats().bitvec_steps,
            "iterative ({}) should cost more than findgmod ({})",
            iter.stats().bitvec_steps,
            fast.stats().bitvec_steps
        );
    }

    #[test]
    fn nested_program_matches_multi_level() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let t = b.local(p, "t");
        let u = b.nested_proc(p, "u", &[]);
        let v = b.nested_proc(p, "v", &[]);
        b.call(u, v, &[]);
        b.call(v, u, &[]);
        b.assign(v, t, Expr::constant(1));
        b.call(p, u, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let cg = CallGraph::build(&program);
        let locals = program.local_sets();

        let iter = iterative_gmod(&program, cg.graph(), fx.imod_all(), &locals);
        let multi =
            modref_core::solve_gmod_multi_naive(&program, cg.graph(), fx.imod_all(), &locals);
        for proc_ in program.procs() {
            assert_eq!(iter.gmod(proc_), multi.gmod(proc_), "at {proc_}");
        }
    }
}
