#![warn(missing_docs)]

//! Baseline algorithms and correctness oracles for the `modref` workspace.
//!
//! Three roles:
//!
//! 1. **Oracle** ([`oracle`]) — a direct worklist fixpoint of the paper's
//!    equation (1), `GMOD(p) = IMOD(p) ∪ ⋃_{e=(p,q)} b_e(GMOD(q))`, with
//!    the *full* binding function `b_e` (formals ↦ actuals, callee locals
//!    dropped, survivors kept). Slow and obviously correct: the property
//!    suite checks the fast pipeline against it bit for bit.
//! 2. **Comparators** — the algorithms the paper positions itself against:
//!    * [`per_param::rmod_per_parameter`] — Zadeck-style one-pass-per-
//!      parameter propagation on `β` (`O(N_β · E_β)` worst case), the cost
//!      model §3.2 contrasts with Figure 1;
//!    * [`swift::rmod_swift_standin`] — the *swift*-style formulation:
//!      bit vectors of formal parameters propagated over the **call**
//!      multi-graph to a fixpoint, paying `O(N_β)`-wide vector steps per
//!      edge per iteration (a stand-in for the Tarjan path-compression
//!      elimination swift used; the asymptotic *shape* — bit-vector work
//!      on `C` instead of boolean work on `β` — is what the experiments
//!      compare);
//!    * [`iterative::iterative_gmod`] — the standard iterative data-flow
//!      solution of equation (4), exact for any nesting depth, used both
//!      as a `GMOD` oracle and as the `O(N_C · E_C)`-bit-vector-steps
//!      baseline for Figure 2;
//!    * [`elimination::elimination_gmod`] — a Graham–Wegman-flavoured
//!      elimination solver over closed-form transfer functions,
//!      demonstrating (and testing) that equation (4) is *rapid*: loop
//!      closure is a single extra application.
//! 3. **Ablations** — the experiments call these to reproduce the paper's
//!    complexity comparisons (`EXPERIMENTS.md`).

pub mod elimination;
pub mod iterative;
pub mod oracle;
pub mod per_param;
pub mod swift;

pub use elimination::{elimination_gmod, TransferFn};
pub use iterative::iterative_gmod;
pub use oracle::OracleSolution;
pub use per_param::rmod_per_parameter;
pub use swift::rmod_swift_standin;
