//! Per-parameter `RMOD` — the Zadeck-style baseline §3.2 contrasts with
//! Figure 1.
//!
//! "In Zadeck's method the algorithm is applied once for each variable or
//! cluster of variables; for our method, a single application to `β`
//! suffices." This module is that once-per-variable method: for each
//! binding-graph node whose formal is locally modified, a reverse
//! traversal of `β` marks every formal that can *reach* it — `O(N_β·E_β)`
//! boolean steps in the worst case, against Figure 1's `O(N_β + E_β)`.

use modref_binding::BindingGraph;
use modref_bitset::{BitSet, OpCounter};
use modref_ir::{ProcId, Program, VarId};

/// The per-parameter baseline's result (identical sets to
/// [`modref_binding::solve_rmod`], different cost profile).
#[derive(Debug, Clone)]
pub struct PerParamRmod {
    rmod: Vec<BitSet>,
    modified: BitSet,
    stats: OpCounter,
}

impl PerParamRmod {
    /// `RMOD(p)` over the variable universe.
    pub fn rmod(&self, p: ProcId) -> &BitSet {
        &self.rmod[p.index()]
    }

    /// `true` if the formal may be modified by an invocation of its owner.
    pub fn is_modified(&self, formal: VarId) -> bool {
        self.modified.contains(formal.index())
    }

    /// Work counters (`bool_steps` counts per-seed edge visits).
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// Runs one reverse reachability pass per locally-modified formal.
///
/// # Panics
///
/// Panics if `initial.len() != program.num_procs()`.
pub fn rmod_per_parameter(
    program: &Program,
    initial: &[BitSet],
    beta: &BindingGraph,
) -> PerParamRmod {
    assert_eq!(
        initial.len(),
        program.num_procs(),
        "one initial set per procedure"
    );
    let mut stats = OpCounter::new();
    let n = beta.num_nodes();
    let reverse = beta.graph().reversed();
    let mut node_marked = vec![false; n];

    for seed in 0..n {
        let formal = beta.formal_of_node(seed);
        let (owner, _) = program.formal_position(formal).expect("β node is formal");
        stats.bool_steps += 1;
        if !initial[owner.index()].contains(formal.index()) {
            continue;
        }
        // One full reverse traversal per modified seed — the quadratic
        // part. (A real implementation would not re-walk marked regions;
        // keeping the walk unpruned reproduces the per-variable cost
        // model. Visited-per-seed still bounds each walk to O(N+E).)
        let mut seen = vec![false; n];
        let mut stack = vec![seed];
        seen[seed] = true;
        while let Some(v) = stack.pop() {
            node_marked[v] = true;
            stats.nodes_visited += 1;
            for w in reverse.successor_nodes(v) {
                stats.bool_steps += 1;
                stats.edges_visited += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
    }

    let mut rmod = vec![BitSet::new(program.num_vars()); program.num_procs()];
    let mut modified = BitSet::new(program.num_vars());
    for (node, &marked) in node_marked.iter().enumerate() {
        if marked {
            let formal = beta.formal_of_node(node);
            let (owner, _) = program.formal_position(formal).expect("formal");
            rmod[owner.index()].insert(formal.index());
            modified.insert(formal.index());
        }
    }
    // Formals without β nodes: local modification only.
    for p in program.procs() {
        for &f in program.proc_(p).formals() {
            stats.bool_steps += 1;
            if beta.node_of_formal(f).is_none() && initial[p.index()].contains(f.index()) {
                rmod[p.index()].insert(f.index());
                modified.insert(f.index());
            }
        }
    }

    PerParamRmod {
        rmod,
        modified,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_binding::solve_rmod;
    use modref_ir::{Expr, LocalEffects, ProgramBuilder};

    /// Build a long binding chain with a single modification at the end.
    fn chain_builder(len: usize) -> (ProgramBuilder, Vec<ProcId>) {
        let mut b = ProgramBuilder::new();
        let mut procs = Vec::new();
        for i in 0..len {
            procs.push(b.proc_(&format!("p{i}"), &["x"]));
        }
        b.assign(
            procs[len - 1],
            b.formal(procs[len - 1], 0),
            Expr::constant(1),
        );
        for i in 0..len - 1 {
            b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
        }
        let g = b.global("g");
        let main = b.main();
        b.call(main, procs[0], &[g]);
        (b, procs)
    }

    #[test]
    fn agrees_with_figure1_on_chain() {
        let (b, procs) = chain_builder(12);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);
        let fast = solve_rmod(&program, fx.imod_all(), &beta);
        let slow = rmod_per_parameter(&program, fx.imod_all(), &beta);
        for &p in &procs {
            assert_eq!(fast.rmod(p), slow.rmod(p), "at {p}");
        }
    }

    #[test]
    fn agrees_on_cycles_and_branches() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x", "y"]);
        let q = b.proc_("q", &["u"]);
        let r = b.proc_("r", &["v"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.call(p, r, &[b.formal(p, 1)]);
        b.call(q, p, &[b.formal(q, 0), b.formal(q, 0)]);
        b.assign(r, b.formal(r, 0), Expr::constant(5));
        let g = b.global("g");
        let h = b.global("h");
        let main = b.main();
        b.call(main, p, &[g, h]);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);
        let fast = solve_rmod(&program, fx.imod_all(), &beta);
        let slow = rmod_per_parameter(&program, fx.imod_all(), &beta);
        for proc_ in program.procs() {
            assert_eq!(fast.rmod(proc_), slow.rmod(proc_), "at {proc_}");
        }
    }

    #[test]
    fn cost_grows_faster_than_figure1() {
        // Many seeds × long chain: per-parameter work explodes while
        // Figure 1 stays linear. Build a chain where EVERY node modifies
        // its formal (every node is a seed).
        fn costs(len: usize) -> (u64, u64) {
            let mut b = ProgramBuilder::new();
            let mut procs = Vec::new();
            for i in 0..len {
                let p = b.proc_(&format!("p{i}"), &["x"]);
                b.assign(p, b.formal(p, 0), Expr::constant(1));
                procs.push(p);
            }
            for i in 0..len - 1 {
                b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
            }
            let g = b.global("g");
            let main = b.main();
            b.call(main, procs[0], &[g]);
            let program = b.finish().expect("valid");
            let fx = LocalEffects::compute(&program);
            let beta = BindingGraph::build(&program);
            let fast = solve_rmod(&program, fx.imod_all(), &beta);
            let slow = rmod_per_parameter(&program, fx.imod_all(), &beta);
            (fast.stats().bool_steps, slow.stats().total())
        }
        let (fast_small, slow_small) = costs(20);
        let (fast_large, slow_large) = costs(200);
        let fast_ratio = fast_large as f64 / fast_small as f64;
        let slow_ratio = slow_large as f64 / slow_small as f64;
        assert!(fast_ratio < 15.0, "Figure 1 should scale ~linearly");
        assert!(
            slow_ratio > 50.0,
            "per-parameter should scale ~quadratically, got {slow_ratio:.1}"
        );
    }
}
