#![warn(missing_docs)]

//! Summary-driven interprocedural optimizations — the *client* the
//! paper's analysis exists for.
//!
//! §2 of Cooper & Kennedy 1988 opens with the motivation: "to determine
//! the safety of applying an optimizing transformation, compilers examine
//! the flow of values inside a procedure. Calls to external procedures
//! present a difficulty … if the compiler has no knowledge about the
//! called procedure, it must assume that the called procedure both uses
//! and modifies the value of every variable it can see." This crate is a
//! small optimizer that consumes the [`modref_core::Summary`] to do
//! better:
//!
//! * [`purity::classify_sites`] — call sites whose `MOD` set is empty are
//!   *observer* calls (safe to reorder/hoist/CSE across); sites with
//!   empty `MOD` *and* empty `USE` on visible state are candidates for
//!   removal if their results are unused;
//! * [`dead_stores::eliminate_dead_stores`] — removes assignments to
//!   local variables that are provably never read again, *looking through
//!   call sites* with the interprocedural `USE` sets (the conservative
//!   no-information optimizer must keep every store that precedes any
//!   call);
//! * [`hoist::find_hoistable_calls`] — proves calls inside loops
//!   loop-invariant (`MOD(s) = ∅` and `USE(s)` disjoint from the loop's
//!   writes);
//! * both report how much the interprocedural summaries bought over the
//!   "assume everything" baseline.
//!
//! The property suite checks semantic preservation by running original
//! and optimized programs in the `modref-interp` interpreter and
//! comparing observable behaviour.

pub mod dead_stores;
pub mod hoist;
pub mod purity;

pub use dead_stores::{
    eliminate_dead_stores, eliminate_dead_stores_assuming_worst, DeadStoreReport,
};
pub use hoist::{find_hoistable_calls, Hoistable};
pub use purity::{classify_sites, SiteClass, SiteClassification};
