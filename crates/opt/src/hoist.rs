//! Loop-invariant call hoisting — an *advisor* built on `MOD`/`USE`.
//!
//! A call inside a loop can be evaluated once before the loop when
//!
//! 1. the call writes nothing (`MOD(s) = ∅` — an observer/inert site), so
//!    executing it fewer times changes no state;
//! 2. nothing the call *reads* is written by the rest of the loop
//!    (`USE(s) ∩ MOD(loop body) = ∅`), so every iteration would have seen
//!    the same values anyway.
//!
//! (A real compiler would also require the loop to execute at least once
//! or guard the hoisted call; this module only answers the data-flow
//! question, which is the part that needs interprocedural summaries.)
//!
//! Without summaries, rule 1 already fails for every call — no call is
//! hoistable. The report carries that counterfactual.

use modref_bitset::BitSet;
use modref_core::Summary;
use modref_ir::{CallSiteId, Program, Stmt};

/// One hoisting opportunity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hoistable {
    /// The procedure containing the loop.
    pub proc_: modref_ir::ProcId,
    /// The call site that can move out of its innermost loop.
    pub site: CallSiteId,
}

/// Finds every call site nested in a `while` loop that the summaries
/// prove loop-invariant (see the module docs for the exact conditions).
///
/// # Examples
///
/// ```
/// use modref_core::Analyzer;
/// use modref_opt::hoist::find_hoistable_calls;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = modref_frontend::parse_program("
///     var config, total, i;
///     proc lookup() { print config; }     # pure observer of `config`
///     main {
///       while (i < 10) {
///         call lookup();                  # invariant: loop never writes config
///         total = total + i;
///         i = i + 1;
///       }
///     }
/// ")?;
/// let summary = Analyzer::new().analyze(&program);
/// let hoistable = find_hoistable_calls(&program, &summary);
/// assert_eq!(hoistable.len(), 1);
/// # Ok(())
/// # }
/// ```
pub fn find_hoistable_calls(program: &Program, summary: &Summary) -> Vec<Hoistable> {
    let mut out = Vec::new();
    for p in program.procs() {
        for s in program.proc_(p).body() {
            scan(program, summary, p, s, &mut out);
        }
    }
    out
}

/// Walks statements; at each `while`, tests the calls of its body against
/// that loop's own MOD set, then recurses (inner loops are judged against
/// the innermost loop only).
fn scan(
    program: &Program,
    summary: &Summary,
    p: modref_ir::ProcId,
    stmt: &Stmt,
    out: &mut Vec<Hoistable>,
) {
    match stmt {
        Stmt::While { body, .. } => {
            let loop_mod = mod_of_block(program, summary, body);
            collect_loop_calls(program, summary, p, body, &loop_mod, out);
            // Recurse for loops nested inside this one.
            for inner in body {
                scan(program, summary, p, inner, out);
            }
        }
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            for inner in then_branch.iter().chain(else_branch) {
                scan(program, summary, p, inner, out);
            }
        }
        _ => {}
    }
}

/// Everything a statement list may modify: `LMOD` of each statement plus
/// `MOD(s)` of each contained call.
fn mod_of_block(program: &Program, summary: &Summary, body: &[Stmt]) -> BitSet {
    let mut set = BitSet::new(program.num_vars());
    for s in body {
        set.union_with(&modref_ir::lmod_of_stmt(program, s));
        modref_ir::walk_stmts(std::slice::from_ref(s), &mut |inner| {
            if let Stmt::Call { site } = inner {
                set.union_with(summary.mod_site(*site));
            }
        });
    }
    set
}

/// Collects the directly-contained calls of `body` (not those inside
/// nested `while`s — they belong to the inner loop) that pass both
/// hoisting conditions.
fn collect_loop_calls(
    program: &Program,
    summary: &Summary,
    p: modref_ir::ProcId,
    body: &[Stmt],
    loop_mod: &BitSet,
    out: &mut Vec<Hoistable>,
) {
    for s in body {
        match s {
            Stmt::Call { site } => {
                let writes_nothing = summary.mod_site(*site).is_empty();
                let reads_invariant = summary.use_site(*site).is_disjoint(loop_mod);
                let args_invariant = program.site(*site).args().iter().all(|a| {
                    match a {
                        modref_ir::Actual::Ref(_) => true, // bindings, not values
                        modref_ir::Actual::Value(e) => {
                            let mut reads = BitSet::new(program.num_vars());
                            modref_ir::walk_exprs(e, &mut |sub| {
                                if let modref_ir::Expr::Load(r) = sub {
                                    reads.insert(r.var.index());
                                }
                            });
                            reads.is_disjoint(loop_mod)
                        }
                    }
                });
                if writes_nothing && reads_invariant && args_invariant {
                    out.push(Hoistable {
                        proc_: p,
                        site: *site,
                    });
                }
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_loop_calls(program, summary, p, then_branch, loop_mod, out);
                collect_loop_calls(program, summary, p, else_branch, loop_mod, out);
            }
            // Calls under a nested while belong to that loop.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_core::Analyzer;
    use modref_frontend::parse_program;

    fn hoistable(src: &str) -> usize {
        let program = parse_program(src).expect("parses");
        let summary = Analyzer::new().analyze(&program);
        find_hoistable_calls(&program, &summary).len()
    }

    #[test]
    fn observer_of_invariant_state_hoists() {
        assert_eq!(
            hoistable(
                "var cfg, i;
                 proc peek() { print cfg; }
                 main { while (i < 5) { call peek(); i = i + 1; } }"
            ),
            1
        );
    }

    #[test]
    fn mutator_never_hoists() {
        assert_eq!(
            hoistable(
                "var cfg, i;
                 proc bump() { cfg = cfg + 1; }
                 main { while (i < 5) { call bump(); i = i + 1; } }"
            ),
            0
        );
    }

    #[test]
    fn observer_of_loop_varying_state_stays() {
        assert_eq!(
            hoistable(
                "var i;
                 proc peek() { print i; }    # reads the induction variable
                 main { while (i < 5) { call peek(); i = i + 1; } }"
            ),
            0
        );
    }

    #[test]
    fn transitive_mutation_blocks_hoisting() {
        assert_eq!(
            hoistable(
                "var cfg, i;
                 proc deep() { cfg = 1; }
                 proc shallow() { call deep(); }
                 main { while (i < 5) { call shallow(); i = i + 1; } }"
            ),
            0
        );
    }

    #[test]
    fn loop_varying_value_argument_blocks_hoisting() {
        assert_eq!(
            hoistable(
                "var cfg, i;
                 proc peek(x) { print cfg; }
                 main { while (i < 5) { call peek(value i); i = i + 1; } }"
            ),
            0
        );
    }

    #[test]
    fn inner_loops_judged_separately() {
        // The call reads j, written only by the *outer* loop: hoistable
        // out of the inner loop (its innermost context), found once.
        assert_eq!(
            hoistable(
                "var i, j, cfg;
                 proc peek() { print j; }
                 main {
                   while (i < 3) {
                     while (cfg < 2) { call peek(); cfg = cfg + 1; }
                     j = j + 1;
                     i = i + 1;
                   }
                 }"
            ),
            1
        );
    }

    #[test]
    fn calls_under_if_inside_loop_are_considered() {
        assert_eq!(
            hoistable(
                "var cfg, i;
                 proc peek() { print cfg; }
                 main { while (i < 5) { if (i < 2) { call peek(); } i = i + 1; } }"
            ),
            1
        );
    }
}
