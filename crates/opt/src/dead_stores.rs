//! Dead-store elimination powered by interprocedural `USE` summaries.
//!
//! An assignment to a scalar *local* is dead when nothing later in the
//! procedure can read the stored value. "Later reads" must include reads
//! performed *inside callees* — a local passed by reference, or read by a
//! nested procedure, is consumed through a call — and that is exactly
//! what the per-site `USE(s)` summaries provide. A compiler without
//! interprocedural information must keep every store that precedes any
//! call (the §2 worst-case assumption); this pass measures the
//! difference.
//!
//! The liveness scan is deliberately conservative and flow-light:
//!
//! * it walks each body backwards, threading a *may-be-read-later* set;
//! * `if` branches are scanned independently against the common
//!   continuation; the merged result unions both branches' reads;
//! * a `while` body's continuation is inflated with every read of the
//!   whole loop (covering back edges), so stores inside loops are only
//!   removed when nothing in the loop reads them either;
//! * only unsubscripted stores to `Local` scalars are candidates —
//!   formals write through to callers and globals outlive the procedure.

use modref_bitset::BitSet;
use modref_core::Summary;
use modref_ir::{Program, Stmt, VarKind};

/// Outcome of [`eliminate_dead_stores`].
#[derive(Debug, Clone)]
pub struct DeadStoreReport {
    /// The transformed program.
    pub program: Program,
    /// How many assignments were removed.
    pub removed: usize,
    /// How many of those preceded a call site in their procedure — the
    /// stores a summary-less compiler could never remove.
    pub removed_across_calls: usize,
}

/// Removes dead stores from every procedure of `program`, using
/// `summary` for the effects of call sites.
///
/// # Panics
///
/// Panics if the transformation invalidates the program — impossible by
/// construction (only `Assign` statements are dropped), so a panic here
/// is a bug in this pass.
///
/// # Examples
///
/// ```
/// use modref_core::Analyzer;
/// use modref_opt::eliminate_dead_stores;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = modref_frontend::parse_program("
///     var g;
///     proc work() {
///       var t;
///       t = g + 1;     # dead: t is never read again
///       g = 2;
///     }
///     main { call work(); }
/// ")?;
/// let summary = Analyzer::new().analyze(&program);
/// let report = eliminate_dead_stores(&program, &summary);
/// assert_eq!(report.removed, 1);
/// # Ok(())
/// # }
/// ```
pub fn eliminate_dead_stores(program: &Program, summary: &Summary) -> DeadStoreReport {
    run_pass(program, &CallUses::Summary(summary))
}

/// The §2 counterfactual: the same pass *without* interprocedural
/// information — every call site is assumed to read every variable the
/// callee can see, so no store that precedes a call can ever die. The
/// difference against [`eliminate_dead_stores`] measures what the
/// summaries buy (experiment E8).
pub fn eliminate_dead_stores_assuming_worst(program: &Program) -> DeadStoreReport {
    run_pass(
        program,
        &CallUses::Everything(BitSet::full(program.num_vars())),
    )
}

/// Where the pass gets `USE(s)` from.
enum CallUses<'a> {
    Summary(&'a Summary),
    Everything(BitSet),
}

impl CallUses<'_> {
    fn use_site(&self, s: modref_ir::CallSiteId) -> &BitSet {
        match self {
            CallUses::Summary(summary) => summary.use_site(s),
            CallUses::Everything(all) => all,
        }
    }
}

fn run_pass(program: &Program, uses: &CallUses<'_>) -> DeadStoreReport {
    let mut removed = 0usize;
    let mut removed_across_calls = 0usize;

    let transformed = program
        .map_bodies(|p, body| {
            let mut live_after = BitSet::new(program.num_vars());
            let mut pass = Pass {
                program,
                uses,
                proc_: p,
                removed: &mut removed,
                removed_across_calls: &mut removed_across_calls,
            };
            pass.sweep(body, &mut live_after)
        })
        .expect("dropping assignments preserves validity");

    DeadStoreReport {
        program: transformed,
        removed,
        removed_across_calls,
    }
}

struct Pass<'a> {
    program: &'a Program,
    uses: &'a CallUses<'a>,
    proc_: modref_ir::ProcId,
    removed: &'a mut usize,
    removed_across_calls: &'a mut usize,
}

impl Pass<'_> {
    /// All variables statement `s` (and its callees) may read.
    fn reads_of(&self, s: &Stmt) -> BitSet {
        let mut set = modref_ir::luse_of_stmt(self.program, s);
        modref_ir::walk_stmts(std::slice::from_ref(s), &mut |inner| {
            if let Stmt::Call { site } = inner {
                set.union_with(self.uses.use_site(*site));
            }
        });
        set
    }

    fn contains_call(s: &Stmt) -> bool {
        let mut found = false;
        modref_ir::walk_stmts(std::slice::from_ref(s), &mut |inner| {
            found |= matches!(inner, Stmt::Call { .. });
        });
        found
    }

    /// Processes a statement list backwards against `live_after` (the
    /// may-read-later set at the list's end), returning the kept
    /// statements and updating `live_after` to the list's entry state.
    fn sweep(&mut self, stmts: &[Stmt], live_after: &mut BitSet) -> Vec<Stmt> {
        let mut kept_rev: Vec<Stmt> = Vec::with_capacity(stmts.len());
        let mut any_call_below = false;
        for s in stmts.iter().rev() {
            match s {
                Stmt::Assign { target, value: _ }
                    if self.is_droppable(target) && !live_after.contains(target.var.index()) =>
                {
                    *self.removed += 1;
                    if any_call_below {
                        *self.removed_across_calls += 1;
                    }
                    // Dropped: its reads never happen, live_after unchanged.
                }
                Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let mut live_then = live_after.clone();
                    let new_then = self.sweep(then_branch, &mut live_then);
                    let mut live_else = live_after.clone();
                    let new_else = self.sweep(else_branch, &mut live_else);
                    live_after.union_with(&live_then);
                    live_after.union_with(&live_else);
                    let cond_reads = self.reads_of(&Stmt::Print {
                        value: cond.clone(),
                    });
                    live_after.union_with(&cond_reads);
                    any_call_below |= Self::contains_call(s);
                    kept_rev.push(Stmt::If {
                        cond: cond.clone(),
                        then_branch: new_then,
                        else_branch: new_else,
                    });
                }
                Stmt::While { cond, body } => {
                    // Back edge: anything the loop reads may execute after
                    // any point of the body.
                    let whole = Stmt::While {
                        cond: cond.clone(),
                        body: body.clone(),
                    };
                    let loop_reads = self.reads_of(&whole);
                    let mut live_body = live_after.clone();
                    live_body.union_with(&loop_reads);
                    let new_body = self.sweep(body, &mut live_body);
                    live_after.union_with(&loop_reads);
                    any_call_below |= Self::contains_call(s);
                    kept_rev.push(Stmt::While {
                        cond: cond.clone(),
                        body: new_body,
                    });
                }
                other => {
                    // A definite (unsubscripted, scalar) assignment kills
                    // the target's liveness before its RHS reads are
                    // added — this is what removes the earlier store in
                    // `t = 1; t = 2; print t;`.
                    if let Stmt::Assign { target, .. } | Stmt::Read { target } = other {
                        if target.subs.is_empty() && self.program.var(target.var).rank() == 0 {
                            live_after.remove(target.var.index());
                        }
                    }
                    let reads = self.reads_of(other);
                    live_after.union_with(&reads);
                    any_call_below |= Self::contains_call(other);
                    kept_rev.push(other.clone());
                }
            }
        }
        kept_rev.reverse();
        kept_rev
    }

    fn is_droppable(&self, target: &modref_ir::Ref) -> bool {
        if !target.subs.is_empty() {
            return false;
        }
        let info = self.program.var(target.var);
        info.owner() == Some(self.proc_) && matches!(info.kind(), VarKind::Local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_core::Analyzer;
    use modref_frontend::parse_program;

    fn optimize(src: &str) -> (Program, DeadStoreReport) {
        let program = parse_program(src).expect("parses");
        let summary = Analyzer::new().analyze(&program);
        let report = eliminate_dead_stores(&program, &summary);
        (program, report)
    }

    #[test]
    fn trailing_store_to_local_is_removed() {
        let (_, report) = optimize(
            "proc p() { var t; t = 1; }
             main { call p(); }",
        );
        assert_eq!(report.removed, 1);
        assert!(report
            .program
            .to_source()
            .contains("proc p() {\n  var t;\n}"));
    }

    #[test]
    fn store_read_later_survives() {
        let (_, report) = optimize(
            "proc p() { var t; t = 1; print t; }
             main { call p(); }",
        );
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn overwritten_store_is_removed() {
        let (_, report) = optimize(
            "proc p() { var t; t = 1; t = 2; print t; }
             main { call p(); }",
        );
        assert_eq!(report.removed, 1);
        assert!(report.program.to_source().contains("t = 2;"));
        assert!(!report.program.to_source().contains("t = 1;"));
    }

    #[test]
    fn call_that_reads_the_local_keeps_the_store() {
        // Without interprocedural USE the pass could not know whether
        // `use_it(t)` reads t — with it, it must keep the store.
        let (_, report) = optimize(
            "proc use_it(x) { print x; }
             proc p() { var t; t = 1; call use_it(t); }
             main { call p(); }",
        );
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn call_that_ignores_the_local_lets_the_store_die() {
        let (_, report) = optimize(
            "var g;
             proc ignore_it(x) { g = g + 1; }   # never reads x
             proc p() { var t; t = 1; call ignore_it(t); }
             main { call p(); }",
        );
        assert_eq!(report.removed, 1);
        assert_eq!(report.removed_across_calls, 1);
    }

    #[test]
    fn nested_procedure_reading_the_local_keeps_it() {
        let (_, report) = optimize(
            "var g;
             proc p() {
               var t;
               proc peek() { g = t; }
               t = 5;
               call peek();
             }
             main { call p(); }",
        );
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn loop_back_edge_keeps_stores_read_at_loop_head() {
        let (_, report) = optimize(
            "proc p() {
               var t, i;
               i = 0;
               while (i < 3) {
                 print t;       # reads the t stored *last* iteration
                 t = i;
                 i = i + 1;
               }
             }
             main { call p(); }",
        );
        // `t = i` must survive (read on the next iteration); `i` too.
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn branch_local_deadness() {
        let (_, report) = optimize(
            "var g;
             proc p() {
               var t;
               if (g < 0) { t = 1; } else { t = 2; print t; }
             }
             main { call p(); }",
        );
        // The then-branch store is dead; the else-branch one is read.
        assert_eq!(report.removed, 1);
    }

    #[test]
    fn formals_and_globals_are_never_touched() {
        let (_, report) = optimize(
            "var g;
             proc p(x) { x = 1; g = 2; }
             main { var m; call p(m); }",
        );
        assert_eq!(report.removed, 0);
    }

    #[test]
    fn array_stores_are_never_touched() {
        let (_, report) = optimize(
            "proc p() { var t; t = 3; }
             main { var a; a = 1; call p(); }",
        );
        // main's local `a = 1` is dead too — also removable.
        assert_eq!(report.removed, 2);
    }
}
