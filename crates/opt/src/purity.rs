//! Call-site purity classification from `MOD`/`USE` summaries.

use modref_core::Summary;
use modref_ir::{CallSiteId, Program};

/// How a call site interacts with caller-visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteClass {
    /// Modifies nothing and reads nothing: the call is a no-op on visible
    /// state (removable if the language has no I/O — MiniProc's `print`
    /// and `read` keep such calls effectful only through the summaries'
    /// view of globals, so treat with care downstream).
    Inert,
    /// Reads but never writes: safe to reorder with other observers and
    /// to common up between identical argument lists.
    Observer,
    /// Writes a nonempty set: a mutator.
    Mutator,
}

/// Classification of every call site, with the counterfactual "no
/// interprocedural information" comparison.
#[derive(Debug, Clone)]
pub struct SiteClassification {
    classes: Vec<SiteClass>,
    observers: usize,
    inert: usize,
}

impl SiteClassification {
    /// The class of call site `s`.
    pub fn class_of(&self, s: CallSiteId) -> SiteClass {
        self.classes[s.index()]
    }

    /// Number of sites safe to reorder/CSE (observers plus inert).
    pub fn reorderable(&self) -> usize {
        self.observers + self.inert
    }

    /// Number of sites with no visible effect at all.
    pub fn inert(&self) -> usize {
        self.inert
    }

    /// Iterates over `(site, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CallSiteId, SiteClass)> + '_ {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, &c)| (CallSiteId::new(i), c))
    }
}

/// Classifies every call site of `program` using `summary`.
///
/// Without interprocedural analysis every site is a [`SiteClass::Mutator`]
/// (the §2 worst-case assumption), so `reorderable()` measures exactly
/// what the analysis bought.
///
/// # Examples
///
/// ```
/// use modref_core::Analyzer;
/// use modref_opt::{classify_sites, SiteClass};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = modref_frontend::parse_program("
///     var g;
///     proc peek() { print g; }
///     proc poke() { g = 1; }
///     main { call peek(); call poke(); }
/// ")?;
/// let summary = Analyzer::new().analyze(&program);
/// let classes = classify_sites(&program, &summary);
/// let mut sites = program.sites();
/// assert_eq!(classes.class_of(sites.next().unwrap()), SiteClass::Observer);
/// assert_eq!(classes.class_of(sites.next().unwrap()), SiteClass::Mutator);
/// # Ok(())
/// # }
/// ```
pub fn classify_sites(program: &Program, summary: &Summary) -> SiteClassification {
    let mut classes = Vec::with_capacity(program.num_sites());
    let mut observers = 0usize;
    let mut inert = 0usize;
    for s in program.sites() {
        let class = if !summary.mod_site(s).is_empty() {
            SiteClass::Mutator
        } else if summary.use_site(s).is_empty() {
            inert += 1;
            SiteClass::Inert
        } else {
            observers += 1;
            SiteClass::Observer
        };
        classes.push(class);
    }
    SiteClassification {
        classes,
        observers,
        inert,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_core::Analyzer;
    use modref_frontend::parse_program;

    fn classify(src: &str) -> (Program, SiteClassification) {
        let program = parse_program(src).expect("parses");
        let summary = Analyzer::new().analyze(&program);
        let classes = classify_sites(&program, &summary);
        (program, classes)
    }

    #[test]
    fn transitive_mutation_is_detected() {
        let (program, classes) = classify(
            "var g;
             proc deep() { g = 1; }
             proc shallow() { call deep(); }
             main { call shallow(); }",
        );
        let main_site = program
            .sites()
            .find(|&s| program.site(s).caller() == program.main())
            .unwrap();
        assert_eq!(classes.class_of(main_site), SiteClass::Mutator);
        assert_eq!(classes.reorderable(), 0);
    }

    #[test]
    fn reference_parameter_mutation_counts() {
        let (program, classes) = classify(
            "var g;
             proc set(x) { x = 1; }
             main { call set(g); }",
        );
        assert_eq!(
            classes.class_of(program.sites().next().unwrap()),
            SiteClass::Mutator
        );
    }

    #[test]
    fn pure_computation_on_value_args_is_inert() {
        let (program, classes) = classify(
            "proc compute(x) { var t; t = x * x; }
             main { call compute(value 3); }",
        );
        assert_eq!(
            classes.class_of(program.sites().next().unwrap()),
            SiteClass::Inert
        );
        assert_eq!(classes.inert(), 1);
    }

    #[test]
    fn local_print_is_still_inert_on_variables() {
        // `print` produces output but touches no caller-visible variable:
        // the MOD/USE view (variables only) calls it inert. Downstream
        // passes must consult I/O effects separately — documented.
        let (program, classes) = classify(
            "proc shout() { print 42; }
             main { call shout(); }",
        );
        assert_eq!(
            classes.class_of(program.sites().next().unwrap()),
            SiteClass::Inert
        );
    }
}
