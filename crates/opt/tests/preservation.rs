//! Semantic preservation: optimizing with the interprocedural summaries
//! never changes observable behaviour.

use modref_check::prelude::*;
use modref_core::Analyzer;
use modref_interp::Interpreter;
use modref_opt::eliminate_dead_stores;
use modref_progen::{generate, GenConfig};

property! {
    #![cases = 24]

    fn dead_store_elimination_preserves_output(
        seed in any_u64(),
        input_seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..4u32),
    ) {
        let program = generate(&GenConfig::tiny(n, depth), seed);
        let summary = Analyzer::new().analyze(&program);
        let report = eliminate_dead_stores(&program, &summary);

        let before = Interpreter::new(&program, input_seed).with_fuel(30_000).run();
        let after = Interpreter::new(&report.program, input_seed)
            .with_fuel(30_000)
            .run();
        // Removing statements shifts fuel accounting; only compare
        // untruncated runs (the overwhelming majority at this size).
        prop_assume!(!before.truncated && !after.truncated);
        prop_assert_eq!(
            before.printed, after.printed,
            "seed {}/{}: output changed after removing {} stores\n{}",
            seed, input_seed, report.removed, program.to_source()
        );
    }

    fn optimized_program_revalidates_and_reanalyzes(
        seed in any_u64(),
        n in ints(2..10usize),
    ) {
        let program = generate(&GenConfig::tiny(n, 2), seed);
        let summary = Analyzer::new().analyze(&program);
        let report = eliminate_dead_stores(&program, &summary);
        prop_assert!(report.program.validate().is_ok());
        // The optimized program's MOD sets are subsets of the original's
        // (removing writes can only shrink effects).
        let after = Analyzer::new().analyze(&report.program);
        for s in program.sites() {
            // Site ids survive: the pass never touches call statements.
            prop_assert!(after.dmod_site(s).is_subset(summary.dmod_site(s)));
        }
    }

    fn idempotent(seed in any_u64(), n in ints(2..10usize)) {
        let program = generate(&GenConfig::tiny(n, 2), seed);
        let summary = Analyzer::new().analyze(&program);
        let once = eliminate_dead_stores(&program, &summary);
        let summary2 = Analyzer::new().analyze(&once.program);
        let twice = eliminate_dead_stores(&once.program, &summary2);
        prop_assert_eq!(twice.removed, 0, "second pass found more dead stores");
    }
}
