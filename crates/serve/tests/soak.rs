//! Concurrency soak wall: many scripted clients × many sessions against
//! one live in-process server, every answer checked against a scratch
//! [`Analyzer`] oracle.
//!
//! Eight client threads each drive two sessions (16 sessions total)
//! through interleaved `open` / `edit` / `query` rounds over one shared
//! server. Each thread keeps a *replica* [`Program`] per session and
//! pushes the same textual edit scripts through the same
//! `Script::parse → resolve → apply_edit` path the server uses, so after
//! every round the server's `query all` / `query site` / `query proc`
//! reports must be **byte-identical** to rendering a from-scratch
//! analysis of the replica. `scripts/ci.sh` runs this at
//! `MODREF_THREADS=1` and `=4`; failures replay with
//! `MODREF_SEED=<seed> cargo test -p modref-serve --test soak`.

use std::sync::Barrier;

use modref_bitset::BitSet;
use modref_check::Rng;
use modref_core::Analyzer;
use modref_frontend::parse_program;
use modref_incr::render::{render_json, render_json_site, SiteSets};
use modref_incr::Script;
use modref_ir::{CallSiteId, ProcId, Program, VarId};
use modref_serve::{Client, QueryTarget, Request, RetryPolicy, Server, ServerConfig, Status};
use modref_trace::escape_json;

const CLIENTS: usize = 8;
const SESSIONS_PER_CLIENT: usize = 2; // 16 sessions server-wide
const ROUNDS: usize = 5;
const MAX_STEPS_PER_ROUND: usize = 3;

/// Four program shapes: nested-with-arrays, a call chain, Pascal-style
/// nesting with reference aliasing, and a flat fortran-like graph.
const SOURCES: [&str; 4] = [
    "var total, count, grid[*, *];\n\
     proc bump(x, amount) {\n  x = x + amount;\n  count = count + 1;\n}\n\
     proc zero_row(row[*], n) {\n  var j;\n  j = 0;\n  while (j < n) { row[j] = 0; j = j + 1; }\n}\n\
     main {\n  var i;\n  call bump(total, value 5);\n  i = 0;\n  while (i < 3) { call zero_row(grid[i, *], value 3); i = i + 1; }\n}\n",
    "var g1, g2, g3;\n\
     proc inc(x) {\n  x = x + g1;\n  g2 = g2 + 1;\n}\n\
     proc twice(y) {\n  call inc(y);\n  call inc(g3);\n}\n\
     main {\n  var t;\n  t = 0;\n  call inc(g1);\n  call twice(g2);\n  g3 = t;\n}\n",
    "var a, b, c;\n\
     proc outer(p) {\n  proc inner() {\n    a = a + p;\n  }\n  call inner();\n  b = p;\n}\n\
     main {\n  call outer(a);\n  call outer(value 2);\n  c = a + b;\n}\n",
    "var u, v, w, z;\n\
     proc f1() { u = v; }\n\
     proc f2() { v = w; }\n\
     proc f3() { w = z; call f1(); }\n\
     proc f4() { z = u; call f2(); }\n\
     main {\n  call f1();\n  call f2();\n  call f3();\n  call f4();\n}\n",
];

fn soak_seed() -> u64 {
    std::env::var("MODREF_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0x50AC_2026)
}

/// Global (rank-0) variables visible from `p`, as resolvable names.
fn visible_globals(program: &Program, p: ProcId) -> Vec<String> {
    program
        .visible_set(p)
        .iter()
        .map(VarId::new)
        .filter(|&v| program.var(v).rank() == 0)
        .map(|v| program.var_name(v).to_string())
        .collect()
}

/// One candidate edit line. May not resolve/validate against the current
/// replica — the caller filters with a try-apply.
fn candidate_line(rng: &mut Rng, program: &Program, fresh: &mut u32) -> String {
    let procs: Vec<ProcId> = program.procs().collect();
    match rng.gen_range(0..10u32) {
        // set-local: rewrite a procedure's flat effects over its globals.
        0..=4 => {
            let p = *rng.choose(&procs);
            let globals = visible_globals(program, p);
            let pick = |rng: &mut Rng, pool: &[String]| -> String {
                if pool.is_empty() {
                    return String::new();
                }
                let mut chosen: Vec<&str> = pool
                    .iter()
                    .filter(|_| rng.gen_bool(0.5))
                    .map(String::as_str)
                    .collect();
                if chosen.is_empty() {
                    chosen.push(pool[rng.gen_range(0..pool.len())].as_str());
                }
                chosen.join(",")
            };
            let mods = pick(rng, &globals);
            let uses = pick(rng, &globals);
            format!("set-local {} mod={mods} use={uses}", program.proc_name(p))
        }
        // add-call: main calls a top-level procedure with fresh actuals.
        5..=6 => {
            let tops: Vec<ProcId> = procs
                .iter()
                .copied()
                .filter(|&p| p != ProcId::MAIN && program.proc_(p).parent() == Some(ProcId::MAIN))
                .collect();
            if tops.is_empty() {
                return "set-local main mod= use=".to_string();
            }
            let callee = *rng.choose(&tops);
            let globals = visible_globals(program, ProcId::MAIN);
            let args: Vec<String> = program
                .proc_(callee)
                .formals()
                .iter()
                .map(|_| {
                    if !globals.is_empty() && rng.gen_bool(0.5) {
                        globals[rng.gen_range(0..globals.len())].clone()
                    } else {
                        format!("{}", rng.gen_range(0..9u32))
                    }
                })
                .collect();
            format!(
                "add-call {} {} args={}",
                program.proc_name(ProcId::MAIN),
                program.proc_name(callee),
                args.join(",")
            )
        }
        // remove-call: drop a random current site.
        7..=8 => {
            if program.num_sites() == 0 {
                return "set-local main mod= use=".to_string();
            }
            format!("remove-call {}", rng.gen_range(0..program.num_sites()))
        }
        // add-proc: a fresh leaf under main.
        _ => {
            *fresh += 1;
            format!("add-proc np{fresh} parent=main formals=x,y")
        }
    }
}

/// Generates a resolvable edit script of `steps` lines against `replica`,
/// advancing the replica exactly as the server will.
fn gen_script(rng: &mut Rng, replica: &mut Program, fresh: &mut u32, steps: usize) -> String {
    let mut lines = Vec::new();
    for _ in 0..steps {
        for _attempt in 0..16 {
            let line = candidate_line(rng, replica, fresh);
            let script = match Script::parse(&line) {
                Ok(s) => s,
                Err(_) => continue,
            };
            let step = script.steps().first().expect("one line, one step");
            let Ok(edit) = step.resolve(replica) else {
                continue;
            };
            let Ok((next, _)) = replica.apply_edit(&edit) else {
                continue;
            };
            *replica = next;
            lines.push(line);
            break;
        }
    }
    lines.join("\n")
}

/// The expected `query <s> proc <name>` report, mirroring the server's
/// renderer: sorted, quoted variable names.
fn expected_proc_report(program: &Program, name: &str, gmod: &BitSet, guse: &BitSet) -> String {
    let names = |set: &BitSet| -> String {
        let mut parts: Vec<String> = set
            .iter()
            .map(|i| format!("\"{}\"", escape_json(program.var_name(VarId::new(i)))))
            .collect();
        parts.sort();
        format!("[{}]", parts.join(","))
    };
    format!(
        "{{\"proc\":\"{}\",\"gmod\":{},\"guse\":{}}}\n",
        escape_json(name),
        names(gmod),
        names(guse)
    )
}

struct SessionState {
    name: String,
    replica: Program,
    fresh: u32,
}

/// One full client: opens its sessions, then rounds of edit+query with
/// oracle checks after every round.
fn drive_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    seed: u64,
    opened: &Barrier,
    checked: &Barrier,
    closed: &Barrier,
) {
    let ctx = format!("client {client_idx} (seed {seed})");
    let mut rng =
        Rng::seed_from_u64(seed ^ (client_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut client = Client::connect(addr).expect("connects");
    let mut sessions = Vec::new();
    for s in 0..SESSIONS_PER_CLIENT {
        let name = format!("c{client_idx}-s{s}");
        let source = SOURCES[(client_idx * SESSIONS_PER_CLIENT + s) % SOURCES.len()];
        let resp = client
            .request(Request::Open {
                session: name.clone(),
                program: source.to_string(),
                lazy: false,
            })
            .unwrap_or_else(|e| panic!("{ctx}: open {name}: {e}"));
        assert_eq!(resp.status, Status::Ok, "{ctx}: open {name} not ok");
        sessions.push(SessionState {
            name,
            replica: parse_program(source).expect("soak sources parse"),
            fresh: 0,
        });
    }
    opened.wait();
    checked.wait(); // thread 0 verifies the server-wide session count between these

    let mut edits_sent = 0u64;
    for round in 0..ROUNDS {
        for s in &mut sessions {
            let rctx = format!("{ctx}, session {}, round {round}", s.name);
            let steps = 1 + rng.gen_range(0..MAX_STEPS_PER_ROUND);
            let script = gen_script(&mut rng, &mut s.replica, &mut s.fresh, steps);
            if !script.is_empty() {
                let resp = client
                    .request(Request::Edit {
                        session: s.name.clone(),
                        script,
                    })
                    .unwrap_or_else(|e| panic!("{rctx}: edit: {e}"));
                assert_eq!(resp.status, Status::Ok, "{rctx}: edit degraded or errored");
                edits_sent += resp.uint_field("applied").unwrap_or(0);
            }

            // Oracle: a from-scratch analysis of the replica prefix.
            let summary = Analyzer::new().analyze(&s.replica);
            let sets = SiteSets::from_summary(&s.replica, &summary);

            let resp = client
                .request(Request::Query {
                    session: s.name.clone(),
                    target: QueryTarget::All,
                })
                .unwrap_or_else(|e| panic!("{rctx}: query all: {e}"));
            assert_eq!(resp.status, Status::Ok, "{rctx}: query all not ok");
            assert_eq!(
                resp.str_field("report").expect("query carries a report"),
                render_json(&s.replica, &sets),
                "{rctx}: query-all report diverged from scratch"
            );

            if s.replica.num_sites() > 0 {
                let site = rng.gen_range(0..s.replica.num_sites());
                let resp = client
                    .request(Request::Query {
                        session: s.name.clone(),
                        target: QueryTarget::Site(site),
                    })
                    .unwrap_or_else(|e| panic!("{rctx}: query site {site}: {e}"));
                assert_eq!(resp.status, Status::Ok, "{rctx}: query site not ok");
                assert_eq!(
                    resp.str_field("report").expect("report"),
                    render_json_site(&s.replica, &sets, CallSiteId::new(site)),
                    "{rctx}: site {site} report diverged"
                );
            }

            let procs: Vec<ProcId> = s.replica.procs().collect();
            let p = *rng.choose(&procs);
            let pname = s.replica.proc_name(p).to_string();
            let resp = client
                .request(Request::Query {
                    session: s.name.clone(),
                    target: QueryTarget::Proc(pname.clone()),
                })
                .unwrap_or_else(|e| panic!("{rctx}: query proc {pname}: {e}"));
            assert_eq!(resp.status, Status::Ok, "{rctx}: query proc not ok");
            assert_eq!(
                resp.str_field("report").expect("report"),
                expected_proc_report(&s.replica, &pname, summary.gmod(p), summary.guse(p)),
                "{rctx}: proc {pname} report diverged"
            );
        }
    }

    // The generator must be producing real churn, not empty scripts.
    assert!(
        edits_sent >= (ROUNDS * SESSIONS_PER_CLIENT) as u64,
        "{ctx}: only {edits_sent} edits applied across {ROUNDS} rounds"
    );

    for s in &sessions {
        let resp = client
            .request(Request::Close {
                session: s.name.clone(),
            })
            .unwrap_or_else(|e| panic!("{ctx}: close {}: {e}", s.name));
        assert_eq!(resp.status, Status::Ok, "{ctx}: close {} not ok", s.name);
    }
    closed.wait();
}

#[test]
fn concurrent_sessions_stay_bit_identical_to_scratch() {
    let seed = soak_seed();
    let server = Server::bind(
        "127.0.0.1:0".parse().expect("loopback parses"),
        ServerConfig {
            max_sessions: CLIENTS * SESSIONS_PER_CLIENT,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let handle = server.spawn();
    let addr = handle.addr();

    // CLIENTS drive threads plus one auditor share every barrier.
    let opened = Barrier::new(CLIENTS + 1);
    let checked = Barrier::new(CLIENTS + 1);
    let closed = Barrier::new(CLIENTS + 1);

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for c in 0..CLIENTS {
            let (opened, checked, closed) = (&opened, &checked, &closed);
            workers.push(scope.spawn(move || {
                drive_client(addr, c, seed, opened, checked, closed);
            }));
        }

        // The auditor probes server-wide invariants at the barriers while
        // every drive thread is parked.
        let audit = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("audit client connects");
            let stats = |client: &mut Client| {
                let resp = client.request(Request::Stats).expect("stats answers");
                assert_eq!(resp.status, Status::Ok, "stats not ok");
                resp
            };
            opened.wait();
            // Every session is open and none has been closed yet.
            let resp = stats(&mut client);
            assert_eq!(
                resp.uint_field("sessions"),
                Some((CLIENTS * SESSIONS_PER_CLIENT) as u64),
                "full occupancy while drives are parked (seed {seed})"
            );
            checked.wait();
            closed.wait();
            // All closed: the table is empty, nothing errored or degraded,
            // and every finished request is accounted exactly once. (This
            // stats request is in `requests` but not yet in `ok`.)
            let resp = stats(&mut client);
            assert_eq!(resp.uint_field("sessions"), Some(0), "sessions leaked");
            assert_eq!(resp.uint_field("errors"), Some(0), "soak produced errors");
            assert_eq!(resp.uint_field("degraded"), Some(0), "soak degraded");
            let total = resp.uint_field("requests").expect("requests counter");
            let ok = resp.uint_field("ok").expect("ok counter");
            assert_eq!(ok, total - 1, "counter accounting broke (seed {seed})");
        });
        audit.join().expect("audit thread");
        for w in workers {
            w.join().expect("client thread");
        }
    });

    handle.shutdown();
}

/// The between-barriers session-count audit needs its own test body so
/// the auditing client sees the fully opened table: all 16 sessions
/// live at once, and — with eviction off — the 17th open is refused
/// without disturbing them.
#[test]
fn session_table_reaches_full_occupancy_and_enforces_the_cap() {
    let server = Server::bind(
        "127.0.0.1:0".parse().expect("loopback parses"),
        ServerConfig {
            max_sessions: CLIENTS * SESSIONS_PER_CLIENT,
            evict: false,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    for i in 0..CLIENTS * SESSIONS_PER_CLIENT {
        let resp = client
            .request(Request::Open {
                session: format!("s{i}"),
                program: SOURCES[i % SOURCES.len()].to_string(),
                lazy: false,
            })
            .expect("open answers");
        assert_eq!(resp.status, Status::Ok, "open s{i} not ok");
    }
    let resp = client.request(Request::Stats).expect("stats answers");
    assert_eq!(resp.uint_field("sessions"), Some(16), "full occupancy");

    let resp = client
        .request(Request::Open {
            session: "one-too-many".to_string(),
            program: SOURCES[0].to_string(),
            lazy: false,
        })
        .expect("over-limit open still answers");
    assert_eq!(resp.status, Status::Error, "over-limit open must refuse");
    assert!(
        resp.str_field("error")
            .expect("refusal carries a message")
            .contains("session limit"),
        "refusal names the limit"
    );
    // The refusal disturbed nothing.
    let resp = client.request(Request::Stats).expect("stats answers");
    assert_eq!(resp.uint_field("sessions"), Some(16));
    handle.shutdown();
}

/// Churn soak: a session cap well below the 16 session names forces
/// constant LRU eviction and resurrection while eight client threads
/// interleave edits and queries. Every answer must stay bit-identical to
/// scratch; a thread that catches the table with every session busy
/// retries on the typed `overloaded` response like a real client.
const CHURN_CAP: usize = 6;

fn churn_client(addr: std::net::SocketAddr, client_idx: usize, seed: u64) {
    let ctx = format!("churn client {client_idx} (seed {seed})");
    let policy = RetryPolicy {
        attempts: 12,
        base_ms: 5,
        cap_ms: 200,
        seed: seed ^ client_idx as u64,
    };
    let mut rng =
        Rng::seed_from_u64(seed ^ (client_idx as u64).wrapping_mul(0xC0FF_EE00_D15E_A5ED));
    let mut client = Client::connect(addr).expect("connects");
    let retrying = |client: &mut Client, req: Request, rctx: &str| {
        let resp = client
            .request_retrying(req, &policy)
            .unwrap_or_else(|e| panic!("{rctx}: {e}"));
        assert_eq!(resp.status, Status::Ok, "{rctx}: not ok after retries");
        resp
    };

    let mut sessions = Vec::new();
    for s in 0..SESSIONS_PER_CLIENT {
        let name = format!("c{client_idx}-s{s}");
        let source = SOURCES[(client_idx * SESSIONS_PER_CLIENT + s) % SOURCES.len()];
        retrying(
            &mut client,
            Request::Open {
                session: name.clone(),
                program: source.to_string(),
                lazy: false,
            },
            &format!("{ctx}: open {name}"),
        );
        sessions.push(SessionState {
            name,
            replica: parse_program(source).expect("soak sources parse"),
            fresh: 0,
        });
    }

    for round in 0..ROUNDS {
        for s in &mut sessions {
            let rctx = format!("{ctx}, session {}, round {round}", s.name);
            let steps = 1 + rng.gen_range(0..MAX_STEPS_PER_ROUND);
            let script = gen_script(&mut rng, &mut s.replica, &mut s.fresh, steps);
            if !script.is_empty() {
                retrying(
                    &mut client,
                    Request::Edit {
                        session: s.name.clone(),
                        script,
                    },
                    &format!("{rctx}: edit"),
                );
            }

            // Every query lands on a session that was likely parked and
            // resurrected since its last request — and must still be
            // bit-identical to a from-scratch analysis of the replica.
            let summary = Analyzer::new().analyze(&s.replica);
            let sets = SiteSets::from_summary(&s.replica, &summary);
            let resp = retrying(
                &mut client,
                Request::Query {
                    session: s.name.clone(),
                    target: QueryTarget::All,
                },
                &format!("{rctx}: query all"),
            );
            assert_eq!(
                resp.str_field("report").expect("query carries a report"),
                render_json(&s.replica, &sets),
                "{rctx}: churned report diverged from scratch"
            );
        }
    }
}

#[test]
fn eviction_churn_keeps_every_session_bit_identical() {
    let seed = soak_seed();
    let server = Server::bind(
        "127.0.0.1:0".parse().expect("loopback parses"),
        ServerConfig {
            max_sessions: CHURN_CAP,
            ..ServerConfig::default()
        },
    )
    .expect("binds");
    let handle = server.spawn();
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for c in 0..CLIENTS {
            workers.push(scope.spawn(move || churn_client(addr, c, seed)));
        }
        for w in workers {
            w.join().expect("churn client thread");
        }
    });

    // Occupancy audit: the cap held, nothing leaked, nothing silently
    // failed, and the table really churned.
    let mut client = Client::connect(addr).expect("audit connects");
    let resp = client.request(Request::Stats).expect("stats answers");
    assert_eq!(resp.status, Status::Ok);
    let live = resp.uint_field("sessions").expect("sessions counter");
    let parked = resp.uint_field("parked").expect("parked counter");
    assert!(
        live <= CHURN_CAP as u64,
        "cap breached: {live} live > {CHURN_CAP} (seed {seed})"
    );
    assert_eq!(
        live + parked,
        (CLIENTS * SESSIONS_PER_CLIENT) as u64,
        "sessions leaked or vanished (seed {seed})"
    );
    assert!(
        resp.uint_field("evictions").expect("evictions counter") > 0,
        "cap {CHURN_CAP} under 16 sessions never evicted (seed {seed})"
    );
    assert!(
        resp.uint_field("recoveries").expect("recoveries counter") > 0,
        "churn never resurrected a parked session (seed {seed})"
    );
    assert_eq!(
        resp.uint_field("errors"),
        Some(0),
        "churn produced error responses (seed {seed})"
    );
    assert_eq!(resp.uint_field("degraded"), Some(0), "churn degraded (seed {seed})");
    handle.shutdown();
}
