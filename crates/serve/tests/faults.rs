//! Fault-injection wall for the server's containment sites
//! (`serve.accept`, `serve.dispatch`, `serve.session`).
//!
//! The contract under test, from `docs/SERVER.md`:
//!
//! 1. a fault poisons **one session's responses**, never the server —
//!    sibling sessions answer exactly (bit-identical to scratch) while
//!    the poisoned one degrades;
//! 2. degradation is sound — any report a degraded response carries is a
//!    per-site **superset** of the exact answer (`exact ⊆ reported`);
//! 3. the three-valued `ok`/`degraded`/`error` status contract survives
//!    every injected panic, budget exhaust, and stall; and
//! 4. a client that vanishes mid-request leaves the session engine
//!    reusable for the next connection.
//!
//! In-process servers pin [`FaultPlan`]s explicitly (the CLI `serve` verb
//! arms the same plans from `MODREF_FAULT`); the seeded sweep mirrors the
//! env-armed CI pass deterministically.

use std::collections::BTreeSet;
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use modref_core::Analyzer;
use modref_frontend::parse_program;
use modref_guard::FaultPlan;
use modref_incr::render::{render_json, SiteSets};
use modref_incr::Script;
use modref_ir::Program;
use modref_serve::frame::write_frame;
use modref_serve::{Client, Envelope, QueryTarget, Request, Server, ServerConfig, Status};
use modref_trace::{parse_json, Json};

const SICK_SRC: &str = "var a, b, c;\n\
     proc stepper(x) {\n  x = x + a;\n  b = b + 1;\n}\n\
     main {\n  call stepper(a);\n  call stepper(c);\n}\n";

const WELL_SRC: &str = "var g, h;\n\
     proc probe() {\n  g = h;\n}\n\
     main {\n  call probe();\n  h = g;\n}\n";

fn spawn(cfg: ServerConfig) -> modref_serve::ServerHandle {
    Server::bind("127.0.0.1:0".parse().expect("loopback parses"), cfg)
        .expect("binds")
        .spawn()
}

fn open(client: &mut Client, session: &str, source: &str) -> Status {
    client
        .request(Request::Open {
            session: session.to_string(),
            program: source.to_string(),
            lazy: false,
        })
        .expect("open answers")
        .status
}

/// Per-site `(mod, use, dmod)` name sets parsed from a `query all`
/// report, keyed by site id.
fn site_sets(report: &str) -> Vec<[BTreeSet<String>; 3]> {
    let json = parse_json(report.trim()).expect("report parses as JSON");
    let sites = match json.get("sites") {
        Some(Json::Arr(sites)) => sites.clone(),
        other => panic!("report has no sites array: {other:?}"),
    };
    sites
        .iter()
        .map(|site| {
            ["mod", "use", "dmod"].map(|key| match site.get(key) {
                Some(Json::Arr(names)) => names
                    .iter()
                    .map(|n| n.as_str().expect("names are strings").to_string())
                    .collect(),
                other => panic!("site field {key} missing: {other:?}"),
            })
        })
        .collect()
}

/// `exact ⊆ reported`, site by site, set by set.
fn assert_report_superset(exact: &str, reported: &str, ctx: &str) {
    let exact = site_sets(exact);
    let reported = site_sets(reported);
    assert_eq!(exact.len(), reported.len(), "{ctx}: site count diverged");
    for (id, (e, r)) in exact.iter().zip(&reported).enumerate() {
        for (k, key) in ["mod", "use", "dmod"].iter().enumerate() {
            assert!(
                e[k].is_subset(&r[k]),
                "{ctx}: site {id} {key} lost bits: exact {:?} ⊄ reported {:?}",
                e[k],
                r[k]
            );
        }
    }
}

fn scratch_report(program: &Program) -> String {
    let summary = Analyzer::new().analyze(program);
    render_json(program, &SiteSets::from_summary(program, &summary))
}

fn query_all(client: &mut Client, session: &str) -> modref_serve::Response {
    client
        .request(Request::Query {
            session: session.to_string(),
            target: QueryTarget::All,
        })
        .expect("query answers")
}

#[test]
fn session_site_panic_poisons_one_session_not_the_server() {
    let handle = spawn(ServerConfig {
        faults: Some(FaultPlan::new().panic_at("serve.session")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Opens never touch `serve.session`, so both sessions come up.
    assert_eq!(open(&mut client, "sick", SICK_SRC), Status::Ok);
    assert_eq!(open(&mut client, "well", WELL_SRC), Status::Ok);

    let sick_program = parse_program(SICK_SRC).expect("parses");
    let well_program = parse_program(WELL_SRC).expect("parses");

    // Repeated hits on the poisoned session: every response is degraded,
    // every report stays sound, the connection never drops.
    for round in 0..3 {
        let resp = client
            .request(Request::Edit {
                session: "sick".to_string(),
                script: "set-local stepper mod=a,b use=c".to_string(),
            })
            .expect("edit answers despite the panic");
        assert_eq!(resp.status, Status::Degraded, "round {round}: edit status");
        assert!(
            resp.str_field("reason")
                .expect("degraded carries a reason")
                .contains("panic"),
            "round {round}: reason names the panic"
        );

        let resp = query_all(&mut client, "sick");
        assert_eq!(resp.status, Status::Degraded, "round {round}: query status");
        // The panic fired before any engine mutation, so the exact answer
        // is still the unedited program's.
        assert_report_superset(
            &scratch_report(&sick_program),
            resp.str_field("report").expect("degraded query answers"),
            &format!("round {round}: poisoned query"),
        );

        // The sibling session keeps answering exactly, interleaved.
        let resp = query_all(&mut client, "well");
        assert_eq!(resp.status, Status::Ok, "round {round}: sibling status");
        assert_eq!(
            resp.str_field("report").expect("report"),
            scratch_report(&well_program),
            "round {round}: sibling report diverged"
        );
    }

    // Server-wide surfaces are unaffected.
    let resp = client.request(Request::Stats).expect("stats answers");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(resp.uint_field("sessions"), Some(2));
    assert_eq!(resp.uint_field("degraded"), Some(6));
    handle.shutdown();
}

#[test]
fn dispatch_site_exhaust_degrades_only_the_targeted_session() {
    let handle = spawn(ServerConfig {
        faults: Some(FaultPlan::new().exhaust_at("serve.dispatch")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connects");

    // The dispatch site fires before session work, so even the poisoned
    // open degrades — and the session is never created.
    assert_eq!(open(&mut client, "sick", SICK_SRC), Status::Degraded);
    let resp = query_all(&mut client, "sick");
    assert_eq!(resp.status, Status::Degraded, "query on the never-opened session");
    assert!(resp.str_field("report").is_none(), "no session, no report");

    // The sibling's whole lifecycle is untouched.
    assert_eq!(open(&mut client, "well", WELL_SRC), Status::Ok);
    let mut replica = parse_program(WELL_SRC).expect("parses");
    let script = "set-local probe mod=g,h use=g";
    let resp = client
        .request(Request::Edit {
            session: "well".to_string(),
            script: script.to_string(),
        })
        .expect("edit answers");
    assert_eq!(resp.status, Status::Ok);
    let parsed = Script::parse(script).expect("script parses");
    for step in parsed.steps() {
        let edit = step.resolve(&replica).expect("resolves");
        replica = replica.apply_edit(&edit).expect("applies").0;
    }
    let resp = query_all(&mut client, "well");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica),
        "sibling diverged while the poisoned session was being refused"
    );
    handle.shutdown();
}

#[test]
fn session_site_exhaust_answers_queries_with_the_conservative_widening() {
    let handle = spawn(ServerConfig {
        faults: Some(FaultPlan::new().exhaust_at("serve.session")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connects");
    assert_eq!(open(&mut client, "sick", SICK_SRC), Status::Ok);

    let program = parse_program(SICK_SRC).expect("parses");
    let resp = query_all(&mut client, "sick");
    assert_eq!(resp.status, Status::Degraded);
    let report = resp.str_field("report").expect("degraded query answers");
    // The widening is exactly the renderer's conservative sets — and
    // therefore a superset of the exact answer.
    assert_eq!(
        report,
        render_json(&program, &SiteSets::conservative(&program)),
        "degraded report is the documented conservative widening"
    );
    assert_report_superset(&scratch_report(&program), report, "exhausted query");
    handle.shutdown();
}

#[test]
fn accept_site_panic_kills_the_connection_never_the_listener() {
    let handle = spawn(ServerConfig {
        faults: Some(FaultPlan::new().panic_at("serve.accept")),
        ..ServerConfig::default()
    });

    // Every connection dies at accept — as a clean close, not a hang or
    // a server crash — and the listener keeps accepting.
    for attempt in 0..3 {
        let mut client = Client::connect(handle.addr())
            .unwrap_or_else(|e| panic!("attempt {attempt}: listener stopped accepting: {e}"));
        let err = client
            .request(Request::Stats)
            .expect_err("poisoned connection must not answer");
        assert!(
            err.contains("closed") || err.contains("i/o") || err.contains("frame"),
            "attempt {attempt}: unexpected failure shape: {err}"
        );
    }
    handle.shutdown();
}

#[test]
fn mid_request_disconnect_leaves_the_engine_reusable() {
    let handle = spawn(ServerConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr).expect("connects");
    assert_eq!(open(&mut client, "s", SICK_SRC), Status::Ok);

    // Fire an edit and vanish without reading the response.
    let script = "set-local stepper mod=a,c use=b";
    {
        let mut raw = TcpStream::connect(addr).expect("raw connects");
        let env = Envelope {
            id: 1,
            request: Request::Edit {
                session: "s".to_string(),
                script: script.to_string(),
            },
            budget_ops: None,
            timeout_ms: None,
        };
        write_frame(&mut raw, env.render().as_bytes()).expect("frame writes");
        raw.shutdown(std::net::Shutdown::Both).expect("shutdown");
        // drop without reading the reply
    }

    // A half-frame from another vanishing client must not disturb anyone:
    // the server sees a truncated frame and closes that connection only.
    {
        let mut raw = TcpStream::connect(addr).expect("raw connects");
        raw.write_all(&[0, 0, 1, 0, b'{', b'"']).expect("partial frame");
        raw.shutdown(std::net::Shutdown::Both).expect("shutdown");
    }

    // The abandoned edit still commits; the engine answers the next
    // connection exactly. Poll briefly — the vanished client's request is
    // racing this one.
    let mut replica = parse_program(SICK_SRC).expect("parses");
    let parsed = Script::parse(script).expect("parses");
    for step in parsed.steps() {
        let edit = step.resolve(&replica).expect("resolves");
        replica = replica.apply_edit(&edit).expect("applies").0;
    }
    let want = scratch_report(&replica);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let resp = query_all(&mut client, "s");
        assert_eq!(resp.status, Status::Ok, "query after disconnect not ok");
        let got = resp.str_field("report").expect("report").to_string();
        if got == want {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned edit never committed: got {got}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // And the session still takes new edits afterwards.
    let resp = client
        .request(Request::Edit {
            session: "s".to_string(),
            script: "set-local stepper mod=b use=a".to_string(),
        })
        .expect("edit answers");
    assert_eq!(resp.status, Status::Ok, "engine no longer reusable");
    handle.shutdown();
}

/// The CI `MODREF_FAULT` pass, in miniature and deterministic: seeded
/// plans fire a pseudo-random mix of panic/stall/exhaust across *all*
/// sites (server checkpoints and engine-internal ones alike). Whatever
/// fires, the poisoned session's responses stay inside the three-valued
/// contract and sound, and the sibling stays exact.
#[test]
fn seeded_plans_keep_every_response_sound() {
    for seed in [7u64, 40, 1988] {
        let ctx = format!("fault seed {seed}");
        let handle = spawn(ServerConfig {
            faults: Some(FaultPlan::seeded(seed)),
            fault_session: Some("sick".to_string()),
            ..ServerConfig::default()
        });
        let mut client = Client::connect(handle.addr()).expect("connects");

        assert_eq!(open(&mut client, "well", WELL_SRC), Status::Ok, "{ctx}");
        let well_program = parse_program(WELL_SRC).expect("parses");

        let sick_open = open(&mut client, "sick", SICK_SRC);
        assert_ne!(sick_open, Status::Error, "{ctx}: open must not error");
        let mut replica = parse_program(SICK_SRC).expect("parses");

        if sick_open == Status::Ok {
            for (round, script) in [
                "set-local stepper mod=a use=b,c",
                "add-call main stepper args=b",
                "set-local main mod=c use=a",
            ]
            .iter()
            .enumerate()
            {
                let rctx = format!("{ctx}, round {round}");
                let resp = client
                    .request(Request::Edit {
                        session: "sick".to_string(),
                        script: (*script).to_string(),
                    })
                    .expect("edit answers");
                assert_ne!(resp.status, Status::Error, "{rctx}: edit errored");
                // Advance the replica by exactly the steps the server
                // reports applied (a panic fallback applies none).
                let applied = if resp.status == Status::Ok {
                    usize::MAX
                } else {
                    resp.uint_field("applied").unwrap_or(0) as usize
                };
                let parsed = Script::parse(script).expect("scripts parse");
                for step in parsed.steps().iter().take(applied) {
                    let edit = step.resolve(&replica).expect("resolves");
                    replica = replica.apply_edit(&edit).expect("applies").0;
                }

                let resp = query_all(&mut client, "sick");
                assert_ne!(resp.status, Status::Error, "{rctx}: query errored");
                let report = resp.str_field("report").expect("query answers");
                if resp.status == Status::Ok {
                    assert_eq!(report, scratch_report(&replica), "{rctx}: ok ≠ exact");
                } else {
                    assert_report_superset(&scratch_report(&replica), report, &rctx);
                }
            }
        }

        // Whatever happened to `sick`, the sibling is exact.
        let resp = query_all(&mut client, "well");
        assert_eq!(resp.status, Status::Ok, "{ctx}: sibling degraded");
        assert_eq!(
            resp.str_field("report").expect("report"),
            scratch_report(&well_program),
            "{ctx}: sibling diverged"
        );
        handle.shutdown();
    }
}
