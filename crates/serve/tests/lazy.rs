//! Lazy-session differential wall: a session opened with `"lazy":true`
//! must answer every point query **byte-identically** to an eager
//! session over the same program and edit history — the demand-driven
//! path and the exhaustive path share one output contract. Also pins the
//! promotion rule (`target=all` flips a lazy session to the exhaustive
//! engine) and the budget-degradation ladder (a starved lazy query
//! answers degraded with a superset report, and the session recovers).

use modref_serve::{Client, QueryTarget, Request, Response, Server, ServerConfig, Status};

const SRC: &str = "var total, count, extra;\n\
     proc bump(x, amount) {\n  x = x + amount;\n  count = count + 1;\n}\n\
     proc churn(y) {\n  call bump(y, value 2);\n  extra = total;\n}\n\
     main {\n  call bump(total, value 5);\n  call churn(count);\n}\n";

const EDIT: &str = "set-local churn mod=extra,total use=count\n";

fn spawn(cfg: ServerConfig) -> modref_serve::ServerHandle {
    Server::bind("127.0.0.1:0".parse().expect("loopback parses"), cfg)
        .expect("binds")
        .spawn()
}

fn open(client: &mut Client, session: &str, lazy: bool) {
    let resp = client
        .request(Request::Open {
            session: session.to_string(),
            program: SRC.to_string(),
            lazy,
        })
        .expect("open answers");
    assert_eq!(resp.status, Status::Ok, "open {session}");
}

fn query(client: &mut Client, session: &str, target: QueryTarget) -> Response {
    client
        .request(Request::Query {
            session: session.to_string(),
            target,
        })
        .expect("query answers")
}

fn report(resp: &Response) -> String {
    resp.str_field("report").expect("query has report").to_string()
}

#[test]
fn lazy_and_eager_sessions_answer_identically() {
    let handle = spawn(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connects");
    open(&mut client, "eager", false);
    open(&mut client, "lazy", true);

    // Every site and proc, before any edit.
    for n in 0..3 {
        let e = query(&mut client, "eager", QueryTarget::Site(n));
        let l = query(&mut client, "lazy", QueryTarget::Site(n));
        assert_eq!(e.status, Status::Ok);
        assert_eq!(l.status, Status::Ok);
        assert_eq!(report(&e), report(&l), "site {n} reports diverge");
    }
    for name in ["main", "bump", "churn"] {
        let e = query(&mut client, "eager", QueryTarget::Proc(name.into()));
        let l = query(&mut client, "lazy", QueryTarget::Proc(name.into()));
        assert_eq!(report(&e), report(&l), "proc {name} reports diverge");
    }

    // Same edit to both; the lazy session applies it at IR speed and
    // invalidates its memo — answers must still match bit for bit.
    for session in ["eager", "lazy"] {
        let resp = client
            .request(Request::Edit {
                session: session.to_string(),
                script: EDIT.to_string(),
            })
            .expect("edit answers");
        assert_eq!(resp.status, Status::Ok, "edit {session}");
    }
    for n in 0..3 {
        let e = query(&mut client, "eager", QueryTarget::Site(n));
        let l = query(&mut client, "lazy", QueryTarget::Site(n));
        assert_eq!(report(&e), report(&l), "post-edit site {n} diverges");
    }

    // `all` promotes the lazy session; the full report matches the eager
    // session's, and point queries keep answering afterwards.
    let e = query(&mut client, "eager", QueryTarget::All);
    let l = query(&mut client, "lazy", QueryTarget::All);
    assert_eq!(e.status, Status::Ok);
    assert_eq!(l.status, Status::Ok);
    assert_eq!(report(&e), report(&l), "promoted all-report diverges");
    let after = query(&mut client, "lazy", QueryTarget::Site(0));
    assert_eq!(after.status, Status::Ok);

    // Bad targets still error, not crash, on a lazy session.
    let mut client2 = Client::connect(handle.addr()).expect("connects");
    open(&mut client2, "lazy2", true);
    let bad = query(&mut client2, "lazy2", QueryTarget::Site(99));
    assert_eq!(bad.status, Status::Error);
    let bad = query(&mut client2, "lazy2", QueryTarget::Proc("nope".into()));
    assert_eq!(bad.status, Status::Error);

    handle.shutdown();
}

#[test]
fn starved_lazy_query_degrades_then_recovers() {
    let handle = spawn(ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connects");
    open(&mut client, "s", true);

    // A one-op budget cannot finish the demand walk: the answer is the
    // sound widening, flagged degraded, and names are still plausible.
    let resp = client
        .request_with(
            Request::Query {
                session: "s".to_string(),
                target: QueryTarget::Site(0),
            },
            Some(1),
            None,
        )
        .expect("query answers");
    assert_eq!(resp.status, Status::Degraded, "starved query must degrade");
    let degraded_report = report(&resp);

    // Unlimited budget on the same session now answers exactly, and the
    // exact sets are inside the degraded ones (superset soundness).
    let exact = query(&mut client, "s", QueryTarget::Site(0));
    assert_eq!(exact.status, Status::Ok, "session recovers after a trip");
    let parse_sets = |rep: &str| -> Vec<String> {
        // mod/use/dmod arrays in order; good enough for containment.
        rep.split('[')
            .skip(1)
            .map(|chunk| chunk.split(']').next().unwrap_or("").to_string())
            .collect()
    };
    let wide = parse_sets(&degraded_report);
    let tight = parse_sets(&report(&exact));
    assert_eq!(wide.len(), tight.len());
    for (w, t) in wide.iter().zip(&tight) {
        for name in t.split(',').filter(|s| !s.is_empty()) {
            assert!(
                w.contains(name),
                "exact name {name} missing from degraded set [{w}]"
            );
        }
    }
    handle.shutdown();
}
