//! Crash-safety wall for the server's durability layer: eviction and
//! resurrection, startup recovery from journals, torn-tail repair,
//! quarantine of untrustworthy files, and the journal fault sites
//! (`serve.journal.append`, `serve.journal.fsync`, `serve.evict`,
//! `serve.recover`).
//!
//! The contract, from `docs/SERVER.md`:
//!
//! 1. an evicted-then-resurrected session answers **bit-identical** to
//!    one that was never evicted (and to a from-scratch [`Analyzer`]);
//! 2. restart recovery replays each journal's durable prefix and proves
//!    it against scratch before serving; torn tails truncate to the last
//!    complete record, never panic;
//! 3. journal failure costs durability, never correctness — the edit
//!    applies, the response says `degraded`, siblings stay exact; and
//! 4. when a fault blocks eviction or resurrection the server sheds the
//!    request with a typed `overloaded` + retry hint instead of lying.

use std::path::PathBuf;

use modref_core::Analyzer;
use modref_frontend::parse_program;
use modref_guard::FaultPlan;
use modref_incr::render::{render_json, SiteSets};
use modref_incr::Script;
use modref_ir::Program;
use modref_serve::journal::{FsyncPolicy, Journal, JournalRecord};
use modref_serve::{Client, QueryTarget, Request, Server, ServerConfig, Status};

const SRC_A: &str = "var a, b, c;\n\
     proc stepper(x) {\n  x = x + a;\n  b = b + 1;\n}\n\
     main {\n  call stepper(a);\n  call stepper(c);\n}\n";

const SRC_B: &str = "var g, h;\n\
     proc probe() {\n  g = h;\n}\n\
     main {\n  call probe();\n  h = g;\n}\n";

const SRC_C: &str = "var u, v, w;\n\
     proc f1() { u = v; }\n\
     proc f2() { v = w; call f1(); }\n\
     main {\n  call f1();\n  call f2();\n}\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("modref-recover-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");
    dir
}

fn bind(cfg: ServerConfig) -> Server {
    Server::bind("127.0.0.1:0".parse().expect("loopback parses"), cfg).expect("binds")
}

fn open(client: &mut Client, session: &str, source: &str) -> modref_serve::Response {
    client
        .request(Request::Open {
            session: session.to_string(),
            program: source.to_string(),
            lazy: false,
        })
        .expect("open answers")
}

fn edit(client: &mut Client, session: &str, script: &str) -> modref_serve::Response {
    client
        .request(Request::Edit {
            session: session.to_string(),
            script: script.to_string(),
        })
        .expect("edit answers")
}

fn query_all(client: &mut Client, session: &str) -> modref_serve::Response {
    client
        .request(Request::Query {
            session: session.to_string(),
            target: QueryTarget::All,
        })
        .expect("query answers")
}

fn stats(client: &mut Client) -> modref_serve::Response {
    let resp = client.request(Request::Stats).expect("stats answers");
    assert_eq!(resp.status, Status::Ok, "stats not ok");
    resp
}

/// Advances a replica through the same parse → resolve → apply path the
/// server uses, then renders the from-scratch report — the oracle every
/// recovered answer must match byte-for-byte.
fn apply(replica: &mut Program, script: &str) {
    for step in Script::parse(script).expect("script parses").steps() {
        let edit = step.resolve(replica).expect("resolves");
        *replica = replica.apply_edit(&edit).expect("applies").0;
    }
}

fn scratch_report(program: &Program) -> String {
    let summary = Analyzer::new().analyze(program);
    render_json(program, &SiteSets::from_summary(program, &summary))
}

#[test]
fn evicted_sessions_resurrect_bit_identical_without_a_state_dir() {
    // No --state-dir: parking keeps history in memory only.
    let handle = bind(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    })
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    assert_eq!(open(&mut client, "a", SRC_A).status, Status::Ok);
    assert_eq!(
        edit(&mut client, "a", "set-local stepper mod=a,b use=c").status,
        Status::Ok
    );
    let mut replica_a = parse_program(SRC_A).expect("parses");
    apply(&mut replica_a, "set-local stepper mod=a,b use=c");

    // The second open parks `a` (the table holds one live engine).
    assert_eq!(open(&mut client, "b", SRC_B).status, Status::Ok);
    assert_eq!(
        edit(&mut client, "b", "set-local probe mod=g,h use=g").status,
        Status::Ok
    );
    let mut replica_b = parse_program(SRC_B).expect("parses");
    apply(&mut replica_b, "set-local probe mod=g,h use=g");

    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("sessions"), Some(1), "one live engine");
    assert_eq!(resp.uint_field("parked"), Some(1), "one parked session");
    assert_eq!(resp.uint_field("evictions"), Some(1));

    // Querying `a` resurrects it (parking `b`): post-edit bit-identity.
    let resp = query_all(&mut client, "a");
    assert_eq!(resp.status, Status::Ok, "resurrected query not ok");
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica_a),
        "resurrected `a` diverged from scratch"
    );

    // And back again: `b` resurrects with *its* edit intact.
    let resp = query_all(&mut client, "b");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica_b),
        "twice-parked `b` diverged from scratch"
    );

    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("evictions"), Some(3));
    assert_eq!(resp.uint_field("recoveries"), Some(2));
    assert_eq!(resp.uint_field("errors"), Some(0), "churn produced errors");
    handle.shutdown();
}

#[test]
fn restart_recovers_journaled_sessions_bit_identical_to_scratch() {
    let dir = temp_dir("restart");
    let cfg = || ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First life: two sessions, edits on each, graceful drain.
    let handle = bind(cfg()).spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");
    assert_eq!(open(&mut client, "alpha", SRC_A).status, Status::Ok);
    assert_eq!(open(&mut client, "beta", SRC_B).status, Status::Ok);
    assert_eq!(
        edit(&mut client, "alpha", "set-local stepper mod=a,b use=c\nadd-call main stepper args=b").status,
        Status::Ok
    );
    assert_eq!(
        edit(&mut client, "beta", "set-local probe mod=g,h use=g").status,
        Status::Ok
    );
    drop(client);
    assert_eq!(handle.drain(), 2, "drain syncs both journals");

    let mut replica_a = parse_program(SRC_A).expect("parses");
    apply(&mut replica_a, "set-local stepper mod=a,b use=c");
    apply(&mut replica_a, "add-call main stepper args=b");
    let mut replica_b = parse_program(SRC_B).expect("parses");
    apply(&mut replica_b, "set-local probe mod=g,h use=g");

    // Second life: both sessions come back verified, and answer exactly.
    let server = bind(cfg());
    let rec = server.recovery();
    assert_eq!(rec.recovered, 2, "both journals recover live");
    assert_eq!(rec.parked, 0);
    assert_eq!(rec.quarantined, 0);
    assert_eq!(rec.truncated_tails, 0);
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("reconnects");
    for (name, replica) in [("alpha", &replica_a), ("beta", &replica_b)] {
        let resp = query_all(&mut client, name);
        assert_eq!(resp.status, Status::Ok, "recovered `{name}` not ok");
        assert_eq!(
            resp.str_field("report").expect("report"),
            scratch_report(replica),
            "recovered `{name}` diverged from scratch"
        );
    }
    assert_eq!(stats(&mut client).uint_field("recoveries"), Some(2));

    // Recovered sessions keep journaling: edit, drain, restart again.
    assert_eq!(
        edit(&mut client, "alpha", "remove-call 0").status,
        Status::Ok
    );
    apply(&mut replica_a, "remove-call 0");
    drop(client);
    assert_eq!(handle.drain(), 2);

    let handle = bind(cfg()).spawn();
    let mut client = Client::connect(handle.addr()).expect("third life connects");
    let resp = query_all(&mut client, "alpha");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica_a),
        "post-recovery edit was not durable"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_journal_tails_truncate_to_the_durable_prefix() {
    let dir = temp_dir("torn");

    // Hand-build a journal: snapshot + two edits, then a half-written
    // third record simulating a crash mid-append.
    let mut journal = Journal::create(&dir, "torn", FsyncPolicy::Never).expect("creates");
    journal
        .append(&JournalRecord::Snapshot {
            session: "torn".into(),
            program: SRC_A.into(),
        })
        .expect("snapshot");
    for line in ["set-local stepper mod=a,b use=c", "add-call main stepper args=b"] {
        journal
            .append(&JournalRecord::Edit { line: line.into() })
            .expect("edit record");
    }
    journal.sync().expect("sync");
    let path = journal.path().to_owned();
    drop(journal);
    let torn = modref_serve::journal::encode_record(&JournalRecord::Edit {
        line: "remove-call 0".into(),
    })
    .expect("fits the cap");
    let mut raw = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopens");
    std::io::Write::write_all(&mut raw, &torn[..torn.len() - 2]).expect("tears");
    drop(raw);

    let server = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let rec = server.recovery();
    assert_eq!(rec.recovered, 1, "torn journal still recovers");
    assert_eq!(rec.truncated_tails, 1, "the tear was noticed and cut");
    assert_eq!(rec.quarantined, 0);

    // The recovered session holds exactly the durable prefix: the two
    // complete edits, not the torn third.
    let mut replica = parse_program(SRC_A).expect("parses");
    apply(&mut replica, "set-local stepper mod=a,b use=c");
    apply(&mut replica, "add-call main stepper args=b");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let resp = query_all(&mut client, "torn");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica),
        "recovered prefix diverged from scratch"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn untrustworthy_journals_are_quarantined_never_fatal() {
    let dir = temp_dir("quarantine");

    // One good journal...
    let mut journal = Journal::create(&dir, "good", FsyncPolicy::Never).expect("creates");
    journal
        .append(&JournalRecord::Snapshot {
            session: "good".into(),
            program: SRC_B.into(),
        })
        .expect("snapshot");
    journal.sync().expect("sync");
    drop(journal);
    // ...one that is pure garbage, and one whose first record is an edit
    // (valid framing, untrustworthy shape).
    std::fs::write(dir.join("junk.journal"), b"this was never a journal").expect("junk writes");
    std::fs::write(
        dir.join("headless.journal"),
        modref_serve::journal::encode_record(&JournalRecord::Edit {
            line: "remove-call 0".into(),
        })
        .expect("fits the cap"),
    )
    .expect("headless writes");

    let server = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let rec = server.recovery();
    assert_eq!(rec.recovered, 1, "the good journal recovers");
    assert_eq!(rec.quarantined, 2, "both bad files quarantined");
    assert!(dir.join("junk.journal.bad").exists(), "junk renamed aside");
    assert!(dir.join("headless.journal.bad").exists());
    assert!(!dir.join("junk.journal").exists());

    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");
    let resp = query_all(&mut client, "good");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&parse_program(SRC_B).expect("parses"))
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_beyond_the_cap_parks_the_excess_and_resurrects_on_demand() {
    let dir = temp_dir("overflow");
    for (name, source) in [("j1", SRC_A), ("j2", SRC_B), ("j3", SRC_C)] {
        let mut journal = Journal::create(&dir, name, FsyncPolicy::Never).expect("creates");
        journal
            .append(&JournalRecord::Snapshot {
                session: name.into(),
                program: source.into(),
            })
            .expect("snapshot");
        journal.sync().expect("sync");
    }

    let server = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        max_sessions: 2,
        ..ServerConfig::default()
    });
    let rec = server.recovery();
    assert_eq!(rec.recovered, 2, "cap bounds the live engines");
    assert_eq!(rec.parked, 1, "the overflow parks instead of dropping");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Every session answers exactly, parked ones via resurrection.
    for (name, source) in [("j1", SRC_A), ("j2", SRC_B), ("j3", SRC_C)] {
        let resp = query_all(&mut client, name);
        assert_eq!(resp.status, Status::Ok, "`{name}` not ok");
        assert_eq!(
            resp.str_field("report").expect("report"),
            scratch_report(&parse_program(source).expect("parses")),
            "`{name}` diverged"
        );
    }
    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("sessions"), Some(2));
    assert_eq!(resp.uint_field("parked"), Some(1));
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_append_fault_costs_durability_never_correctness() {
    let dir = temp_dir("append-fault");
    let handle = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        faults: Some(FaultPlan::new().panic_at("serve.journal.append")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    })
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    // The sibling journals normally.
    assert_eq!(open(&mut client, "well", SRC_B).status, Status::Ok);

    // The poisoned open still opens — degraded, without durability.
    let resp = open(&mut client, "sick", SRC_A);
    assert_eq!(resp.status, Status::Degraded, "open must survive the fault");
    assert!(
        resp.str_field("reason")
            .expect("degraded open carries a reason")
            .contains("without durability"),
        "reason: {:?}",
        resp.str_field("reason")
    );

    // Edits on the dead-journal session: applied, answered degraded.
    let resp = edit(&mut client, "sick", "set-local stepper mod=a,b use=c");
    assert_eq!(resp.status, Status::Degraded);
    assert!(
        resp.str_field("reason")
            .expect("reason")
            .contains("no longer durable"),
        "reason: {:?}",
        resp.str_field("reason")
    );
    assert_eq!(resp.uint_field("applied"), Some(1), "the edit still applied");

    // The engine is exact despite the lost journal.
    let mut replica = parse_program(SRC_A).expect("parses");
    apply(&mut replica, "set-local stepper mod=a,b use=c");
    let resp = query_all(&mut client, "sick");
    assert_eq!(resp.status, Status::Ok, "query is exact, not degraded");
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica)
    );

    // Sibling session: fully durable, fully exact.
    assert_eq!(
        edit(&mut client, "well", "set-local probe mod=g,h use=g").status,
        Status::Ok
    );
    drop(client);
    assert_eq!(handle.drain(), 1, "only the healthy journal syncs");

    // Restart: `well` comes back with its edit; `sick` has no usable
    // journal (its file never got a snapshot) and is quarantined.
    let server = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        ..ServerConfig::default()
    });
    let rec = server.recovery();
    assert_eq!(rec.recovered, 1, "only `well` is durable");
    let mut replica_b = parse_program(SRC_B).expect("parses");
    apply(&mut replica_b, "set-local probe mod=g,h use=g");
    let handle = server.spawn();
    let mut client = Client::connect(handle.addr()).expect("reconnects");
    let resp = query_all(&mut client, "well");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica_b)
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_fsync_fault_degrades_the_edit_but_the_apply_commits() {
    let dir = temp_dir("fsync-fault");
    let handle = bind(ServerConfig {
        state_dir: Some(dir.clone()),
        faults: Some(FaultPlan::new().exhaust_at("serve.journal.fsync")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    })
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    let resp = open(&mut client, "sick", SRC_A);
    assert_eq!(resp.status, Status::Degraded, "fsync fault degrades the open");
    let resp = edit(&mut client, "sick", "set-local stepper mod=a use=b,c");
    assert_eq!(resp.status, Status::Degraded);
    assert_eq!(resp.uint_field("applied"), Some(1));

    let mut replica = parse_program(SRC_A).expect("parses");
    apply(&mut replica, "set-local stepper mod=a use=b,c");
    let resp = query_all(&mut client, "sick");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&replica),
        "apply did not commit under the fsync fault"
    );
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evict_fault_sheds_the_open_with_a_typed_overloaded() {
    let handle = bind(ServerConfig {
        max_sessions: 1,
        faults: Some(FaultPlan::new().panic_at("serve.evict")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    })
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    assert_eq!(open(&mut client, "well", SRC_B).status, Status::Ok);

    // The poisoned open needs an eviction it cannot get: shed, not
    // errored, with the retry hint.
    let resp = open(&mut client, "sick", SRC_A);
    assert_eq!(resp.status, Status::Overloaded, "fault must shed, not evict");
    assert_eq!(resp.uint_field("retry_after_ms"), Some(50));
    assert!(
        resp.str_field("reason")
            .expect("overloaded carries a reason")
            .contains("eviction unavailable"),
        "reason: {:?}",
        resp.str_field("reason")
    );

    // The incumbent was not disturbed, and a healthy session name can
    // still evict it normally.
    let resp = query_all(&mut client, "well");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&parse_program(SRC_B).expect("parses"))
    );
    assert_eq!(open(&mut client, "other", SRC_C).status, Status::Ok);
    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("shed"), Some(1));
    assert_eq!(resp.uint_field("evictions"), Some(1));
    handle.shutdown();
}

#[test]
fn recover_fault_sheds_resurrection_instead_of_guessing() {
    let handle = bind(ServerConfig {
        max_sessions: 1,
        faults: Some(FaultPlan::new().panic_at("serve.recover")),
        fault_session: Some("sick".to_string()),
        ..ServerConfig::default()
    })
    .spawn();
    let mut client = Client::connect(handle.addr()).expect("connects");

    // Park `sick` by opening a sibling (whose requests are unarmed).
    assert_eq!(open(&mut client, "sick", SRC_A).status, Status::Ok);
    assert_eq!(open(&mut client, "well", SRC_B).status, Status::Ok);
    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("parked"), Some(1));

    // Resurrection is blocked by the fault: the query sheds.
    let resp = query_all(&mut client, "sick");
    assert_eq!(resp.status, Status::Overloaded);
    assert!(
        resp.str_field("reason")
            .expect("reason")
            .contains("resurrection unavailable"),
        "reason: {:?}",
        resp.str_field("reason")
    );

    // Nothing was lost: the parked session is still parked, the live one
    // exact.
    let resp = stats(&mut client);
    assert_eq!(resp.uint_field("parked"), Some(1));
    assert_eq!(resp.uint_field("sessions"), Some(1));
    let resp = query_all(&mut client, "well");
    assert_eq!(resp.status, Status::Ok);
    assert_eq!(
        resp.str_field("report").expect("report"),
        scratch_report(&parse_program(SRC_B).expect("parses"))
    );
    handle.shutdown();
}
