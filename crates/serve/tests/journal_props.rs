//! Property wall for the durable edit journal (`modref_serve::journal`).
//!
//! The journal scanner must be total and prefix-exact: for *any* byte
//! stream — clean record sequences, streams cut at every byte, single
//! flipped bits, or pure garbage — [`scan_bytes`] yields exactly the
//! longest clean record prefix, never panics, and never trusts a byte
//! after the first damage. Failures replay with
//! `MODREF_SEED=<seed> cargo test -p modref-serve --test journal_props`.

use modref_check::prelude::*;
use modref_serve::journal::{
    encode_record, path_for, scan_bytes, session_for, scan_journal, truncate_to, FsyncPolicy,
    Journal, JournalRecord, RECORD_HEADER_LEN,
};

fn arb_record() -> BoxedStrategy<JournalRecord> {
    let snap = (arbitrary_text(0..40), arbitrary_text(0..200))
        .map(|(session, program)| JournalRecord::Snapshot { session, program })
        .boxed();
    let edit = arbitrary_text(0..60)
        .map(|line| JournalRecord::Edit { line })
        .boxed();
    one_of(vec![snap, edit]).boxed()
}

fn arb_records() -> BoxedStrategy<Vec<JournalRecord>> {
    vec_of(arb_record(), 1..6).boxed()
}

fn concat(records: &[JournalRecord]) -> Vec<u8> {
    records.iter().flat_map(|r| encode_record(r).expect("fits the cap")).collect()
}

/// How many whole records fit in the first `cut` bytes, and where that
/// last whole record ends.
fn prefix_at(records: &[JournalRecord], cut: usize) -> (usize, usize) {
    let (mut k, mut boundary) = (0usize, 0usize);
    for r in records {
        let next = boundary + encode_record(r).expect("fits the cap").len();
        if next > cut {
            break;
        }
        boundary = next;
        k += 1;
    }
    (k, boundary)
}

property! {
    #![cases = 256]

    /// Encode → scan round-trips any record sequence exactly, including
    /// control characters, quotes, and multi-byte text in every field.
    fn encode_scan_round_trip(records in arb_records()) {
        let stream = concat(&records);
        let scan = scan_bytes(&stream);
        prop_assert_eq!(&scan.records, &records);
        prop_assert_eq!(scan.good_bytes, stream.len() as u64);
        prop_assert!(!scan.torn, "clean stream reported torn");
    }

    /// Cutting a valid stream at an arbitrary byte yields exactly the
    /// whole records before the cut; the torn flag fires iff the cut is
    /// off a record boundary.
    fn cut_streams_recover_the_exact_record_prefix(case in (arb_records(), any_u64())) {
        let (records, cut_seed) = case;
        let stream = concat(&records);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let (k, boundary) = prefix_at(&records, cut);
        let scan = scan_bytes(&stream[..cut]);
        prop_assert_eq!(&scan.records[..], &records[..k], "wrong prefix at cut {}", cut);
        prop_assert_eq!(scan.good_bytes, boundary as u64);
        prop_assert_eq!(scan.torn, cut != boundary, "torn flag wrong at cut {}", cut);
    }

    /// Flipping a single bit anywhere invalidates exactly the record it
    /// lands in: the scan keeps every record before it, reports torn,
    /// and trusts nothing after. (FNV-1a catches every single-byte
    /// payload change; a flipped header fails its own length or
    /// checksum comparison.)
    fn single_bit_flips_are_always_detected(case in (arb_records(), any_u64(), any_u64())) {
        let (records, pos_seed, bit_seed) = case;
        let mut stream = concat(&records);
        let pos = (pos_seed as usize) % stream.len();
        stream[pos] ^= 1u8 << (bit_seed % 8);
        let (k, boundary) = prefix_at(&records, pos);
        let scan = scan_bytes(&stream);
        prop_assert_eq!(&scan.records[..], &records[..k], "flip at {} leaked past damage", pos);
        prop_assert_eq!(scan.good_bytes, boundary as u64);
        prop_assert!(scan.torn, "flip at {} not reported torn", pos);
    }

    /// Arbitrary garbage never panics the scanner, and whatever it
    /// accepts re-encodes to exactly the bytes it consumed.
    fn garbage_never_panics_and_accepted_prefixes_are_real(bytes in
        vec_of(ints_inclusive(0usize..=255), 0..200)
            .map(|v| v.into_iter().map(|b| b as u8).collect::<Vec<u8>>())
            .boxed())
    {
        let scan = scan_bytes(&bytes);
        prop_assert!(scan.good_bytes as usize <= bytes.len());
        let reencoded = concat(&scan.records);
        prop_assert_eq!(
            &reencoded[..], &bytes[..scan.good_bytes as usize],
            "accepted prefix does not round-trip"
        );
    }
}

/// The exhaustive version of the cut property: every byte position of a
/// fixed two-record stream, no sampling.
#[test]
fn cut_at_every_byte_is_prefix_exact() {
    let records = vec![
        JournalRecord::Snapshot {
            session: "s".into(),
            program: "var g;\nmain { g = 1; }\n".into(),
        },
        JournalRecord::Edit {
            line: "set-local p mod=g use=g".into(),
        },
    ];
    let stream = concat(&records);
    for cut in 0..=stream.len() {
        let (k, boundary) = prefix_at(&records, cut);
        let scan = scan_bytes(&stream[..cut]);
        assert_eq!(&scan.records[..], &records[..k], "cut {cut}");
        assert_eq!(scan.good_bytes, boundary as u64, "cut {cut}");
        assert_eq!(scan.torn, cut != boundary, "cut {cut}");
    }
}

/// File-level torn-tail repair: a journal with trailing damage scans to
/// its clean prefix, truncates back to it, and accepts appends again.
#[test]
fn torn_tail_truncates_and_the_journal_resumes_appending() {
    let dir = std::env::temp_dir().join(format!("modref-journal-props-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir creates");

    let mut journal =
        Journal::create(&dir, "torn", FsyncPolicy::Never).expect("journal creates");
    let first = JournalRecord::Snapshot {
        session: "torn".into(),
        program: "var g;\nmain { g = 1; }\n".into(),
    };
    let second = JournalRecord::Edit {
        line: "set-local p mod=g".into(),
    };
    journal.append(&first).expect("append 1");
    journal.append(&second).expect("append 2");
    journal.sync().expect("sync");
    let path = journal.path().to_owned();
    drop(journal);

    // Simulate a crash mid-append: a half-written third record.
    let torn = encode_record(&JournalRecord::Edit {
        line: "remove-call 0".into(),
    })
    .expect("fits the cap");
    let mut tail = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopens");
    std::io::Write::write_all(&mut tail, &torn[..RECORD_HEADER_LEN + 3]).expect("tears");
    drop(tail);

    let scan = scan_journal(&path).expect("scans");
    assert_eq!(scan.records.len(), 2, "clean prefix is the two records");
    assert!(scan.torn);
    truncate_to(&path, scan.good_bytes).expect("truncates");

    let rescan = scan_journal(&path).expect("rescans");
    assert_eq!(rescan.records, vec![first.clone(), second.clone()]);
    assert!(!rescan.torn, "truncated journal is clean");

    let mut resumed = Journal::append_to(&path, FsyncPolicy::Always).expect("reopens");
    let third = JournalRecord::Edit {
        line: "add-call main p args=g".into(),
    };
    resumed.append(&third).expect("appends past the repair");
    resumed.commit().expect("commits");
    drop(resumed);

    let last = scan_journal(&path).expect("scans again");
    assert_eq!(last.records, vec![first, second, third]);
    assert!(!last.torn);

    let _ = std::fs::remove_dir_all(&dir);
}

/// The filename codec holds for names the property text generator emits.
#[test]
fn journal_paths_round_trip_generated_names() {
    let dir = std::path::Path::new("/tmp/state");
    for name in ["a", "sess-1", "UPPER_lower-9", "with space", "sl/ash", "é"] {
        let path = path_for(dir, name);
        assert_eq!(session_for(&path).as_deref(), Some(name), "name {name:?}");
    }
}
