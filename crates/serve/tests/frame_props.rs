//! Protocol fuzz wall for the wire framing (`modref_serve::frame`).
//!
//! The framing layer must be total: for *any* byte stream — well-formed
//! frames split at arbitrary read boundaries, pipelined back-to-back
//! frames, hostile length prefixes, streams cut mid-frame, or pure
//! garbage — the decoder either yields exactly the encoded payloads or a
//! typed [`FrameError`], and it never panics, never truncates silently,
//! and never resynchronises on its own. Failures replay with
//! `MODREF_SEED=<seed> cargo test -p modref-serve --test frame_props`.

use std::io::Read;

use modref_check::prelude::*;
use modref_serve::frame::{encode_frame, read_frame, write_frame, FrameError, MAX_FRAME_LEN};

/// A reader that hands out the underlying bytes in chunks whose sizes
/// cycle through `pattern` — the adversarial transport that splits reads
/// at every boundary the pattern can express.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    pattern: Vec<usize>,
    next: usize,
}

impl ChunkedReader {
    fn new(data: Vec<u8>, pattern: Vec<usize>) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            pattern,
            next: 0,
        }
    }
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.data.len() || buf.is_empty() {
            return Ok(0);
        }
        let chunk = self.pattern[self.next % self.pattern.len()].max(1);
        self.next += 1;
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A non-empty payload of arbitrary bytes (including NUL, multi-byte
/// UTF-8 fragments, and bytes that look like length prefixes).
fn arb_payload() -> BoxedStrategy<Vec<u8>> {
    vec_of(ints_inclusive(0usize..=255), 1..120)
        .map(|bytes| bytes.into_iter().map(|b| b as u8).collect::<Vec<u8>>())
        .boxed()
}

/// 1–5 payloads to pipeline into one stream.
fn arb_payloads() -> BoxedStrategy<Vec<Vec<u8>>> {
    vec_of(arb_payload(), 1..6).boxed()
}

/// Chunk-size patterns biased toward the nasty cases: single bytes,
/// sizes that straddle the 4-byte header, and large gulps.
fn arb_pattern() -> BoxedStrategy<Vec<usize>> {
    vec_of(ints_inclusive(1usize..=9), 1..8).boxed()
}

fn concat_frames(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(&encode_frame(p).expect("test payloads are encodable"));
    }
    stream
}

property! {
    #![cases = 256]

    /// Pipelined frames read back exactly, in order, through arbitrary
    /// read-boundary splits, ending with a clean `Ok(None)`.
    fn pipelined_frames_survive_arbitrary_splits(case in (arb_payloads(), arb_pattern())) {
        let (payloads, pattern) = case;
        let mut reader = ChunkedReader::new(concat_frames(&payloads), pattern);
        for (i, expect) in payloads.iter().enumerate() {
            match read_frame(&mut reader) {
                Ok(Some(got)) => prop_assert_eq!(&got, expect, "frame {} corrupted", i),
                other => prop_assert!(false, "frame {}: expected payload, got {:?}", i, other),
            }
        }
        prop_assert_eq!(read_frame(&mut reader), Ok(None), "stream must end cleanly");
    }

    /// Cutting a valid stream at any byte yields the uncut prefix of
    /// payloads followed by either a clean EOF (cut on a frame boundary)
    /// or a typed truncation error — never a panic, never a wrong or
    /// partial payload.
    fn truncation_at_any_boundary_is_typed(case in (arb_payloads(), arb_pattern(), any_u64())) {
        let (payloads, pattern, cut_seed) = case;
        let stream = concat_frames(&payloads);
        let cut = (cut_seed as usize) % (stream.len() + 1);
        let mut reader = ChunkedReader::new(stream[..cut].to_vec(), pattern);
        let mut delivered = 0usize;
        loop {
            match read_frame(&mut reader) {
                Ok(Some(got)) => {
                    prop_assert!(
                        delivered < payloads.len(),
                        "decoder invented a frame past the {} encoded",
                        payloads.len()
                    );
                    prop_assert_eq!(
                        &got, &payloads[delivered],
                        "frame {} corrupted by truncation at byte {}",
                        delivered, cut
                    );
                    delivered += 1;
                }
                Ok(None) => {
                    // Clean EOF is only legal exactly on a frame boundary.
                    let boundary: usize = payloads[..delivered].iter().map(|p| 4 + p.len()).sum();
                    prop_assert_eq!(boundary, cut, "clean EOF off a frame boundary");
                    break;
                }
                Err(FrameError::Truncated { part, expected, got }) => {
                    prop_assert!(
                        part == "header" || part == "payload",
                        "unknown truncation part {:?}", part
                    );
                    prop_assert!(got < expected, "truncation with got >= expected");
                    break;
                }
                Err(other) => {
                    // A cut can also land so that payload bytes are read
                    // as a hostile header — but only *after* the real
                    // frames are exhausted, never instead of one.
                    prop_assert!(
                        matches!(other, FrameError::ZeroLength | FrameError::Oversized { .. }),
                        "unexpected error class {:?}", other
                    );
                    break;
                }
            }
        }
    }

    /// Arbitrary garbage never panics the decoder: every outcome is a
    /// payload, clean EOF, or a typed error, and payload bytes are taken
    /// verbatim from the stream.
    fn garbage_streams_never_panic(case in (arb_payload(), arb_pattern())) {
        let (garbage, pattern) = case;
        let mut reader = ChunkedReader::new(garbage.clone(), pattern);
        for _ in 0..garbage.len() + 1 {
            match read_frame(&mut reader) {
                Ok(None) => break,
                Ok(Some(payload)) => {
                    prop_assert!(!payload.is_empty(), "decoder produced an empty payload");
                    prop_assert!(payload.len() <= MAX_FRAME_LEN, "decoder exceeded the cap");
                }
                Err(_) => break, // typed rejection: the contract
            }
        }
    }

    /// Encode/decode round-trip for single frames, and the encoder
    /// refuses exactly what the decoder refuses.
    fn encode_decode_round_trip(payload in arb_payload()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).expect("writes");
        let mut cur = std::io::Cursor::new(buf);
        prop_assert_eq!(read_frame(&mut cur), Ok(Some(payload)));
        prop_assert_eq!(read_frame(&mut cur), Ok(None));
    }
}

#[test]
fn hostile_length_prefixes_are_rejected_on_both_sides() {
    // Zero length: encoder and decoder agree.
    assert_eq!(encode_frame(b"").unwrap_err(), FrameError::ZeroLength);
    let mut zero = std::io::Cursor::new(vec![0, 0, 0, 0, b'x']);
    assert_eq!(read_frame(&mut zero).unwrap_err(), FrameError::ZeroLength);

    // Oversized: the declared length is reported, nothing is allocated.
    let over = (MAX_FRAME_LEN + 1) as u32;
    let mut big = std::io::Cursor::new(over.to_be_bytes().to_vec());
    assert_eq!(
        read_frame(&mut big).unwrap_err(),
        FrameError::Oversized {
            declared: u64::from(over)
        }
    );
    let huge = vec![0u8; MAX_FRAME_LEN + 1];
    assert_eq!(
        encode_frame(&huge).unwrap_err(),
        FrameError::Oversized {
            declared: (MAX_FRAME_LEN + 1) as u64
        }
    );

    // Exactly at the cap is legal both ways.
    let exact = vec![b'a'; MAX_FRAME_LEN];
    let bytes = encode_frame(&exact).expect("cap-sized frame encodes");
    let mut cur = std::io::Cursor::new(bytes);
    assert_eq!(read_frame(&mut cur).expect("decodes"), Some(exact));
}
