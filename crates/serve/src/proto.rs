//! The JSON-RPC request/response vocabulary.
//!
//! Every frame carries one JSON object. Requests have an `id` (echoed on
//! the response), an `op`, and op-specific fields; responses have the
//! echoed `id` plus a three-valued `status` that mirrors the CLI's exit
//! codes: `"ok"` (exact results — exit 0), `"error"` (the request was
//! rejected, session state unchanged beyond any named applied prefix —
//! exit 1), `"degraded"` (the request was served under a tripped budget,
//! deadline, or contained fault; any reported sets are sound
//! over-approximations — exit 3). A fourth status, `"overloaded"`,
//! carries no result at all: the server shed the request under
//! admission control and the client should retry after the
//! `retry_after_ms` hint. See `docs/SERVER.md` for the full schema.
//!
//! Parsing uses the dependency-free [`modref_trace::parse_json`]; both
//! sides render with [`modref_trace::escape_json`], so the wire format
//! shares one escaping implementation with every other JSON the
//! workspace emits.

use modref_trace::{escape_json, parse_json, Json};

/// What a `query` asks for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryTarget {
    /// Every call site's `MOD`/`DMOD`/`USE` (the `analyze --json` report).
    All,
    /// One call site by current index.
    Site(usize),
    /// One procedure's `GMOD`/`GUSE` by name.
    Proc(String),
}

impl QueryTarget {
    /// The wire form: `all`, `site:<n>`, or `proc:<name>`.
    pub fn render(&self) -> String {
        match self {
            QueryTarget::All => "all".to_owned(),
            QueryTarget::Site(n) => format!("site:{n}"),
            QueryTarget::Proc(p) => format!("proc:{p}"),
        }
    }

    fn parse(text: &str) -> Result<QueryTarget, String> {
        if text == "all" {
            return Ok(QueryTarget::All);
        }
        if let Some(n) = text.strip_prefix("site:") {
            return n
                .parse::<usize>()
                .map(QueryTarget::Site)
                .map_err(|_| format!("bad site index in target `{text}`"));
        }
        if let Some(p) = text.strip_prefix("proc:") {
            if p.is_empty() {
                return Err("empty procedure name in query target".to_owned());
            }
            return Ok(QueryTarget::Proc(p.to_owned()));
        }
        Err(format!(
            "unknown query target `{text}` (expected all, site:<n>, or proc:<name>)"
        ))
    }
}

/// One request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Create a session from program source text.
    Open {
        /// Session name (client-chosen, unique per server).
        session: String,
        /// MiniProc source text.
        program: String,
        /// Open in demand-driven mode: no up-front solve; `site:`/`proc:`
        /// queries resolve lazily and a `target=all` query promotes the
        /// session to the exhaustive engine.
        lazy: bool,
    },
    /// Apply a batched edit script (the `--edits` grammar) to a session.
    Edit {
        /// Target session.
        session: String,
        /// Edit script text, one edit per line.
        script: String,
    },
    /// Read MOD/USE results from a session.
    Query {
        /// Target session.
        session: String,
        /// What to report.
        target: QueryTarget,
    },
    /// Drop a session.
    Close {
        /// Target session.
        session: String,
    },
    /// Server-wide request/latency/session counters.
    Stats,
}

impl Request {
    /// The `op` string this request carries on the wire.
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::Edit { .. } => "edit",
            Request::Query { .. } => "query",
            Request::Close { .. } => "close",
            Request::Stats => "stats",
        }
    }

    /// The session the request addresses, if any (`stats` has none).
    pub fn session(&self) -> Option<&str> {
        match self {
            Request::Open { session, .. }
            | Request::Edit { session, .. }
            | Request::Query { session, .. }
            | Request::Close { session } => Some(session),
            Request::Stats => None,
        }
    }
}

/// A full request frame: id, body, and optional per-request guard
/// overrides (tighter than the server's configured defaults or, when the
/// server has none, the only limits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Client-chosen id, echoed verbatim on the response.
    pub id: u64,
    /// The operation.
    pub request: Request,
    /// Per-request op budget (bit-vector + boolean steps).
    pub budget_ops: Option<u64>,
    /// Per-request wall-clock deadline, milliseconds.
    pub timeout_ms: Option<u64>,
}

/// A request that could not be understood. Carries the id when one was
/// recoverable so the error response can still be correlated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// The request id, if the frame got far enough to contain one.
    pub id: Option<u64>,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ProtoError {}

fn get_str(obj: &Json, key: &str) -> Option<String> {
    obj.get(key).and_then(Json::as_str).map(str::to_owned)
}

/// A JSON number field as an exact non-negative integer (the parser
/// reads numbers as `f64`; ids and budgets must be whole).
fn get_uint(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => {
            let n = v
                .as_num()
                .ok_or_else(|| format!("`{key}` must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
                return Err(format!("`{key}` must be a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

impl Envelope {
    /// Parses one request payload.
    ///
    /// # Errors
    ///
    /// Returns a [`ProtoError`] naming the first problem; the id is
    /// included whenever the payload parsed far enough to contain one.
    pub fn parse(payload: &[u8]) -> Result<Envelope, ProtoError> {
        let fail = |id: Option<u64>, message: String| ProtoError { id, message };
        let text = std::str::from_utf8(payload)
            .map_err(|_| fail(None, "request payload is not UTF-8".to_owned()))?;
        let root = parse_json(text).map_err(|e| fail(None, format!("bad request JSON: {e}")))?;
        if !matches!(root, Json::Obj(_)) {
            return Err(fail(None, "request must be a JSON object".to_owned()));
        }
        let id = get_uint(&root, "id")
            .map_err(|m| fail(None, m))?
            .ok_or_else(|| fail(None, "request is missing a numeric `id`".to_owned()))?;
        let some = Some(id);
        let op = get_str(&root, "op")
            .ok_or_else(|| fail(some, "request is missing a string `op`".to_owned()))?;
        let need = |key: &str| {
            get_str(&root, key)
                .ok_or_else(|| fail(some, format!("`{op}` needs a string `{key}`")))
        };
        let request = match op.as_str() {
            "open" => Request::Open {
                session: need("session")?,
                program: need("program")?,
                lazy: match root.get("lazy") {
                    None | Some(Json::Null) => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(fail(some, "`lazy` must be a boolean".to_owned())),
                },
            },
            "edit" => Request::Edit {
                session: need("session")?,
                script: need("script")?,
            },
            "query" => Request::Query {
                session: need("session")?,
                target: QueryTarget::parse(&need("target")?).map_err(|m| fail(some, m))?,
            },
            "close" => Request::Close {
                session: need("session")?,
            },
            "stats" => Request::Stats,
            other => return Err(fail(some, format!("unknown op `{other}`"))),
        };
        Ok(Envelope {
            id,
            request,
            budget_ops: get_uint(&root, "budget_ops").map_err(|m| fail(some, m))?,
            timeout_ms: get_uint(&root, "timeout_ms").map_err(|m| fail(some, m))?,
        })
    }

    /// Renders the wire JSON for this request (the client side of
    /// [`Envelope::parse`]; the two round-trip).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("{{\"id\":{},\"op\":\"{}\"", self.id, self.request.op_name());
        let mut field = |k: &str, v: &str| {
            let _ = write!(out, ",\"{k}\":\"{}\"", escape_json(v));
        };
        match &self.request {
            Request::Open {
                session,
                program,
                lazy,
            } => {
                field("session", session);
                field("program", program);
                if *lazy {
                    out.push_str(",\"lazy\":true");
                }
            }
            Request::Edit { session, script } => {
                field("session", session);
                field("script", script);
            }
            Request::Query { session, target } => {
                field("session", session);
                field("target", &target.render());
            }
            Request::Close { session } => field("session", session),
            Request::Stats => {}
        }
        if let Some(n) = self.budget_ops {
            let _ = write!(out, ",\"budget_ops\":{n}");
        }
        if let Some(ms) = self.timeout_ms {
            let _ = write!(out, ",\"timeout_ms\":{ms}");
        }
        out.push('}');
        out
    }
}

/// Response status — the wire form of the CLI's 0/1/3 exit contract,
/// plus the admission-control refusal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Exact results.
    Ok,
    /// Served, but under a trip or contained fault; sets are sound
    /// over-approximations.
    Degraded,
    /// Rejected; nothing (beyond any named applied prefix) changed.
    Error,
    /// Shed under load: the server is at capacity (session table full
    /// with nothing evictable, or too many connections). Nothing
    /// changed; the response carries a `retry_after_ms` hint and the
    /// request is safe to resend after backing off.
    Overloaded,
}

impl Status {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::Error => "error",
            Status::Overloaded => "overloaded",
        }
    }
}

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".to_owned(), |n| n.to_string())
}

/// `{"id":…,"status":"error","error":"…"}` — also used for frame-level
/// failures, where no id is recoverable (`id` becomes `null`).
pub fn resp_error(id: Option<u64>, message: &str) -> String {
    format!(
        "{{\"id\":{},\"status\":\"error\",\"error\":\"{}\"}}",
        id_json(id),
        escape_json(message)
    )
}

/// A successful `open`. `resurrected` is set when the session was
/// rebuilt from its journal or parked history rather than analysed
/// fresh; `degraded` carries a reason when the session opened but its
/// durability could not be established (journal create/append failed).
pub fn resp_open(
    id: u64,
    session: &str,
    procs: usize,
    sites: usize,
    vars: usize,
    resurrected: bool,
    degraded: Option<&str>,
) -> String {
    use std::fmt::Write as _;
    let status = if degraded.is_some() { "degraded" } else { "ok" };
    let mut out = format!(
        "{{\"id\":{id},\"status\":\"{status}\",\"op\":\"open\",\"session\":\"{}\",\
         \"procs\":{procs},\"sites\":{sites},\"vars\":{vars}",
        escape_json(session)
    );
    if resurrected {
        out.push_str(",\"resurrected\":true");
    }
    if let Some(reason) = degraded {
        let _ = write!(out, ",\"reason\":\"{}\"", escape_json(reason));
    }
    out.push('}');
    out
}

/// An admission-control refusal: the server shed this request and the
/// client should retry after roughly `retry_after_ms` milliseconds.
pub fn resp_overloaded(id: Option<u64>, retry_after_ms: u64, reason: &str) -> String {
    format!(
        "{{\"id\":{},\"status\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\
         \"reason\":\"{}\"}}",
        id_json(id),
        escape_json(reason)
    )
}

/// An `edit` response; `degraded` carries the reason when the apply was
/// cut short (the applied count includes the degraded step — its edit
/// *is* in the program, with conservative sets).
pub fn resp_edit(id: u64, session: &str, applied: usize, degraded: Option<&str>) -> String {
    match degraded {
        None => format!(
            "{{\"id\":{id},\"status\":\"ok\",\"op\":\"edit\",\"session\":\"{}\",\
             \"applied\":{applied}}}",
            escape_json(session)
        ),
        Some(reason) => format!(
            "{{\"id\":{id},\"status\":\"degraded\",\"op\":\"edit\",\"session\":\"{}\",\
             \"applied\":{applied},\"reason\":\"{}\"}}",
            escape_json(session),
            escape_json(reason)
        ),
    }
}

/// A `query` response. `report` is the rendered report text (for
/// `target=all`, byte-identical to `analyze --json` output on the same
/// program), carried as an escaped JSON string.
pub fn resp_query(id: u64, session: &str, degraded: Option<&str>, report: &str) -> String {
    match degraded {
        None => format!(
            "{{\"id\":{id},\"status\":\"ok\",\"op\":\"query\",\"session\":\"{}\",\
             \"report\":\"{}\"}}",
            escape_json(session),
            escape_json(report)
        ),
        Some(reason) => format!(
            "{{\"id\":{id},\"status\":\"degraded\",\"op\":\"query\",\"session\":\"{}\",\
             \"reason\":\"{}\",\"report\":\"{}\"}}",
            escape_json(session),
            escape_json(reason),
            escape_json(report)
        ),
    }
}

/// A successful `close`.
pub fn resp_close(id: u64, session: &str) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"op\":\"close\",\"session\":\"{}\"}}",
        escape_json(session)
    )
}

/// A point-in-time copy of the server's counters, rendered by
/// [`resp_stats`] and parsed back by the client.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sessions currently live (engine resident in memory).
    pub sessions: usize,
    /// Sessions evicted to their journal/history, resurrectable on the
    /// next request that names them.
    pub parked: usize,
    /// Connections accepted so far.
    pub connections: u64,
    /// Requests parsed (including ones answered with an error).
    pub requests: u64,
    /// Responses by status.
    pub ok: u64,
    /// See [`StatsSnapshot::ok`].
    pub degraded: u64,
    /// See [`StatsSnapshot::ok`].
    pub errors: u64,
    /// Sessions evicted (parked) to make room under `--max-sessions`.
    pub evictions: u64,
    /// Sessions rebuilt from a journal or parked history (startup
    /// recovery + transparent resurrection).
    pub recoveries: u64,
    /// Requests/connections answered `overloaded` and shed.
    pub shed: u64,
    /// Journal bytes written by this process plus bytes recovered at
    /// startup.
    pub journal_bytes: u64,
    /// Sum of per-request latencies, microseconds.
    pub latency_total_us: u64,
    /// Worst single request latency, microseconds.
    pub latency_max_us: u64,
    /// Requests per op, in `open, edit, query, close, stats` order.
    pub per_op: [u64; 5],
}

/// A `stats` response.
pub fn resp_stats(id: u64, s: &StatsSnapshot) -> String {
    format!(
        "{{\"id\":{id},\"status\":\"ok\",\"op\":\"stats\",\"sessions\":{},\"parked\":{},\
         \"connections\":{},\"requests\":{},\"ok\":{},\"degraded\":{},\"errors\":{},\
         \"evictions\":{},\"recoveries\":{},\"shed\":{},\"journal_bytes\":{},\
         \"latency_total_us\":{},\"latency_max_us\":{},\
         \"per_op\":{{\"open\":{},\"edit\":{},\"query\":{},\"close\":{},\"stats\":{}}}}}",
        s.sessions,
        s.parked,
        s.connections,
        s.requests,
        s.ok,
        s.degraded,
        s.errors,
        s.evictions,
        s.recoveries,
        s.shed,
        s.journal_bytes,
        s.latency_total_us,
        s.latency_max_us,
        s.per_op[0],
        s.per_op[1],
        s.per_op[2],
        s.per_op[3],
        s.per_op[4],
    )
}

/// A parsed response, as the client sees it.
#[derive(Debug, Clone)]
pub struct Response {
    /// Echoed request id (`None` when the server could not recover one —
    /// frame-level errors).
    pub id: Option<u64>,
    /// The three-valued status.
    pub status: Status,
    /// The whole response object, for op-specific fields.
    pub body: Json,
}

impl Response {
    /// Parses one response payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformation.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text =
            std::str::from_utf8(payload).map_err(|_| "response is not UTF-8".to_owned())?;
        let body = parse_json(text).map_err(|e| format!("bad response JSON: {e}"))?;
        let status = match body.get("status").and_then(Json::as_str) {
            Some("ok") => Status::Ok,
            Some("degraded") => Status::Degraded,
            Some("error") => Status::Error,
            Some("overloaded") => Status::Overloaded,
            Some(other) => return Err(format!("unknown response status `{other}`")),
            None => return Err("response is missing `status`".to_owned()),
        };
        let id = match body.get("id") {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Some(Json::Null) | None => None,
            Some(_) => return Err("response `id` must be a number or null".to_owned()),
        };
        Ok(Response { id, status, body })
    }

    /// A string field of the response object.
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.body.get(key).and_then(Json::as_str)
    }

    /// A non-negative integer field of the response object.
    pub fn uint_field(&self, key: &str) -> Option<u64> {
        let n = self.body.get(key).and_then(Json::as_num)?;
        (n >= 0.0 && n.fract() == 0.0).then_some(n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_render_and_parse() {
        let cases = vec![
            Envelope {
                id: 1,
                request: Request::Open {
                    session: "s \"quoted\"".into(),
                    program: "main { }\nvar g;\n".into(),
                    lazy: false,
                },
                budget_ops: None,
                timeout_ms: None,
            },
            Envelope {
                id: 11,
                request: Request::Open {
                    session: "lazy1".into(),
                    program: "main { }\n".into(),
                    lazy: true,
                },
                budget_ops: None,
                timeout_ms: None,
            },
            Envelope {
                id: 2,
                request: Request::Edit {
                    session: "s1".into(),
                    script: "set-local p mod=g\n# tab\there".into(),
                },
                budget_ops: Some(12345),
                timeout_ms: None,
            },
            Envelope {
                id: 3,
                request: Request::Query {
                    session: "s1".into(),
                    target: QueryTarget::Site(7),
                },
                budget_ops: None,
                timeout_ms: Some(250),
            },
            Envelope {
                id: 4,
                request: Request::Query {
                    session: "s1".into(),
                    target: QueryTarget::Proc("bump".into()),
                },
                budget_ops: None,
                timeout_ms: None,
            },
            Envelope {
                id: 5,
                request: Request::Close { session: "s1".into() },
                budget_ops: None,
                timeout_ms: None,
            },
            Envelope {
                id: 6,
                request: Request::Stats,
                budget_ops: Some(1),
                timeout_ms: Some(1),
            },
        ];
        for env in cases {
            let wire = env.render();
            let back = Envelope::parse(wire.as_bytes()).expect("parses own rendering");
            assert_eq!(back, env, "round-trip of {wire}");
        }
    }

    #[test]
    fn parse_rejections_keep_the_id_when_recoverable() {
        let e = Envelope::parse(b"{\"id\":9,\"op\":\"open\"}").unwrap_err();
        assert_eq!(e.id, Some(9));
        assert!(e.message.contains("session"), "{}", e.message);

        let e = Envelope::parse(b"{\"op\":\"stats\"}").unwrap_err();
        assert_eq!(e.id, None);
        assert!(e.message.contains("id"), "{}", e.message);

        let e = Envelope::parse(b"not json").unwrap_err();
        assert!(e.message.contains("JSON"), "{}", e.message);

        let e = Envelope::parse(b"{\"id\":1,\"op\":\"frobnicate\"}").unwrap_err();
        assert!(e.message.contains("unknown op"), "{}", e.message);

        let e = Envelope::parse(b"{\"id\":1.5,\"op\":\"stats\"}").unwrap_err();
        assert!(e.message.contains("id"), "{}", e.message);

        let e =
            Envelope::parse(b"{\"id\":1,\"op\":\"query\",\"session\":\"s\",\"target\":\"site:x\"}")
                .unwrap_err();
        assert!(e.message.contains("site index"), "{}", e.message);

        let e = Envelope::parse(
            b"{\"id\":1,\"op\":\"open\",\"session\":\"s\",\"program\":\"\",\"lazy\":\"yes\"}",
        )
        .unwrap_err();
        assert!(e.message.contains("`lazy` must be a boolean"), "{}", e.message);
    }

    #[test]
    fn open_lazy_defaults_to_false_when_absent() {
        let env = Envelope::parse(
            b"{\"id\":2,\"op\":\"open\",\"session\":\"s\",\"program\":\"main { }\"}",
        )
        .expect("parses");
        assert!(matches!(env.request, Request::Open { lazy: false, .. }));
    }

    #[test]
    fn responses_parse_status_and_fields() {
        let r = Response::parse(resp_open(3, "s1", 2, 1, 4, false, None).as_bytes())
            .expect("parses");
        assert_eq!(r.id, Some(3));
        assert_eq!(r.status, Status::Ok);
        assert_eq!(r.uint_field("procs"), Some(2));
        assert!(r.body.get("resurrected").is_none());

        let r = Response::parse(
            resp_open(4, "s1", 2, 1, 4, true, Some("journal unavailable")).as_bytes(),
        )
        .expect("parses");
        assert_eq!(r.status, Status::Degraded);
        assert_eq!(r.str_field("reason"), Some("journal unavailable"));
        assert!(matches!(r.body.get("resurrected"), Some(Json::Bool(true))));

        let r = Response::parse(resp_overloaded(Some(9), 50, "session table busy").as_bytes())
            .expect("parses");
        assert_eq!(r.id, Some(9));
        assert_eq!(r.status, Status::Overloaded);
        assert_eq!(r.uint_field("retry_after_ms"), Some(50));
        assert_eq!(r.str_field("reason"), Some("session table busy"));

        let r = Response::parse(resp_error(None, "frame: zero-length frame").as_bytes())
            .expect("parses");
        assert_eq!(r.id, None);
        assert_eq!(r.status, Status::Error);
        assert!(r.str_field("error").unwrap().contains("zero-length"));

        let r = Response::parse(
            resp_query(8, "s", Some("deadline"), "{\"sites\":[]}\n").as_bytes(),
        )
        .expect("parses");
        assert_eq!(r.status, Status::Degraded);
        assert_eq!(r.str_field("report"), Some("{\"sites\":[]}\n"));
    }

    #[test]
    fn stats_snapshot_round_trips() {
        let snap = StatsSnapshot {
            sessions: 2,
            parked: 3,
            connections: 5,
            requests: 41,
            ok: 38,
            degraded: 2,
            errors: 1,
            evictions: 6,
            recoveries: 4,
            shed: 9,
            journal_bytes: 2048,
            latency_total_us: 123456,
            latency_max_us: 9001,
            per_op: [4, 10, 24, 2, 1],
        };
        let r = Response::parse(resp_stats(7, &snap).as_bytes()).expect("parses");
        assert_eq!(r.uint_field("sessions"), Some(2));
        assert_eq!(r.uint_field("parked"), Some(3));
        assert_eq!(r.uint_field("requests"), Some(41));
        assert_eq!(r.uint_field("evictions"), Some(6));
        assert_eq!(r.uint_field("recoveries"), Some(4));
        assert_eq!(r.uint_field("shed"), Some(9));
        assert_eq!(r.uint_field("journal_bytes"), Some(2048));
        assert_eq!(r.uint_field("latency_max_us"), Some(9001));
        let per_op = r.body.get("per_op").expect("per_op");
        assert_eq!(per_op.get("query").and_then(Json::as_num), Some(24.0));
    }
}
