//! Wire framing: 4-byte big-endian length prefix, then that many bytes
//! of UTF-8 JSON.
//!
//! The framing layer is deliberately dumb — it moves opaque byte
//! payloads and knows nothing about JSON — and deliberately strict:
//! zero-length frames, frames over [`MAX_FRAME_LEN`], and streams that
//! end mid-header or mid-payload are all *typed* errors
//! ([`FrameError`]), never panics and never silent truncation. The
//! property suite (`tests/frame_props.rs`) fuzzes encode/decode
//! round-trips through arbitrary read-boundary splits and pipelined
//! concatenations, and pins every rejection class.
//!
//! A reader that hits any [`FrameError`] must treat the connection as
//! unsynchronised and close it: after a framing error there is no way to
//! know where the next frame begins.

use std::io::{Read, Write};

/// Hard cap on a frame's payload length, in bytes. Large enough for any
/// realistic program text or report, small enough that a hostile length
/// prefix cannot make the server allocate unbounded memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Why a frame could not be read or written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix was zero. An empty payload can never be a valid
    /// request or response, so this always signals a confused peer.
    ZeroLength,
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        declared: u64,
    },
    /// The stream ended inside a frame.
    Truncated {
        /// `"header"` or `"payload"` — which part was cut short.
        part: &'static str,
        /// Bytes the part needed.
        expected: usize,
        /// Bytes actually present before EOF.
        got: usize,
    },
    /// An underlying I/O failure (connection reset, write error, …).
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ZeroLength => write!(f, "zero-length frame"),
            FrameError::Oversized { declared } => write!(
                f,
                "oversized frame: declared {declared} bytes, limit {MAX_FRAME_LEN}"
            ),
            FrameError::Truncated {
                part,
                expected,
                got,
            } => write!(
                f,
                "truncated frame {part}: expected {expected} bytes, got {got}"
            ),
            FrameError::Io(m) => write!(f, "i/o error: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes one frame: prefix plus payload, ready to write.
///
/// # Errors
///
/// Rejects empty and oversized payloads with the same typed errors the
/// decoder uses, so a conforming writer can never produce a frame a
/// conforming reader rejects.
pub fn encode_frame(payload: &[u8]) -> Result<Vec<u8>, FrameError> {
    if payload.is_empty() {
        return Err(FrameError::ZeroLength);
    }
    if payload.len() > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: payload.len() as u64,
        });
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Writes one frame to `w` (a single `write_all`, so frames from one
/// writer are never interleaved mid-frame).
///
/// # Errors
///
/// [`encode_frame`]'s rejections, plus [`FrameError::Io`] on write
/// failure.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    let bytes = encode_frame(payload)?;
    w.write_all(&bytes)
        .and_then(|()| w.flush())
        .map_err(|e| FrameError::Io(e.to_string()))
}

/// Reads bytes into `buf` until it is full or the stream ends, returning
/// how many bytes arrived. `Read::read_exact` loses the byte count on
/// EOF, which the truncation errors need.
fn fill<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(got)
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the connection
/// closed *between* frames); everything else either yields a payload or
/// a typed error. Handles reads split at arbitrary boundaries — the
/// header and payload are each assembled from as many partial reads as
/// the transport delivers.
///
/// # Errors
///
/// [`FrameError::Truncated`] when the stream ends mid-frame,
/// [`FrameError::ZeroLength`] / [`FrameError::Oversized`] for hostile
/// length prefixes, [`FrameError::Io`] for transport failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let got = fill(r, &mut header)?;
    if got == 0 {
        return Ok(None);
    }
    if got < 4 {
        return Err(FrameError::Truncated {
            part: "header",
            expected: 4,
            got,
        });
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared == 0 {
        return Err(FrameError::ZeroLength);
    }
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::Oversized {
            declared: declared as u64,
        });
    }
    let mut payload = vec![0u8; declared];
    let got = fill(r, &mut payload)?;
    if got < declared {
        return Err(FrameError::Truncated {
            part: "payload",
            expected: declared,
            got,
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_one_frame() {
        let bytes = encode_frame(b"{\"id\":1}").expect("encodes");
        let mut cur = Cursor::new(bytes);
        assert_eq!(
            read_frame(&mut cur).expect("reads"),
            Some(b"{\"id\":1}".to_vec())
        );
        assert_eq!(read_frame(&mut cur).expect("clean EOF"), None);
    }

    #[test]
    fn rejects_zero_and_oversized_on_both_sides() {
        assert_eq!(encode_frame(b"").unwrap_err(), FrameError::ZeroLength);
        let mut zero = Cursor::new(vec![0, 0, 0, 0]);
        assert_eq!(read_frame(&mut zero).unwrap_err(), FrameError::ZeroLength);
        let mut big = Cursor::new(vec![0xff, 0xff, 0xff, 0xff]);
        assert_eq!(
            read_frame(&mut big).unwrap_err(),
            FrameError::Oversized {
                declared: u64::from(u32::MAX)
            }
        );
    }

    #[test]
    fn truncation_names_the_part_and_counts() {
        let mut header = Cursor::new(vec![0, 0]);
        assert_eq!(
            read_frame(&mut header).unwrap_err(),
            FrameError::Truncated {
                part: "header",
                expected: 4,
                got: 2
            }
        );
        let mut payload = Cursor::new(vec![0, 0, 0, 5, b'a', b'b']);
        assert_eq!(
            read_frame(&mut payload).unwrap_err(),
            FrameError::Truncated {
                part: "payload",
                expected: 5,
                got: 2
            }
        );
    }
}
