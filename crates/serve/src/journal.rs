//! The per-session durable edit journal.
//!
//! One file per session under the server's `--state-dir`, append-only.
//! The first record is a *snapshot* (the session name and the full
//! MiniProc source text it was opened with); every applied edit-script
//! line follows as its own *edit* record, in application order. Replaying
//! snapshot + edits through the same `Script::parse → resolve → apply`
//! pipeline the live server uses reconstructs the session bit-identically
//! (`recover.rs` proves it against a from-scratch analyzer).
//!
//! On-disk record framing mirrors the wire framing in [`crate::frame`],
//! with one addition — a checksum, because a file that survived a crash
//! is less trustworthy than a socket:
//!
//! ```text
//! [u32 len, big-endian][u32 FNV-1a of payload, big-endian][len payload bytes]
//! ```
//!
//! The scanner ([`scan_journal`]) reads records until the first byte that
//! does not form a complete, checksum-valid record and stops there: a
//! torn tail (crash mid-append) or any corruption yields the longest
//! clean *prefix*, never a panic and never trust in bytes after the
//! damage. Recovery truncates the file back to that prefix
//! ([`truncate_to`]) so the journal can keep appending.
//!
//! Crash-point injection for the kill-and-restart chaos wall reads
//! `MODREF_CRASH=<site>:<n>` — the process aborts at the `n`-th hit of
//! `<site>` (`serve.journal.append` aborts before a write,
//! `serve.journal.torn` writes a deliberately half-finished record first,
//! `serve.journal.fsync` aborts after the write but before the sync).
//! Like `MODREF_FAULT`, it is a test hook and never armed implicitly.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use modref_trace::{escape_json, parse_json, Json};

/// Hard cap on one journal record's payload. Program snapshots dominate;
/// 4 MiB is four times the wire frame cap, so anything a session could
/// legally be opened with fits.
pub const MAX_RECORD_LEN: usize = 4 << 20;

/// Bytes of framing overhead per record (length prefix + checksum).
pub const RECORD_HEADER_LEN: usize = 8;

/// One durable journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalRecord {
    /// The session's origin: name plus full program source. Always the
    /// first record of a journal.
    Snapshot {
        /// Session name (matches the filename's decoded form).
        session: String,
        /// MiniProc source text the session was opened with.
        program: String,
    },
    /// One applied edit-script line, in the `--edits` grammar.
    Edit {
        /// The raw script line, exactly as applied.
        line: String,
    },
}

impl JournalRecord {
    /// The JSON payload for this record.
    pub fn render(&self) -> String {
        match self {
            JournalRecord::Snapshot { session, program } => format!(
                "{{\"v\":1,\"type\":\"snapshot\",\"session\":\"{}\",\"program\":\"{}\"}}",
                escape_json(session),
                escape_json(program)
            ),
            JournalRecord::Edit { line } => {
                format!("{{\"v\":1,\"type\":\"edit\",\"line\":\"{}\"}}", escape_json(line))
            }
        }
    }

    /// Parses one record payload.
    ///
    /// # Errors
    ///
    /// Describes the malformation (bad JSON, unknown type, missing
    /// fields); scanning treats any of these as corruption.
    pub fn parse(payload: &[u8]) -> Result<JournalRecord, String> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| "journal record is not UTF-8".to_owned())?;
        let root = parse_json(text).map_err(|e| format!("bad journal JSON: {e}"))?;
        let field = |key: &str| {
            root.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("journal record is missing string `{key}`"))
        };
        match root.get("type").and_then(Json::as_str) {
            Some("snapshot") => Ok(JournalRecord::Snapshot {
                session: field("session")?,
                program: field("program")?,
            }),
            Some("edit") => Ok(JournalRecord::Edit { line: field("line")? }),
            Some(other) => Err(format!("unknown journal record type `{other}`")),
            None => Err("journal record is missing `type`".to_owned()),
        }
    }
}

/// 32-bit FNV-1a over `bytes`. A one-byte change anywhere always changes
/// the digest (each step is a bijection on the running state), which is
/// exactly the corruption class a torn-write scanner must catch.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A record whose payload exceeds [`MAX_RECORD_LEN`]. Writing it anyway
/// would persist a length prefix the scanner rejects, so every record
/// after it on disk would read back as corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizedRecord {
    /// The payload length that broke the cap.
    pub declared: usize,
}

impl std::fmt::Display for OversizedRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oversized journal record: {} bytes, limit {MAX_RECORD_LEN}",
            self.declared
        )
    }
}

impl std::error::Error for OversizedRecord {}

/// Encodes one record: length prefix, checksum, payload.
///
/// # Errors
///
/// [`OversizedRecord`] when the payload exceeds [`MAX_RECORD_LEN`] —
/// symmetric with the scanner, which treats such a prefix as torn.
pub fn encode_record(rec: &JournalRecord) -> Result<Vec<u8>, OversizedRecord> {
    let payload = rec.render().into_bytes();
    if payload.len() > MAX_RECORD_LEN {
        return Err(OversizedRecord { declared: payload.len() });
    }
    debug_assert!(!payload.is_empty());
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&fnv1a(&payload).to_be_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// When appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — an acknowledged edit survives even a
    /// power cut. The default.
    Always,
    /// Never `fsync` explicitly; appends reach the kernel page cache
    /// only. Survives a process crash (the kernel still holds the
    /// bytes), not a host crash. For benchmarks and tests.
    Never,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag value.
    ///
    /// # Errors
    ///
    /// Anything other than `always` or `never`.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => Err(format!("unknown fsync policy `{other}` (expected always|never)")),
        }
    }
}

/// The journal filename for `session` under `dir`: bytes outside
/// `[A-Za-z0-9_-]` are percent-encoded so any session name maps to a
/// distinct, filesystem-safe `<encoded>.journal`.
pub fn path_for(dir: &Path, session: &str) -> PathBuf {
    let mut name = String::with_capacity(session.len() + 8);
    for &b in session.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => name.push(b as char),
            other => {
                use std::fmt::Write as _;
                let _ = write!(name, "%{other:02x}");
            }
        }
    }
    name.push_str(".journal");
    dir.join(name)
}

/// Decodes a `path_for` filename back to the session name, if it is one.
pub fn session_for(path: &Path) -> Option<String> {
    let stem = path.file_name()?.to_str()?.strip_suffix(".journal")?;
    let bytes = stem.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// An open, append-only session journal.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    appended: u64,
}

impl Journal {
    /// Creates (truncating any stale file) the journal for `session`
    /// under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(dir: &Path, session: &str, policy: FsyncPolicy) -> std::io::Result<Journal> {
        let path = path_for(dir, session);
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Journal { file, path, policy, appended: 0 })
    }

    /// Reopens an existing journal for appending (resurrection and
    /// startup recovery — the caller has already scanned and, if needed,
    /// truncated it).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn append_to(path: &Path, policy: FsyncPolicy) -> std::io::Result<Journal> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Journal { file, path: path.to_owned(), policy, appended: 0 })
    }

    /// Where this journal lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes appended through this handle (framing included).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record (write only — [`Journal::commit`] applies the
    /// fsync policy, so the server can interleave its guard checkpoint
    /// between the two), returning the bytes written. Honors the
    /// `MODREF_CRASH` chaos hook.
    ///
    /// # Errors
    ///
    /// An [`OversizedRecord`] surfaces as `InvalidInput` *before* any
    /// byte reaches the file, so the journal stays clean. Otherwise
    /// propagates filesystem failures; after one, the caller must treat
    /// the journal as dead (the on-disk prefix is still valid, but no
    /// later record may ever be appended past a missing one).
    pub fn append(&mut self, rec: &JournalRecord) -> std::io::Result<u64> {
        maybe_crash("serve.journal.append");
        let bytes = encode_record(rec)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        if crash_armed("serve.journal.torn") {
            // Chaos: persist a deliberately torn tail — header plus half
            // the payload — exactly what a crash mid-`write` leaves.
            let cut = RECORD_HEADER_LEN + (bytes.len() - RECORD_HEADER_LEN) / 2;
            let _ = self.file.write_all(&bytes[..cut]);
            let _ = self.file.sync_all();
            std::process::abort();
        }
        self.file.write_all(&bytes)?;
        maybe_crash("serve.journal.fsync");
        self.appended += bytes.len() as u64;
        Ok(bytes.len() as u64)
    }

    /// Makes the last append durable per the fsync policy (a no-op under
    /// [`FsyncPolicy::Never`]).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn commit(&mut self) -> std::io::Result<()> {
        if matches!(self.policy, FsyncPolicy::Always) {
            self.file.sync_all()?;
        }
        Ok(())
    }

    /// Forces everything appended so far to disk regardless of policy
    /// (eviction and drain call this before letting go of a session).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

/// What a scan found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalScan {
    /// Every complete, checksum-valid record, in order.
    pub records: Vec<JournalRecord>,
    /// Byte length of that clean prefix.
    pub good_bytes: u64,
    /// Whether anything (torn tail, corruption) followed the prefix.
    pub torn: bool,
}

/// Scans raw journal bytes into the longest clean record prefix. Pure,
/// total, and panic-free on arbitrary input — the property suite feeds
/// it cuts at every byte and seeded corruption.
pub fn scan_bytes(bytes: &[u8]) -> JournalScan {
    let mut records = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            return JournalScan { records, good_bytes: at as u64, torn: false };
        }
        let torn = |records: Vec<JournalRecord>| JournalScan {
            records,
            good_bytes: at as u64,
            torn: true,
        };
        if rest.len() < RECORD_HEADER_LEN {
            return torn(records);
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len == 0 || len > MAX_RECORD_LEN || rest.len() < RECORD_HEADER_LEN + len {
            return torn(records);
        }
        let want = u32::from_be_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
        if fnv1a(payload) != want {
            return torn(records);
        }
        match JournalRecord::parse(payload) {
            Ok(rec) => records.push(rec),
            Err(_) => return torn(records),
        }
        at += RECORD_HEADER_LEN + len;
    }
}

/// Reads and scans a journal file.
///
/// # Errors
///
/// Propagates filesystem failures (a *corrupt* file is not an error —
/// the scan reports the clean prefix and `torn`).
pub fn scan_journal(path: &Path) -> std::io::Result<JournalScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    Ok(scan_bytes(&bytes))
}

/// Truncates the journal file back to its clean prefix and syncs, so
/// appends resume from a record boundary.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn truncate_to(path: &Path, good_bytes: u64) -> std::io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(good_bytes)?;
    file.sync_all()
}

/// The parsed `MODREF_CRASH=<site>:<n>` spec, if armed. Read once.
fn crash_spec() -> Option<&'static (String, u64)> {
    static SPEC: OnceLock<Option<(String, u64)>> = OnceLock::new();
    SPEC.get_or_init(|| {
        let raw = std::env::var("MODREF_CRASH").ok()?;
        let (site, n) = raw.rsplit_once(':')?;
        let n: u64 = n.parse().ok()?;
        (!site.is_empty() && n > 0).then(|| (site.to_owned(), n))
    })
    .as_ref()
}

/// Counts a hit at `site`; true exactly on the armed `n`-th hit.
fn crash_armed(site: &str) -> bool {
    let Some((armed_site, n)) = crash_spec() else {
        return false;
    };
    if armed_site != site {
        return false;
    }
    static HITS: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());
    let mut hits = HITS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    for (name, count) in hits.iter_mut() {
        if name == site {
            *count += 1;
            return *count == *n;
        }
    }
    hits.push((site.to_owned(), 1));
    1 == *n
}

/// Aborts the process at the armed hit of `site` — the chaos wall's
/// stand-in for `kill -9` at a precise point in the edit stream.
pub fn maybe_crash(site: &str) {
    if crash_armed(site) {
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let cases = vec![
            JournalRecord::Snapshot {
                session: "s \"quoted\"\n".into(),
                program: "var g;\nmain { call p(); }\np(x) { }\n".into(),
            },
            JournalRecord::Edit { line: "set-local p mod=g use=g\t# note".into() },
        ];
        for rec in cases {
            let bytes = encode_record(&rec).expect("fits the cap");
            let scan = scan_bytes(&bytes);
            assert_eq!(scan.records, vec![rec]);
            assert_eq!(scan.good_bytes, bytes.len() as u64);
            assert!(!scan.torn);
        }
    }

    #[test]
    fn encode_enforces_the_record_cap_at_the_boundary() {
        // `line` is pure ASCII with nothing to escape, so the payload
        // length is the fixed JSON envelope plus the line length — that
        // lets the test hit the cap exactly.
        let envelope = JournalRecord::Edit { line: String::new() }.render().len();
        let at_cap = JournalRecord::Edit { line: "a".repeat(MAX_RECORD_LEN - envelope) };
        let bytes = encode_record(&at_cap).expect("cap-sized record encodes");
        assert_eq!(bytes.len(), RECORD_HEADER_LEN + MAX_RECORD_LEN);
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records, vec![at_cap]);
        assert!(!scan.torn);

        // One byte over: typed error, nothing encoded — and the scanner
        // agrees the declared length is illegal (symmetry).
        let over = JournalRecord::Edit { line: "a".repeat(MAX_RECORD_LEN - envelope + 1) };
        assert_eq!(
            encode_record(&over).unwrap_err(),
            OversizedRecord { declared: MAX_RECORD_LEN + 1 }
        );

        // The append path surfaces it as InvalidInput before any write.
        let dir = std::env::temp_dir().join(format!("modref-oversize-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = path_for(&dir, "cap");
        let mut journal = Journal::create(&dir, "cap", FsyncPolicy::Never).expect("creates");
        let err = journal.append(&over).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert_eq!(journal.appended(), 0, "no bytes reach the file");
        let scan = scan_journal(&path).expect("scans");
        assert!(scan.records.is_empty() && !scan.torn, "journal stays clean");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_stops_at_first_damage_without_panic() {
        let mut bytes = encode_record(&JournalRecord::Edit { line: "remove-call 0".into() })
            .expect("fits the cap");
        let one = bytes.len();
        bytes.extend_from_slice(&encode_record(&JournalRecord::Edit {
            line: "add-call main p args=g".into(),
        }).expect("fits the cap"));
        // Flip one payload byte of the second record.
        let flip = one + RECORD_HEADER_LEN + 3;
        bytes[flip] ^= 0x40;
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.good_bytes, one as u64);
        assert!(scan.torn);
    }

    #[test]
    fn filenames_encode_and_decode_any_session_name() {
        let dir = Path::new("/tmp/state");
        for name in ["plain", "has space", "dots.and/slash", "é-unicode", "%already"] {
            let path = path_for(dir, name);
            let file = path.file_name().unwrap().to_str().unwrap();
            assert!(file.ends_with(".journal"));
            assert!(
                file.bytes().all(|b| b.is_ascii_alphanumeric() || b"%_-.".contains(&b)),
                "unsafe byte in {file}"
            );
            assert_eq!(session_for(&path).as_deref(), Some(name));
        }
        assert_ne!(
            path_for(dir, "a/b").file_name(),
            path_for(dir, "a_b").file_name(),
            "distinct names must map to distinct files"
        );
    }
}
