//! A small synchronous client: one connection, sequential
//! request/response, plus the drive-script interpreter behind the CLI's
//! `client` verb.
//!
//! Drive scripts are line-oriented (blank lines and `#` comments
//! ignored):
//!
//! ```text
//! open  <session> <program.mp>
//! edit  <session> <script.edits>
//! query <session> all | site <n> | proc <name>
//! close <session>
//! stats
//! ```
//!
//! [`run_drive`] prints query reports **verbatim** to stdout — for
//! `query <s> all` that is byte-identical to `modref analyze <p> --json`
//! on the same program state — and everything else (acks, stats,
//! degradation notes) to stderr, so the stdout stream is pure data.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::Duration;

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{Envelope, QueryTarget, Request, Response, Status};

/// Retry behaviour for connects and `overloaded` responses: capped
/// exponential backoff with decorrelated jitter
/// (`sleep = min(cap, uniform(base, prev * 3))`), seeded so test runs
/// are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (1 = no retries).
    pub attempts: u32,
    /// Smallest sleep between attempts, in milliseconds.
    pub base_ms: u64,
    /// Largest sleep between attempts, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 8,
            base_ms: 10,
            cap_ms: 1000,
            seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// No retries: fail on the first refusal, PR 7 style.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 1,
            ..RetryPolicy::default()
        }
    }
}

/// Decorrelated-jitter sleep sequence over a [`RetryPolicy`].
struct Jitter {
    state: u64,
    prev_ms: u64,
    base_ms: u64,
    cap_ms: u64,
}

impl Jitter {
    fn new(policy: &RetryPolicy) -> Jitter {
        Jitter {
            state: policy.seed,
            prev_ms: policy.base_ms,
            base_ms: policy.base_ms,
            cap_ms: policy.cap_ms.max(policy.base_ms),
        }
    }

    /// The next sleep, never below `floor` (the server's
    /// `retry_after_ms` hint) and never above the cap.
    fn next_ms(&mut self, floor: u64) -> u64 {
        // splitmix64: small, seedable, good enough for jitter.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let hi = (self.prev_ms.saturating_mul(3)).max(self.base_ms + 1);
        let ms = (self.base_ms + z % (hi - self.base_ms))
            .min(self.cap_ms)
            .max(floor.min(self.cap_ms));
        self.prev_ms = ms.max(self.base_ms);
        ms
    }
}

/// The sleep floor for one overloaded-retry: the server's
/// `retry_after_ms` hint when present and positive, else the policy's
/// base backoff (itself clamped to ≥ 1 ms). A missing, malformed, or
/// zero hint must never collapse the floor to zero — that would turn
/// the retry loop into a zero-sleep spin hammering a server that just
/// said it was overloaded.
fn retry_floor_ms(hint: Option<u64>, policy: &RetryPolicy) -> u64 {
    hint.filter(|&ms| ms > 0).unwrap_or_else(|| policy.base_ms.max(1))
}

/// How a drive run ended, mirroring the CLI's three-valued exit
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// Every response came back `"ok"` — exit 0.
    Clean,
    /// At least one response was `"degraded"` (sound, widened results)
    /// and none was an error — exit 3.
    Degraded,
    /// A response was `"error"`, the transport failed, or the script was
    /// unusable — exit 1.
    Failed,
}

/// One connection to a running server.
pub struct Client {
    stream: TcpStream,
    addr: SocketAddr,
    next_id: u64,
}

impl Client {
    /// Connects to `addr` with a single attempt.
    ///
    /// # Errors
    ///
    /// The connect failure, as a display string.
    pub fn connect(addr: SocketAddr) -> Result<Client, String> {
        Client::connect_with_retry(addr, &RetryPolicy::none())
    }

    /// Connects to `addr`, retrying refused/failed connects under
    /// `policy` — the "server boots late" path.
    ///
    /// # Errors
    ///
    /// The last connect failure, after exhausting the attempts.
    pub fn connect_with_retry(addr: SocketAddr, policy: &RetryPolicy) -> Result<Client, String> {
        let attempts = policy.attempts.max(1);
        let mut jitter = Jitter::new(policy);
        let mut last = String::new();
        for attempt in 0..attempts {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    return Ok(Client {
                        stream,
                        addr,
                        next_id: 1,
                    })
                }
                Err(e) => last = format!("cannot connect to {addr}: {e}"),
            }
            if attempt + 1 < attempts {
                std::thread::sleep(Duration::from_millis(jitter.next_ms(0)));
            }
        }
        Err(format!("{last} (after {attempts} attempts)"))
    }

    /// [`Client::request`], retrying `overloaded` responses under
    /// `policy`: sleep at least the server's `retry_after_ms` hint (with
    /// decorrelated jitter on top), reconnect — the server may have shed
    /// the connection along with the request — and resend. Transport
    /// failures are **not** retried: a lost response is ambiguous (the
    /// edit may have applied), an explicit `overloaded` refusal is not.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_retrying(
        &mut self,
        request: Request,
        policy: &RetryPolicy,
    ) -> Result<Response, String> {
        let attempts = policy.attempts.max(1);
        let mut jitter = Jitter::new(policy);
        let mut attempt = 0;
        loop {
            let resp = self.request(request.clone())?;
            attempt += 1;
            if resp.status != Status::Overloaded || attempt >= attempts {
                return Ok(resp);
            }
            let floor = retry_floor_ms(resp.uint_field("retry_after_ms"), policy);
            std::thread::sleep(Duration::from_millis(jitter.next_ms(floor)));
            if let Ok(fresh) = TcpStream::connect(self.addr) {
                self.stream = fresh;
                self.next_id = 1;
            }
        }
    }

    /// Sends `request` and blocks for its response. Ids are assigned
    /// sequentially and checked on the way back.
    ///
    /// # Errors
    ///
    /// Frame failures, a server that closed the stream mid-exchange, an
    /// unparseable response, or a response id mismatch.
    pub fn request(&mut self, request: Request) -> Result<Response, String> {
        self.request_with(request, None, None)
    }

    /// [`Client::request`] with per-request budget/deadline overrides.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn request_with(
        &mut self,
        request: Request,
        budget_ops: Option<u64>,
        timeout_ms: Option<u64>,
    ) -> Result<Response, String> {
        let id = self.next_id;
        self.next_id += 1;
        let env = Envelope {
            id,
            request,
            budget_ops,
            timeout_ms,
        };
        let payload = env.render();
        write_frame(&mut self.stream, payload.as_bytes()).map_err(frame_err)?;
        let reply = match read_frame(&mut self.stream).map_err(frame_err)? {
            Some(bytes) => bytes,
            None => return Err("server closed the connection".to_string()),
        };
        let resp = Response::parse(&reply)?;
        match resp.id {
            Some(got) if got == id => Ok(resp),
            Some(got) => Err(format!("response id {got} does not match request id {id}")),
            // A null id is the server refusing the *frame or envelope*
            // itself; surface it against this request.
            None => Ok(resp),
        }
    }
}

fn frame_err(e: FrameError) -> String {
    format!("frame: {e}")
}

/// One parsed drive-script command.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DriveCmd {
    Open {
        session: String,
        path: String,
        lazy: bool,
    },
    Edit { session: String, path: String },
    Query { session: String, target: QueryTarget },
    Close { session: String },
    Stats,
}

fn parse_drive(text: &str) -> Result<Vec<(usize, DriveCmd)>, String> {
    let mut cmds = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let verb = words.next().expect("non-empty line has a first word");
        let rest: Vec<&str> = words.collect();
        let cmd = match (verb, rest.as_slice()) {
            ("open", [session, path]) => DriveCmd::Open {
                session: (*session).to_string(),
                path: (*path).to_string(),
                lazy: false,
            },
            ("open", [session, path, "lazy"]) => DriveCmd::Open {
                session: (*session).to_string(),
                path: (*path).to_string(),
                lazy: true,
            },
            ("edit", [session, path]) => DriveCmd::Edit {
                session: (*session).to_string(),
                path: (*path).to_string(),
            },
            ("query", [session, "all"]) => DriveCmd::Query {
                session: (*session).to_string(),
                target: QueryTarget::All,
            },
            ("query", [session, "site", n]) => {
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("drive line {line_no}: bad site index `{n}`"))?;
                DriveCmd::Query {
                    session: (*session).to_string(),
                    target: QueryTarget::Site(n),
                }
            }
            ("query", [session, "proc", name]) => DriveCmd::Query {
                session: (*session).to_string(),
                target: QueryTarget::Proc((*name).to_string()),
            },
            ("close", [session]) => DriveCmd::Close {
                session: (*session).to_string(),
            },
            ("stats", []) => DriveCmd::Stats,
            _ => {
                return Err(format!(
                    "drive line {line_no}: unrecognised command `{line}` \
                     (expected open/edit/query/close/stats)"
                ))
            }
        };
        cmds.push((line_no, cmd));
    }
    Ok(cmds)
}

/// Runs a drive script against `addr`, writing query reports verbatim to
/// `out` and everything else to `err`. Stops at the first `"error"`
/// response or transport failure.
///
/// # Errors
///
/// Returns the failure message alongside [`DriveOutcome::Failed`] via
/// the `Err` arm; the `Ok` arm is [`DriveOutcome::Clean`] or
/// [`DriveOutcome::Degraded`].
pub fn run_drive<W: Write, E: Write>(
    addr: SocketAddr,
    script: &str,
    base_dir: &Path,
    out: &mut W,
    err: &mut E,
) -> Result<DriveOutcome, String> {
    run_drive_with(addr, script, base_dir, out, err, &RetryPolicy::default())
}

/// [`run_drive`] with an explicit [`RetryPolicy`] (the CLI's
/// `--retries`/`--retry-base-ms` knobs): connects retry refused servers,
/// `overloaded` responses retry after the server's hint. An `overloaded`
/// that survives every retry fails the drive, like an error.
///
/// # Errors
///
/// See [`run_drive`].
pub fn run_drive_with<W: Write, E: Write>(
    addr: SocketAddr,
    script: &str,
    base_dir: &Path,
    out: &mut W,
    err: &mut E,
    policy: &RetryPolicy,
) -> Result<DriveOutcome, String> {
    let cmds = parse_drive(script)?;
    let mut client = Client::connect_with_retry(addr, policy)?;
    let mut degraded = false;
    for (line_no, cmd) in cmds {
        let request = match &cmd {
            DriveCmd::Open {
                session,
                path,
                lazy,
            } => Request::Open {
                session: session.clone(),
                program: read_rel(base_dir, path)
                    .map_err(|e| format!("drive line {line_no}: {e}"))?,
                lazy: *lazy,
            },
            DriveCmd::Edit { session, path } => Request::Edit {
                session: session.clone(),
                script: read_rel(base_dir, path)
                    .map_err(|e| format!("drive line {line_no}: {e}"))?,
            },
            DriveCmd::Query { session, target } => Request::Query {
                session: session.clone(),
                target: target.clone(),
            },
            DriveCmd::Close { session } => Request::Close {
                session: session.clone(),
            },
            DriveCmd::Stats => Request::Stats,
        };
        let resp = client
            .request_retrying(request, policy)
            .map_err(|e| format!("drive line {line_no}: {e}"))?;
        match resp.status {
            Status::Error => {
                let msg = resp.str_field("error").unwrap_or("unknown error");
                return Err(format!("drive line {line_no}: server error: {msg}"));
            }
            Status::Overloaded => {
                let msg = resp.str_field("reason").unwrap_or("server overloaded");
                return Err(format!(
                    "drive line {line_no}: still overloaded after {} attempts: {msg}",
                    policy.attempts.max(1)
                ));
            }
            Status::Degraded => degraded = true,
            Status::Ok => {}
        }
        report_response(&cmd, &resp, out, err).map_err(|e| format!("i/o: {e}"))?;
    }
    Ok(if degraded {
        DriveOutcome::Degraded
    } else {
        DriveOutcome::Clean
    })
}

fn read_rel(base: &Path, path: &str) -> Result<String, String> {
    let full = base.join(path);
    std::fs::read_to_string(&full).map_err(|e| format!("cannot read `{}`: {e}", full.display()))
}

fn report_response<W: Write, E: Write>(
    cmd: &DriveCmd,
    resp: &Response,
    out: &mut W,
    err: &mut E,
) -> std::io::Result<()> {
    let note = |err: &mut E, prefix: &str| -> std::io::Result<()> {
        if let Some(reason) = resp.str_field("reason") {
            writeln!(err, "{prefix} [degraded: {reason}]")
        } else {
            writeln!(err, "{prefix}")
        }
    };
    match cmd {
        DriveCmd::Open { session, .. } => note(
            err,
            &format!(
                "opened `{session}`: {} procs, {} sites, {} vars",
                resp.uint_field("procs").unwrap_or(0),
                resp.uint_field("sites").unwrap_or(0),
                resp.uint_field("vars").unwrap_or(0)
            ),
        ),
        DriveCmd::Edit { session, .. } => note(
            err,
            &format!(
                "edited `{session}`: {} steps applied",
                resp.uint_field("applied").unwrap_or(0)
            ),
        ),
        DriveCmd::Query { session, .. } => {
            // The report is the payload; stdout gets it untouched.
            if let Some(report) = resp.str_field("report") {
                write!(out, "{report}")?;
                out.flush()?;
            }
            if resp.status == Status::Degraded {
                note(err, &format!("query `{session}`"))?;
            }
            Ok(())
        }
        DriveCmd::Close { session } => note(err, &format!("closed `{session}`")),
        DriveCmd::Stats => {
            let field = |k: &str| resp.uint_field(k).unwrap_or(0);
            note(
                err,
                &format!(
                    "stats: sessions={} connections={} requests={} ok={} degraded={} errors={} \
                     parked={} evictions={} recoveries={} shed={} journal_bytes={}",
                    field("sessions"),
                    field("connections"),
                    field("requests"),
                    field("ok"),
                    field("degraded"),
                    field("errors"),
                    field("parked"),
                    field("evictions"),
                    field("recoveries"),
                    field("shed"),
                    field("journal_bytes")
                ),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_command_forms() {
        let script = "\
# comment
open  s1 prog.mp

edit s1 delta.edits
query s1 all
query s1 site 3
query s1 proc bump
stats
close s1
";
        let cmds = parse_drive(script).expect("parses");
        assert_eq!(cmds.len(), 7);
        assert_eq!(
            cmds[3].1,
            DriveCmd::Query {
                session: "s1".to_string(),
                target: QueryTarget::Site(3)
            }
        );
        assert_eq!(cmds[6].1, DriveCmd::Close {
            session: "s1".to_string()
        });
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        let err = parse_drive("open s1 a.mp\nquery s1 sideways\n").unwrap_err();
        assert!(err.contains("drive line 2"), "got: {err}");
        let err = parse_drive("query s1 site notanumber\n").unwrap_err();
        assert!(err.contains("bad site index"), "got: {err}");
    }

    #[test]
    fn retry_floor_never_collapses_to_a_hot_spin() {
        let policy = RetryPolicy::default();
        // A sane server hint wins as-is.
        assert_eq!(retry_floor_ms(Some(250), &policy), 250);
        // Missing, malformed (uint_field yields None), or zero hints all
        // fall back to the policy's base backoff.
        assert_eq!(retry_floor_ms(None, &policy), policy.base_ms);
        assert_eq!(retry_floor_ms(Some(0), &policy), policy.base_ms);
        // Even a pathological zero-base policy keeps a 1 ms floor.
        let hot = RetryPolicy { base_ms: 0, ..RetryPolicy::default() };
        assert_eq!(retry_floor_ms(None, &hot), 1);

        // And the jitter sequence respects that floor on every draw.
        let mut jitter = Jitter::new(&hot);
        for _ in 0..64 {
            assert!(jitter.next_ms(retry_floor_ms(None, &hot)) >= 1);
        }
    }
}
