//! `modref-serve`: a long-lived analysis daemon multiplexing concurrent
//! incremental MOD/USE sessions over TCP.
//!
//! The batch CLI answers one question per process; real consumers (an
//! IDE, a build daemon) hold a program open, stream edits at it, and
//! query between keystrokes. This crate keeps one
//! [`IncrementalEngine`](modref_incr::IncrementalEngine) per named
//! *session* behind a dependency-free `std::net` server speaking
//! length-prefixed JSON-RPC:
//!
//! * [`frame`] — the wire framing: 4-byte big-endian length prefix +
//!   UTF-8 JSON payload, with typed rejection of zero-length, oversized,
//!   and truncated frames.
//! * [`proto`] — the request/response vocabulary (`open`, `edit`,
//!   `query`, `close`, `stats`) and the three-valued `ok` / `degraded` /
//!   `error` status that mirrors the CLI's 0/1/3 exit contract.
//! * [`server`] — the daemon: session table, per-connection handler
//!   threads, and per-request [`Guard`](modref_guard::Guard)
//!   budgets/deadlines so one pathological request degrades *its own
//!   response* (to sound, widened sets) instead of starving sibling
//!   sessions. Every request records an `incr.serve` trace span and
//!   feeds the latency counters that `stats` reports. At the live-session
//!   cap it parks (LRU-evicts) idle sessions and resurrects them
//!   transparently on next use; at the connection cap it sheds with a
//!   typed `overloaded` + retry hint instead of hanging.
//! * [`journal`] — per-session durability: an append-only,
//!   length-prefixed, checksummed record stream (program snapshot + one
//!   record per applied edit) under `--state-dir`, with a torn-tail scan
//!   that never panics on damaged bytes.
//! * [`recover`] — startup recovery: scan + truncate every journal,
//!   replay the newest into engines **verified bit-identical** against a
//!   from-scratch analysis, park the rest, quarantine what cannot be
//!   trusted.
//! * [`client`] — a synchronous client plus the drive-script interpreter
//!   behind the CLI `client` verb; `query <s> all` output is
//!   byte-identical to `modref analyze --json` on the same program
//!   state. [`RetryPolicy`](client::RetryPolicy) gives connects and
//!   `overloaded` refusals capped exponential backoff with decorrelated
//!   jitter.
//!
//! Degradation is never silent and never unsound: a response that could
//! not be computed exactly (guard trip, contained panic, poisoned
//! session) comes back `status:"degraded"` with a reason, and any sets
//! it carries are over-approximations of the exact answer. The protocol
//! spec lives in `docs/SERVER.md`; the test walls are
//! `tests/frame_props.rs` (protocol fuzz), `tests/journal_props.rs`
//! (journal round-trip/corruption properties), `tests/soak.rs`
//! (concurrent clients vs. scratch analyzer oracle, with churn),
//! `tests/recover.rs` (eviction/resurrection/recovery), and
//! `tests/faults.rs` (fault-injection containment).

pub mod client;
pub mod frame;
pub mod journal;
pub mod proto;
pub mod recover;
pub mod server;

pub use client::{run_drive, run_drive_with, Client, DriveOutcome, RetryPolicy};
pub use frame::{encode_frame, read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use journal::{
    scan_bytes, scan_journal, FsyncPolicy, Journal, JournalRecord, JournalScan,
    MAX_RECORD_LEN, RECORD_HEADER_LEN,
};
pub use proto::{Envelope, QueryTarget, Request, Response, Status, StatsSnapshot};
pub use recover::{recover_dir, recover_file, verify_engine, RecoveredSession, RecoveryStats};
pub use server::{Server, ServerConfig, ServerHandle};
