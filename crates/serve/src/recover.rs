//! Startup recovery: rebuild sessions from their journals and prove it.
//!
//! `Server::bind` calls [`recover_dir`] when a `--state-dir` is
//! configured. Every `*.journal` file is scanned ([`crate::journal`]);
//! torn tails are truncated back to the last complete record. The most
//! recently touched journals — up to the live-session cap — are rebuilt
//! into [`IncrementalEngine`]s by replaying their snapshot + edit history
//! through the same pipeline live edits use, and every rebuilt engine is
//! **verified bit-identical** against a from-scratch [`Analyzer`] on the
//! recovered program before it is trusted. Journals beyond the cap are
//! recovered as *parked* history (source + edit lines, no engine) and
//! resurrect on first use.
//!
//! Failure handling is conservative and total:
//!
//! * a fault at the `serve.recover` guard site (or a contained panic
//!   there) *skips* the file — it stays on disk, untouched, and a later
//!   `open` of that session resurrects it;
//! * a journal whose *data* cannot be trusted — no snapshot record, a
//!   program that no longer parses, a history that no longer replays, or
//!   a rebuilt engine that fails the bit-identity check — is
//!   **quarantined**: renamed to `<name>.bad` so it never poisons a
//!   session name, but never deleted.

use std::path::{Path, PathBuf};
use std::time::SystemTime;

use modref_core::Analyzer;
use modref_guard::Guard;
use modref_incr::render::{render_json, SiteSets};
use modref_incr::{IncrementalEngine, IncrementalExt};
use modref_trace::Trace;

use crate::journal::{scan_journal, session_for, truncate_to, FsyncPolicy, Journal, JournalRecord};

/// What startup recovery did, for the `serve` verb's summary line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Sessions rebuilt into live engines and verified against scratch.
    pub recovered: usize,
    /// Journals recovered as parked history (beyond the live cap).
    pub parked: usize,
    /// Journals renamed to `.bad` because their data could not be
    /// trusted.
    pub quarantined: usize,
    /// Journals whose torn tail was truncated back to the last complete
    /// record.
    pub truncated_tails: usize,
    /// Journals skipped under an injected `serve.recover` fault (left on
    /// disk for on-demand resurrection).
    pub skipped: usize,
}

/// A session rebuilt from its journal, ready for the live table.
pub struct RecoveredSession {
    /// Session name, from the snapshot record.
    pub name: String,
    /// The program source the session was opened with.
    pub source: String,
    /// Every applied edit line, in order.
    pub history: Vec<String>,
    /// `history.len()`, as the live counter.
    pub edits_applied: u64,
    /// The replayed, verified engine.
    pub engine: IncrementalEngine,
    /// The journal, reopened for appending.
    pub journal: Journal,
    /// Size of the clean journal prefix on disk.
    pub bytes: u64,
}

/// A journal recovered as history only (beyond the live cap): the server
/// parks it and resurrects on first use.
pub struct ParkedRecovery {
    /// Session name, from the snapshot record.
    pub name: String,
    /// The program source the session was opened with.
    pub source: String,
    /// Every applied edit line, in order.
    pub history: Vec<String>,
    /// Size of the clean journal prefix on disk.
    pub bytes: u64,
}

/// The scanned, trusted content of one journal file.
struct JournalContent {
    name: String,
    source: String,
    history: Vec<String>,
    bytes: u64,
    truncated: bool,
}

/// Scans `path`, truncates a torn tail, and validates the record shape
/// (snapshot first, edits after).
fn read_content(path: &Path) -> Result<JournalContent, String> {
    let scan = scan_journal(path).map_err(|e| format!("cannot read journal: {e}"))?;
    if scan.torn {
        truncate_to(path, scan.good_bytes)
            .map_err(|e| format!("cannot truncate torn journal tail: {e}"))?;
    }
    let mut records = scan.records.into_iter();
    let (name, source) = match records.next() {
        Some(JournalRecord::Snapshot { session, program }) => (session, program),
        Some(JournalRecord::Edit { .. }) => {
            return Err("journal starts with an edit record, not a snapshot".to_owned())
        }
        None => return Err("journal holds no complete records".to_owned()),
    };
    if session_for(path).as_deref() != Some(name.as_str()) {
        return Err(format!(
            "journal filename does not decode to its snapshot session `{name}`"
        ));
    }
    let mut history = Vec::new();
    for rec in records {
        match rec {
            JournalRecord::Edit { line } => history.push(line),
            JournalRecord::Snapshot { .. } => {
                return Err("journal holds a second snapshot record".to_owned())
            }
        }
    }
    Ok(JournalContent {
        name,
        source,
        history,
        bytes: scan.good_bytes,
        truncated: scan.torn,
    })
}

/// Rebuilds one engine from trusted journal content: parse the snapshot,
/// replay the history, verify bit-identity against scratch.
fn rebuild_engine(
    source: &str,
    history: &[String],
    threads: Option<usize>,
    trace: &Trace,
) -> Result<IncrementalEngine, String> {
    let program =
        modref_frontend::parse_program(source).map_err(|e| format!("snapshot parse error: {e}"))?;
    let mut analyzer = Analyzer::new();
    analyzer.with_trace(trace.clone());
    if let Some(t) = threads {
        analyzer.threads(t);
    }
    let mut engine = analyzer.incremental(program);
    engine
        .replay_history(history.iter().map(String::as_str))
        .map_err(|e| format!("history replay failed: {e}"))?;
    verify_engine(&engine)?;
    Ok(engine)
}

/// Proves a rebuilt engine bit-identical to a from-scratch [`Analyzer`]
/// on the recovered program — the recovery acceptance contract.
pub fn verify_engine(engine: &IncrementalEngine) -> Result<(), String> {
    let program = engine.program();
    let live = render_json(program, &SiteSets::from_engine(engine));
    let summary = Analyzer::new().analyze(program);
    let scratch = render_json(program, &SiteSets::from_summary(program, &summary));
    if live == scratch {
        Ok(())
    } else {
        Err("recovered results diverge from a from-scratch analysis".to_owned())
    }
}

/// Recovers one journal file into a live, verified session.
///
/// # Errors
///
/// A human-readable reason the journal's *data* cannot be trusted; the
/// caller quarantines. Torn tails are not errors (the scan truncates and
/// recovery proceeds with the clean prefix); `truncated` reports them.
pub fn recover_file(
    path: &Path,
    threads: Option<usize>,
    trace: &Trace,
    policy: FsyncPolicy,
) -> Result<(RecoveredSession, bool), String> {
    let content = read_content(path)?;
    let engine = rebuild_engine(&content.source, &content.history, threads, trace)?;
    let journal = Journal::append_to(path, policy)
        .map_err(|e| format!("cannot reopen journal for appending: {e}"))?;
    let truncated = content.truncated;
    Ok((
        RecoveredSession {
            name: content.name,
            source: content.source,
            edits_applied: content.history.len() as u64,
            history: content.history,
            engine,
            journal,
            bytes: content.bytes,
        },
        truncated,
    ))
}

/// Quarantines a journal the recovery cannot trust: rename to
/// `<file>.bad` (best-effort — a rename failure leaves it in place).
pub(crate) fn quarantine(path: &Path) {
    let mut bad = path.as_os_str().to_owned();
    bad.push(".bad");
    let _ = std::fs::rename(path, PathBuf::from(bad));
}

/// Scans `dir` and recovers every `*.journal`: the most recently
/// modified `max_live` files become live sessions, the rest parked
/// history. `guard` carries the `serve.recover` fault site; a fault or
/// contained panic there skips that file.
pub fn recover_dir(
    dir: &Path,
    max_live: usize,
    threads: Option<usize>,
    trace: &Trace,
    policy: FsyncPolicy,
    guard: &Guard,
) -> (Vec<RecoveredSession>, Vec<ParkedRecovery>, RecoveryStats) {
    let mut stats = RecoveryStats::default();
    let mut live = Vec::new();
    let mut parked = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return (live, parked, stats);
    };
    let mut files: Vec<(SystemTime, PathBuf)> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "journal"))
        .map(|p| {
            let mtime = p
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(SystemTime::UNIX_EPOCH);
            (mtime, p)
        })
        .collect();
    // Newest first; path as the deterministic tie-break.
    files.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(&b.1)));
    let mut seen: Vec<String> = Vec::new();
    for (_, path) in files {
        let contained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            guard.checkpoint("serve.recover")
        }));
        match contained {
            Ok(Ok(())) => {}
            Ok(Err(_)) | Err(_) => {
                stats.skipped += 1;
                continue;
            }
        }
        if live.len() < max_live {
            match recover_file(&path, threads, trace, policy) {
                Ok((session, truncated)) => {
                    if seen.contains(&session.name) {
                        stats.skipped += 1;
                        continue;
                    }
                    seen.push(session.name.clone());
                    stats.recovered += 1;
                    stats.truncated_tails += usize::from(truncated);
                    live.push(session);
                }
                Err(_) => {
                    quarantine(&path);
                    stats.quarantined += 1;
                }
            }
        } else {
            match read_content(&path) {
                Ok(content) => {
                    if seen.contains(&content.name) {
                        stats.skipped += 1;
                        continue;
                    }
                    seen.push(content.name.clone());
                    stats.parked += 1;
                    stats.truncated_tails += usize::from(content.truncated);
                    parked.push(ParkedRecovery {
                        name: content.name,
                        source: content.source,
                        history: content.history,
                        bytes: content.bytes,
                    });
                }
                Err(_) => {
                    quarantine(&path);
                    stats.quarantined += 1;
                }
            }
        }
    }
    (live, parked, stats)
}
