//! The daemon: session table, per-connection frame loops, guarded
//! request dispatch, durability, admission control, and server-wide
//! counters.
//!
//! One engine per *live* session, each behind its own
//! lock, so requests against different sessions run concurrently while
//! requests against the same session serialize. Every request runs under
//! its own [`Guard`] — the server's configured budget/deadline defaults,
//! tightened or replaced by the request's `budget_ops`/`timeout_ms`
//! fields — so a pathological request degrades *that response* (status
//! `"degraded"`, sound widened sets) instead of starving sibling
//! sessions. Contained panics (injected via the `serve.*` fault sites,
//! or real bugs) follow the same ladder; see `docs/SERVER.md`.
//!
//! Three robustness layers on top of the PR 7 core:
//!
//! * **Durability** — with a [`ServerConfig::state_dir`], every session
//!   keeps an append-only journal ([`crate::journal`]): a program
//!   snapshot plus one record per applied edit line, checksummed and
//!   fsync'd per [`FsyncPolicy`]. `Server::bind` recovers journals into
//!   verified engines ([`crate::recover`]). Any journal failure — I/O
//!   error, guard fault at `serve.journal.append`/`serve.journal.fsync`,
//!   contained panic — latches the session `journal_dead`: the edit
//!   still applies, the response says `degraded` ("no longer durable"),
//!   and nothing is ever appended past a missing record, so the on-disk
//!   journal is always a *prefix* of the applied history.
//! * **Admission control** — at [`ServerConfig::max_sessions`] live
//!   engines, an idle LRU session is *parked* (evicted): its engine is
//!   dropped, its cheap text history stays in the table (and on disk
//!   when journaled), and any later request that names it transparently
//!   resurrects it by replay. A session is idle only when the table
//!   holds the sole reference to it, so an in-flight request can never
//!   be orphaned. With [`ServerConfig::evict`] off the cap is the PR 7
//!   hard error. When nothing is evictable — or at
//!   [`ServerConfig::max_conns`] live connections — the server answers
//!   `overloaded` with a retry hint instead of failing or hanging.
//! * **Graceful drain** — [`ServerHandle::drain`] stops accepting,
//!   half-closes connections so in-flight responses complete, joins the
//!   handlers, then fsyncs and closes every journal.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modref_core::Analyzer;
use modref_guard::{Budget, FaultPlan, Guard, Interrupt};
use modref_incr::render::{
    render_json, render_json_proc, render_json_site, render_json_site_answer, SiteSets,
};
use modref_bitset::SetRepr;
use modref_incr::{AnyQueryEngine, IncrOutcome, Script};
use modref_ir::{CallSiteId, ProcId, Program};
use modref_trace::{escape_json, Trace};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::journal::{self, FsyncPolicy, Journal, JournalRecord};
use crate::proto::{
    resp_close, resp_edit, resp_error, resp_open, resp_overloaded, resp_query, resp_stats,
    Envelope, Request, Status, StatsSnapshot,
};
use crate::recover::{quarantine, recover_dir, recover_file, RecoveryStats};

/// Server-wide configuration, fixed at bind time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cap on concurrently *live* sessions (engines in memory). With
    /// [`ServerConfig::evict`] on, reaching it parks the
    /// least-recently-used idle session; off, the extra `open` is an
    /// error response (never a dropped connection).
    pub max_sessions: usize,
    /// Default per-request op budget (the CLI's `--request-budget-ops`).
    pub request_budget_ops: Option<u64>,
    /// Default per-request wall-clock deadline in milliseconds
    /// (`--request-timeout-ms`).
    pub request_timeout_ms: Option<u64>,
    /// Worker-thread count for each session's pooled solver phases
    /// (`modref-par` semantics: `None` defers to `MODREF_THREADS`).
    pub threads: Option<usize>,
    /// Directory for per-session edit journals (`--state-dir`). `None`
    /// disables durability: sessions survive eviction (their history
    /// stays in memory) but not process death.
    pub state_dir: Option<PathBuf>,
    /// LRU-evict idle sessions at the cap instead of hard-failing the
    /// extra `open` (`--no-evict` turns this off). Default on.
    pub evict: bool,
    /// When journal appends reach the disk (`--fsync`).
    pub fsync: FsyncPolicy,
    /// Cap on concurrent connections; past it, a fresh connection gets
    /// one `overloaded` frame and is closed (`--max-conns`).
    pub max_conns: usize,
    /// The `retry_after_ms` hint carried on `overloaded` responses.
    pub retry_after_ms: u64,
    /// Fault plan armed on request guards. The CLI arms this from
    /// `MODREF_FAULT` like every other guarded entry point; in-process
    /// tests pin plans explicitly. Never armed implicitly.
    pub faults: Option<FaultPlan>,
    /// When set, [`ServerConfig::faults`] arms only for requests
    /// addressed to this session — the hook the fault suite uses to
    /// poison one session while its siblings stay healthy. (The
    /// pre-session `serve.accept` and `serve.recover`-at-startup sites
    /// are armed only when this is `None`.)
    pub fault_session: Option<String>,
    /// Trace sink; every request records an `incr.serve` span into it.
    pub trace: Trace,
    /// The set representation every session this server opens runs on
    /// (`--set-repr`). Sessions inherit it at `open` and resurrection;
    /// journal recovery rebuilds dense regardless, because its
    /// bit-identity check runs against the dense from-scratch analysis.
    pub set_repr: SetRepr,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            request_budget_ops: None,
            request_timeout_ms: None,
            threads: None,
            state_dir: None,
            evict: true,
            fsync: FsyncPolicy::Always,
            max_conns: 256,
            retry_after_ms: 50,
            faults: None,
            fault_session: None,
            trace: Trace::disabled(),
            set_repr: SetRepr::Dense,
        }
    }
}

/// One live session: the engine plus everything needed to park and
/// resurrect it. The engine is a [`QueryEngine`]: sessions opened with
/// `"lazy":true` hold only a demand memo until a `target=all` query (or
/// resurrection) promotes them to the exhaustive incremental engine.
struct Session {
    engine: AnyQueryEngine,
    /// Edits applied since `open` (including degraded applies).
    edits_applied: u64,
    /// The program text the session was opened with.
    source: String,
    /// Every applied edit line, in order — the in-memory mirror of the
    /// journal, and the replay script for resurrection.
    history: Vec<String>,
    /// The durable journal, when a state dir is configured.
    journal: Option<Journal>,
    /// Latched on the first journal failure: the session stays usable
    /// but every further edit answers `degraded`, and nothing more is
    /// appended (the on-disk journal stays a prefix of the history).
    journal_dead: bool,
}

/// An evicted session: the engine is gone, the cheap text history
/// remains. Any request that names it resurrects it by replay.
#[derive(Clone)]
struct Parked {
    source: String,
    history: Vec<String>,
    edits_applied: u64,
    journal_dead: bool,
}

/// A session-table slot.
enum Slot {
    /// Engine resident; `last_used` drives LRU eviction.
    Live {
        session: Arc<Mutex<Session>>,
        last_used: u64,
    },
    /// Evicted to history.
    Parked(Parked),
}

/// Monotone counters, updated lock-free from every handler thread.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    errors: AtomicU64,
    evictions: AtomicU64,
    recoveries: AtomicU64,
    shed: AtomicU64,
    journal_bytes: AtomicU64,
    latency_total_us: AtomicU64,
    latency_max_us: AtomicU64,
    per_op: [AtomicU64; 5],
}

fn op_slot(op: &str) -> usize {
    match op {
        "open" => 0,
        "edit" => 1,
        "query" => 2,
        "close" => 3,
        _ => 4,
    }
}

struct Shared {
    cfg: ServerConfig,
    sessions: Mutex<HashMap<String, Slot>>,
    counters: Counters,
    stop: AtomicBool,
    /// Monotone tick source for LRU `last_used` stamps.
    use_clock: AtomicU64,
    /// Clones of live connection streams keyed by connection id,
    /// force-closed on shutdown so blocked frame reads drain promptly.
    /// Each handler removes its own entry on exit, so the table tracks
    /// *live* connections, not connection history.
    conns: Mutex<HashMap<u64, TcpStream>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Poison-tolerant lock: a handler that panicked at a `serve.*`
/// checkpoint did so *before* touching the engine (and the engine's own
/// apply path contains its panics), so the data under a poisoned lock is
/// always coherent.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn clock_tick(shared: &Shared) -> u64 {
    shared.use_clock.fetch_add(1, Ordering::Relaxed)
}

/// Adds to the journal-bytes counter and emits the cumulative trace
/// sample.
fn add_journal_bytes(shared: &Shared, n: u64) {
    let total = shared.counters.journal_bytes.fetch_add(n, Ordering::Relaxed) + n;
    shared.cfg.trace.counter("incr.serve.journal_bytes", total);
}

/// A bound, not-yet-running server. Binding with a
/// [`ServerConfig::state_dir`] runs startup recovery before any
/// connection is accepted; [`Server::recovery`] reports what it did.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
    recovery: RecoveryStats,
}

/// A handle to a server running on a background thread. Dropping the
/// handle shuts the server down (idempotent with [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port; see
    /// [`Server::local_addr`]) and, with a state dir configured, runs
    /// startup recovery: every journal is scanned (torn tails
    /// truncated), the most recent ones are replayed into engines and
    /// verified bit-identical against a from-scratch analysis, untrusted
    /// files are quarantined to `.bad`.
    ///
    /// # Errors
    ///
    /// The bind or state-dir-creation failure, untouched.
    pub fn bind(addr: SocketAddr, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            sessions: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            stop: AtomicBool::new(false),
            use_clock: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            workers: Mutex::new(Vec::new()),
        });
        let mut recovery = RecoveryStats::default();
        if let Some(dir) = shared.cfg.state_dir.clone() {
            std::fs::create_dir_all(&dir)?;
            let guard = server_guard(&shared.cfg);
            let (live, parked, stats) = recover_dir(
                &dir,
                shared.cfg.max_sessions,
                shared.cfg.threads,
                &shared.cfg.trace,
                shared.cfg.fsync,
                &guard,
            );
            recovery = stats;
            let mut sessions = relock(&shared.sessions);
            for rs in live {
                add_journal_bytes(&shared, rs.bytes);
                let total = shared.counters.recoveries.fetch_add(1, Ordering::Relaxed) + 1;
                shared.cfg.trace.counter("incr.serve.recoveries", total);
                let tick = shared.use_clock.fetch_add(1, Ordering::Relaxed);
                sessions.insert(
                    rs.name.clone(),
                    Slot::Live {
                        session: Arc::new(Mutex::new(Session {
                            engine: AnyQueryEngine::from_dense_full(rs.engine),
                            edits_applied: rs.edits_applied,
                            source: rs.source,
                            history: rs.history,
                            journal: Some(rs.journal),
                            journal_dead: false,
                        })),
                        last_used: tick,
                    },
                );
            }
            for pr in parked {
                add_journal_bytes(&shared, pr.bytes);
                sessions.insert(
                    pr.name.clone(),
                    Slot::Parked(Parked {
                        source: pr.source,
                        edits_applied: pr.history.len() as u64,
                        history: pr.history,
                        journal_dead: false,
                    }),
                );
            }
        }
        Ok(Server {
            listener,
            addr,
            shared,
            recovery,
        })
    }

    /// The actually bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// What startup recovery did (all zeros without a state dir).
    pub fn recovery(&self) -> RecoveryStats {
        self.recovery
    }

    /// Runs the accept loop on the current thread until shut down (the
    /// CLI `serve` verb's mode — it never returns in normal operation).
    /// Each connection gets its own handler thread; a handler panic is
    /// contained to its connection. At [`ServerConfig::max_conns`] live
    /// connections, a fresh one is shed: it gets a single `overloaded`
    /// frame (with the retry hint) and is closed without a handler.
    pub fn run(self) {
        let shared = self.shared;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) => {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
            };
            if shared.stop.load(Ordering::Acquire) {
                break;
            }
            if relock(&shared.conns).len() >= shared.cfg.max_conns {
                let total = shared.counters.shed.fetch_add(1, Ordering::Relaxed) + 1;
                shared.cfg.trace.counter("incr.serve.shed", total);
                let mut stream = stream;
                let reply =
                    resp_overloaded(None, shared.cfg.retry_after_ms, "connection limit reached");
                let _ = write_frame(&mut stream, reply.as_bytes());
                let _ = stream.shutdown(std::net::Shutdown::Both);
                continue;
            }
            let conn_id = shared.counters.connections.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                relock(&shared.conns).insert(conn_id, clone);
            }
            let conn_shared = Arc::clone(&shared);
            let worker = std::thread::spawn(move || {
                // The inner catch_unwind paths keep panics per-request;
                // this outer one keeps any residue per-connection.
                let mut stream = stream;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(&conn_shared, &mut stream);
                }));
                // The clone in `conns` keeps the socket open past this
                // fd's drop — shut the connection down explicitly (the
                // peer gets EOF even after a contained panic) and drop
                // the clone so the table only holds live connections.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                relock(&conn_shared.conns).remove(&conn_id);
                let _ = result;
            });
            // Reap finished handlers so a long-lived daemon's worker
            // table is bounded by live connections, not history.
            let mut workers = relock(&shared.workers);
            workers.retain(|w| !w.is_finished());
            workers.push(worker);
        }
    }

    /// Runs the accept loop on a background thread and returns the
    /// controlling handle (the in-process test mode).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let accept = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, force-closes live connections, and joins every
    /// handler thread. Sessions (and their engines) are dropped with the
    /// server; journals get whatever their fsync policy already wrote.
    pub fn shutdown(mut self) {
        self.shutdown_impl(std::net::Shutdown::Both);
    }

    /// Graceful drain (what SIGTERM triggers in the CLI): stop
    /// accepting, *half*-close live connections — in-flight responses
    /// still write; readers see EOF at the next frame boundary — join
    /// every handler, then fsync and close every journal. Returns the
    /// number of journals made durable.
    pub fn drain(mut self) -> usize {
        self.shutdown_impl(std::net::Shutdown::Read);
        let slots: Vec<Slot> = {
            let mut sessions = relock(&self.shared.sessions);
            sessions.drain().map(|(_, slot)| slot).collect()
        };
        let mut synced = 0;
        for slot in slots {
            if let Slot::Live { session, .. } = slot {
                if let Ok(mutex) = Arc::try_unwrap(session) {
                    let mut state = mutex.into_inner().unwrap_or_else(PoisonError::into_inner);
                    if let Some(j) = state.journal.as_mut() {
                        if !state.journal_dead && j.sync().is_ok() {
                            synced += 1;
                        }
                    }
                }
            }
        }
        synced
    }

    fn shutdown_impl(&mut self, how: std::net::Shutdown) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the no-op connection is absorbed by
        // the stop check at the top of the loop.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in relock(&self.shared.conns).drain() {
            let _ = conn.shutdown(how);
        }
        let _ = accept.join();
        let workers: Vec<JoinHandle<()>> = relock(&self.shared.workers).drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl(std::net::Shutdown::Both);
    }
}

/// Builds the per-request guard: request overrides beat server defaults;
/// the fault plan arms only when the config says so (and, with a
/// `fault_session` filter, only for that session's requests).
fn request_guard(cfg: &ServerConfig, env: &Envelope) -> Guard {
    let mut budget = Budget::unlimited();
    if let Some(ms) = env.timeout_ms.or(cfg.request_timeout_ms) {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = env.budget_ops.or(cfg.request_budget_ops) {
        budget = budget.with_ops(n);
    }
    let mut guard = Guard::new(&budget);
    if let Some(plan) = &cfg.faults {
        let armed = match &cfg.fault_session {
            None => true,
            Some(target) => env.request.session() == Some(target.as_str()),
        };
        if armed {
            guard = guard.with_faults(plan.clone());
        }
    }
    guard
}

/// The guard for server-level (no-session) checkpoints: `serve.accept`
/// on a fresh connection and `serve.recover` during startup recovery.
/// Faults only arm here when they are unfiltered — these sites belong to
/// no session.
fn server_guard(cfg: &ServerConfig) -> Guard {
    let mut guard = Guard::unlimited();
    if cfg.fault_session.is_none() {
        if let Some(plan) = &cfg.faults {
            guard = guard.with_faults(plan.clone());
        }
    }
    guard
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    // A panic injected at `serve.accept` is contained by the caller's
    // catch_unwind: this connection dies (the client sees EOF), the
    // accept loop and every other connection keep going.
    if server_guard(&shared.cfg).checkpoint("serve.accept").is_err() {
        return;
    }
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(stream) {
            Ok(None) => return,
            Ok(Some(payload)) => {
                let reply = handle_frame(shared, &payload);
                if write_frame(stream, reply.as_bytes()).is_err() {
                    // Client went away mid-request. Session state is
                    // already committed; the next connection can reuse it.
                    return;
                }
            }
            Err(err) => {
                // Frame-level failure: the stream is unsynchronised.
                // Say why (typed, with a null id), then close.
                let reply = resp_error(None, &format!("frame: {err}"));
                let _ = write_frame(stream, reply.as_bytes());
                if !matches!(err, FrameError::Io(_)) {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

/// Parses, dispatches, and accounts one request. Always produces exactly
/// one response frame payload.
fn handle_frame(shared: &Shared, payload: &[u8]) -> String {
    let t0 = Instant::now();
    let counters = &shared.counters;
    let env = match Envelope::parse(payload) {
        Ok(env) => env,
        Err(e) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return resp_error(e.id, &e.message);
        }
    };
    counters.requests.fetch_add(1, Ordering::Relaxed);
    let op = env.request.op_name();
    counters.per_op[op_slot(op)].fetch_add(1, Ordering::Relaxed);

    let mut span = shared.cfg.trace.span("incr.serve");
    span.note("op", op);
    if let Some(s) = env.request.session() {
        span.note("session", s);
    }

    let guard = request_guard(&shared.cfg, &env);
    let (reply, status) =
        match catch_unwind(AssertUnwindSafe(|| dispatch(shared, &env, &guard))) {
            Ok(pair) => pair,
            Err(panic) => panic_fallback(shared, &env, panic.as_ref()),
        };
    span.note("status", status.as_str());

    match status {
        Status::Ok => counters.ok.fetch_add(1, Ordering::Relaxed),
        Status::Degraded => counters.degraded.fetch_add(1, Ordering::Relaxed),
        Status::Error => counters.errors.fetch_add(1, Ordering::Relaxed),
        Status::Overloaded => {
            let total = counters.shed.fetch_add(1, Ordering::Relaxed) + 1;
            shared.cfg.trace.counter("incr.serve.shed", total);
            total
        }
    };
    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    counters.latency_total_us.fetch_add(us, Ordering::Relaxed);
    counters.latency_max_us.fetch_max(us, Ordering::Relaxed);
    span.arg("latency_us", us);
    reply
}

/// `{"id":…,"status":"degraded",…}` for ops that carry no report.
fn resp_degraded_plain(id: u64, op: &str, session: Option<&str>, reason: &str) -> String {
    let session = session.map_or_else(String::new, |s| {
        format!(",\"session\":\"{}\"", escape_json(s))
    });
    format!(
        "{{\"id\":{id},\"status\":\"degraded\",\"op\":\"{op}\"{session},\"reason\":\"{}\"}}",
        escape_json(reason)
    )
}

/// The session's slot, cloned, when it is currently live.
fn live_slot(shared: &Shared, session: &str) -> Option<Arc<Mutex<Session>>> {
    match relock(&shared.sessions).get(session) {
        Some(Slot::Live { session, .. }) => Some(Arc::clone(session)),
        _ => None,
    }
}

/// The response when dispatch itself panicked (an injected `serve.*`
/// fault or a real bug outside the engine's own containment). Queries
/// still answer — with the sound conservative widening — so a poisoned
/// session degrades instead of going dark; everything else reports
/// `degraded` with the panic text.
fn panic_fallback(
    shared: &Shared,
    env: &Envelope,
    panic: &(dyn std::any::Any + Send),
) -> (String, Status) {
    let reason = format!("panic during request: {}", panic_message(panic));
    if let Request::Query { session, target } = &env.request {
        if let Some(slot) = live_slot(shared, session) {
            let guard = relock(&slot);
            let report = conservative_report(guard.engine.program(), target);
            drop(guard);
            if let Some(report) = report {
                return (
                    resp_query(env.id, session, Some(&reason), &report),
                    Status::Degraded,
                );
            }
        }
    }
    (
        resp_degraded_plain(env.id, env.request.op_name(), env.request.session(), &reason),
        Status::Degraded,
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders the sound widened report for `target`, or `None` when the
/// target does not resolve (out-of-range site, unknown procedure) — the
/// caller turns that into a plain degraded response.
fn conservative_report(program: &Program, target: &crate::proto::QueryTarget) -> Option<String> {
    use crate::proto::QueryTarget;
    match target {
        QueryTarget::All => Some(render_json(program, &SiteSets::conservative(program))),
        QueryTarget::Site(n) => {
            if *n >= program.num_sites() {
                return None;
            }
            Some(render_json_site(
                program,
                &SiteSets::conservative(program),
                CallSiteId::new(*n),
            ))
        }
        QueryTarget::Proc(name) => {
            let p = find_proc(program, name)?;
            let wide = program.visible_set(p);
            Some(render_json_proc(program, name, &wide, &wide))
        }
    }
}

fn find_proc(program: &Program, name: &str) -> Option<ProcId> {
    program.procs().find(|&p| program.proc_name(p) == name)
}

fn dispatch(shared: &Shared, env: &Envelope, guard: &Guard) -> (String, Status) {
    let id = env.id;
    // The dispatch checkpoint: a panic here unwinds into the caller's
    // containment; a budget/deadline trip degrades the response.
    if let Err(interrupt) = guard.checkpoint("serve.dispatch") {
        return degraded_before_work(shared, env, interrupt);
    }
    match &env.request {
        Request::Open {
            session,
            program,
            lazy,
        } => open_session(shared, id, session, program, *lazy, guard),
        Request::Edit { session, script } => {
            with_session(shared, id, "edit", session, guard, |slot| {
                edit_session(shared, env, guard, session, slot, script)
            })
        }
        Request::Query { session, target } => {
            with_session(shared, id, "query", session, guard, |slot| {
                query_session(env, guard, session, slot, target)
            })
        }
        Request::Close { session } => close_session(shared, id, session),
        Request::Stats => {
            let snap = snapshot(shared);
            (resp_stats(id, &snap), Status::Ok)
        }
    }
}

/// A guard trip before any session work: queries still answer with the
/// conservative widening, everything else degrades plainly.
fn degraded_before_work(shared: &Shared, env: &Envelope, interrupt: Interrupt) -> (String, Status) {
    let reason = interrupt.to_string();
    if let Request::Query { session, target } = &env.request {
        if let Some(slot) = live_slot(shared, session) {
            let guard = relock(&slot);
            if let Some(report) = conservative_report(guard.engine.program(), target) {
                return (
                    resp_query(env.id, session, Some(&reason), &report),
                    Status::Degraded,
                );
            }
        }
    }
    (
        resp_degraded_plain(env.id, env.request.op_name(), env.request.session(), &reason),
        Status::Degraded,
    )
}

/// Why the table could not take one more live session.
enum CapacityError {
    /// Eviction is off and the cap is hit — the PR 7 hard error.
    HardLimit(usize),
    /// Eviction is on but impossible right now (every session busy, or
    /// an injected `serve.evict` fault); retry after the hint.
    Overloaded(&'static str),
}

fn capacity_reply(shared: &Shared, id: u64, err: CapacityError) -> (String, Status) {
    match err {
        CapacityError::HardLimit(live) => (
            resp_error(
                Some(id),
                &format!(
                    "session limit reached ({live} open, max {})",
                    shared.cfg.max_sessions
                ),
            ),
            Status::Error,
        ),
        CapacityError::Overloaded(reason) => (
            resp_overloaded(Some(id), shared.cfg.retry_after_ms, reason),
            Status::Overloaded,
        ),
    }
}

/// Makes room for one more live session, parking the least-recently-used
/// idle one if the cap is hit. Runs under the table lock. A session is
/// idle exactly when the table holds the sole `Arc` to it: every request
/// path clones the `Arc` under this same lock before touching the
/// session, so sole-ownership here proves nobody is in (or can get into)
/// the engine we are about to drop.
fn ensure_capacity(
    shared: &Shared,
    sessions: &mut HashMap<String, Slot>,
    guard: &Guard,
) -> Result<(), CapacityError> {
    let live_count = sessions
        .values()
        .filter(|s| matches!(s, Slot::Live { .. }))
        .count();
    if live_count < shared.cfg.max_sessions {
        return Ok(());
    }
    if !shared.cfg.evict {
        return Err(CapacityError::HardLimit(live_count));
    }
    // The eviction fault site; a panic here is contained to an
    // `overloaded` refusal (nothing parked, nothing lost).
    match catch_unwind(AssertUnwindSafe(|| guard.checkpoint("serve.evict"))) {
        Ok(Ok(())) => {}
        Ok(Err(_)) | Err(_) => {
            return Err(CapacityError::Overloaded("eviction unavailable under fault"))
        }
    }
    let mut victim: Option<(String, u64)> = None;
    for (name, slot) in sessions.iter() {
        if let Slot::Live { session, last_used } = slot {
            if Arc::strong_count(session) == 1
                && victim.as_ref().map_or(true, |(_, t)| last_used < t)
            {
                victim = Some((name.clone(), *last_used));
            }
        }
    }
    let Some((name, _)) = victim else {
        return Err(CapacityError::Overloaded(
            "session table full and every session busy",
        ));
    };
    let Some(Slot::Live { session, .. }) = sessions.remove(&name) else {
        unreachable!("victim vanished under the table lock");
    };
    let mutex = match Arc::try_unwrap(session) {
        Ok(m) => m,
        Err(arc) => {
            // Sole ownership was checked under this lock, so this arm is
            // dead — but if it were ever reached, put the session back
            // rather than orphan an in-flight request.
            sessions.insert(
                name,
                Slot::Live {
                    session: arc,
                    last_used: clock_tick(shared),
                },
            );
            return Err(CapacityError::Overloaded(
                "session table full and every session busy",
            ));
        }
    };
    let mut state = mutex.into_inner().unwrap_or_else(PoisonError::into_inner);
    // Park: make the journal durable (best-effort — a failure just means
    // the parked session is no longer crash-durable, exactly like a live
    // one whose journal died), then drop the engine and keep the text.
    if let Some(j) = state.journal.as_mut() {
        if !state.journal_dead && j.sync().is_err() {
            state.journal_dead = true;
        }
    }
    sessions.insert(
        name,
        Slot::Parked(Parked {
            source: state.source,
            history: state.history,
            edits_applied: state.edits_applied,
            journal_dead: state.journal_dead,
        }),
    );
    let total = shared.counters.evictions.fetch_add(1, Ordering::Relaxed) + 1;
    shared.cfg.trace.counter("incr.serve.evictions", total);
    Ok(())
}

/// Rebuilds a parked session into a live one by replaying its history,
/// under the table lock (resurrections serialize, exactly like opens).
fn resurrect(
    shared: &Shared,
    sessions: &mut HashMap<String, Slot>,
    name: &str,
    id: u64,
    guard: &Guard,
) -> Result<Arc<Mutex<Session>>, (String, Status)> {
    // The recovery fault site; contained to an `overloaded` refusal —
    // the parked slot is untouched and the request can be retried.
    match catch_unwind(AssertUnwindSafe(|| guard.checkpoint("serve.recover"))) {
        Ok(Ok(())) => {}
        Ok(Err(_)) | Err(_) => {
            return Err((
                resp_overloaded(
                    Some(id),
                    shared.cfg.retry_after_ms,
                    "resurrection unavailable under fault",
                ),
                Status::Overloaded,
            ))
        }
    }
    if let Err(e) = ensure_capacity(shared, sessions, guard) {
        return Err(capacity_reply(shared, id, e));
    }
    let parked = match sessions.get(name) {
        Some(Slot::Parked(p)) => p.clone(),
        _ => unreachable!("resurrect called on a non-parked slot"),
    };
    let program = match modref_frontend::parse_program(&parked.source) {
        Ok(p) => p,
        Err(e) => {
            return Err((
                resp_error(
                    Some(id),
                    &format!("session `{name}` cannot be resurrected: parse error: {e}"),
                ),
                Status::Error,
            ))
        }
    };
    let mut analyzer = Analyzer::new();
    analyzer.with_trace(shared.cfg.trace.clone());
    if let Some(t) = shared.cfg.threads {
        analyzer.threads(t);
    }
    let mut engine = AnyQueryEngine::new_full_with(&analyzer, program, shared.cfg.set_repr);
    if let Err(e) = engine.replay_history(parked.history.iter().map(String::as_str)) {
        return Err((
            resp_error(
                Some(id),
                &format!("session `{name}` cannot be resurrected: {e}"),
            ),
            Status::Error,
        ));
    }
    let mut journal_dead = parked.journal_dead;
    let journal = match &shared.cfg.state_dir {
        Some(dir) if !journal_dead => {
            match Journal::append_to(&journal::path_for(dir, name), shared.cfg.fsync) {
                Ok(j) => Some(j),
                Err(_) => {
                    journal_dead = true;
                    None
                }
            }
        }
        _ => None,
    };
    let session = Arc::new(Mutex::new(Session {
        engine,
        edits_applied: parked.edits_applied,
        source: parked.source,
        history: parked.history,
        journal,
        journal_dead,
    }));
    sessions.insert(
        name.to_owned(),
        Slot::Live {
            session: Arc::clone(&session),
            last_used: clock_tick(shared),
        },
    );
    let total = shared.counters.recoveries.fetch_add(1, Ordering::Relaxed) + 1;
    shared.cfg.trace.counter("incr.serve.recoveries", total);
    Ok(session)
}

/// Creates the journal for a freshly opened session and writes its
/// snapshot record, with the `serve.journal.*` fault sites armed and
/// panics contained.
fn open_fresh_journal(
    shared: &Shared,
    dir: &std::path::Path,
    session: &str,
    source: &str,
    guard: &Guard,
) -> Result<Journal, String> {
    let contained = catch_unwind(AssertUnwindSafe(|| -> Result<Journal, String> {
        let mut j = Journal::create(dir, session, shared.cfg.fsync)
            .map_err(|e| format!("journal create failed: {e}"))?;
        guard
            .checkpoint("serve.journal.append")
            .map_err(|i| format!("journal append interrupted: {i}"))?;
        let n = j
            .append(&JournalRecord::Snapshot {
                session: session.to_owned(),
                program: source.to_owned(),
            })
            .map_err(|e| format!("journal append failed: {e}"))?;
        add_journal_bytes(shared, n);
        guard
            .checkpoint("serve.journal.fsync")
            .map_err(|i| format!("journal fsync interrupted: {i}"))?;
        j.commit().map_err(|e| format!("journal fsync failed: {e}"))?;
        Ok(j)
    }));
    match contained {
        Ok(r) => r,
        Err(p) => Err(format!(
            "panic during journal write: {}",
            panic_message(p.as_ref())
        )),
    }
}

/// Appends one applied edit line to the session's journal. Any failure —
/// guard fault, I/O error, contained panic — latches `journal_dead`:
/// the journal on disk stays a strict prefix of the applied history and
/// is never appended to again.
fn journal_edit(
    shared: &Shared,
    guard: &Guard,
    state: &mut Session,
    line: &str,
) -> Result<(), String> {
    if state.journal_dead {
        return Err("session is no longer durable (its journal failed earlier)".to_owned());
    }
    let Some(jrnl) = state.journal.as_mut() else {
        return Ok(());
    };
    let rec = JournalRecord::Edit {
        line: line.to_owned(),
    };
    let contained = catch_unwind(AssertUnwindSafe(|| -> Result<(), String> {
        guard
            .checkpoint("serve.journal.append")
            .map_err(|i| format!("journal append interrupted: {i}"))?;
        let n = jrnl
            .append(&rec)
            .map_err(|e| format!("journal append failed: {e}"))?;
        add_journal_bytes(shared, n);
        guard
            .checkpoint("serve.journal.fsync")
            .map_err(|i| format!("journal fsync interrupted: {i}"))?;
        jrnl.commit()
            .map_err(|e| format!("journal fsync failed: {e}"))?;
        Ok(())
    }));
    let res = match contained {
        Ok(r) => r,
        Err(p) => Err(format!(
            "panic during journal append: {}",
            panic_message(p.as_ref())
        )),
    };
    if res.is_err() {
        state.journal_dead = true;
    }
    res
}

fn open_session(
    shared: &Shared,
    id: u64,
    session: &str,
    source: &str,
    lazy: bool,
    guard: &Guard,
) -> (String, Status) {
    let program = match modref_frontend::parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            return (
                resp_error(Some(id), &format!("parse error: {e}")),
                Status::Error,
            )
        }
    };
    // Check-then-insert under one lock so two racing opens of the same
    // name (or the last two slots) resolve consistently.
    let mut sessions = relock(&shared.sessions);
    match sessions.get(session) {
        Some(Slot::Live { .. }) => {
            return (
                resp_error(Some(id), &format!("session `{session}` is already open")),
                Status::Error,
            )
        }
        Some(Slot::Parked(p)) => {
            // Transparent resurrection: re-opening a parked session with
            // the identical program text revives it, history included.
            if p.source != source {
                return (
                    resp_error(
                        Some(id),
                        &format!(
                            "session `{session}` is already open (parked with different \
                             program text)"
                        ),
                    ),
                    Status::Error,
                );
            }
            return match resurrect(shared, &mut sessions, session, id, guard) {
                Ok(slot) => resurrected_open_reply(id, session, &slot),
                Err(pair) => pair,
            };
        }
        None => {}
    }
    if let Err(e) = ensure_capacity(shared, &mut sessions, guard) {
        return capacity_reply(shared, id, e);
    }
    // A journal on disk but not in the table (startup recovery skipped
    // it under a fault): recover it now if the offered program matches.
    if let Some(dir) = &shared.cfg.state_dir {
        let path = journal::path_for(dir, session);
        if path.exists() {
            match recover_file(&path, shared.cfg.threads, &shared.cfg.trace, shared.cfg.fsync) {
                Ok((rs, _truncated)) if rs.source == source => {
                    add_journal_bytes(shared, rs.bytes);
                    let slot = Arc::new(Mutex::new(Session {
                        engine: AnyQueryEngine::from_dense_full(rs.engine),
                        edits_applied: rs.edits_applied,
                        source: rs.source,
                        history: rs.history,
                        journal: Some(rs.journal),
                        journal_dead: false,
                    }));
                    sessions.insert(
                        session.to_owned(),
                        Slot::Live {
                            session: Arc::clone(&slot),
                            last_used: clock_tick(shared),
                        },
                    );
                    let total = shared.counters.recoveries.fetch_add(1, Ordering::Relaxed) + 1;
                    shared.cfg.trace.counter("incr.serve.recoveries", total);
                    return resurrected_open_reply(id, session, &slot);
                }
                Ok(_) => {
                    return (
                        resp_error(
                            Some(id),
                            &format!(
                                "session `{session}` has a journal on disk with different \
                                 program text; close it first"
                            ),
                        ),
                        Status::Error,
                    )
                }
                Err(_) => {
                    // Untrusted journal: quarantine it and open fresh.
                    quarantine(&path);
                }
            }
        }
    }
    // The initial full analysis runs inside the table lock: opens are
    // rare and bounded, and it keeps "name reserved" and "engine ready"
    // one atomic step. A lazy open skips the analysis entirely — the
    // session holds just the program and an empty demand memo, and the
    // first point query solves only the slice it needs.
    let engine = if lazy {
        AnyQueryEngine::new_lazy_with(
            program,
            shared.cfg.threads,
            shared.cfg.trace.clone(),
            shared.cfg.set_repr,
        )
    } else {
        let mut analyzer = Analyzer::new();
        analyzer.with_trace(shared.cfg.trace.clone());
        if let Some(t) = shared.cfg.threads {
            analyzer.threads(t);
        }
        AnyQueryEngine::new_full_with(&analyzer, program, shared.cfg.set_repr)
    };
    let (procs, sites, vars) = {
        let p = engine.program();
        (p.num_procs(), p.num_sites(), p.num_vars())
    };
    let mut jrnl = None;
    let mut degraded_note = None;
    if let Some(dir) = shared.cfg.state_dir.clone() {
        match open_fresh_journal(shared, &dir, session, source, guard) {
            Ok(j) => jrnl = Some(j),
            Err(reason) => {
                degraded_note = Some(format!("session opened without durability: {reason}"));
            }
        }
    }
    let journal_dead = shared.cfg.state_dir.is_some() && jrnl.is_none();
    sessions.insert(
        session.to_owned(),
        Slot::Live {
            session: Arc::new(Mutex::new(Session {
                engine,
                edits_applied: 0,
                source: source.to_owned(),
                history: Vec::new(),
                journal: jrnl,
                journal_dead,
            })),
            last_used: clock_tick(shared),
        },
    );
    match degraded_note {
        None => (
            resp_open(id, session, procs, sites, vars, false, None),
            Status::Ok,
        ),
        Some(note) => (
            resp_open(id, session, procs, sites, vars, false, Some(&note)),
            Status::Degraded,
        ),
    }
}

/// The `open` response for a session that was resurrected rather than
/// analysed fresh.
fn resurrected_open_reply(
    id: u64,
    session: &str,
    slot: &Arc<Mutex<Session>>,
) -> (String, Status) {
    let state = relock(slot);
    let p = state.engine.program();
    let (procs, sites, vars) = (p.num_procs(), p.num_sites(), p.num_vars());
    let dead = state.journal_dead;
    drop(state);
    if dead {
        (
            resp_open(
                id,
                session,
                procs,
                sites,
                vars,
                true,
                Some("session is not durable (its journal failed)"),
            ),
            Status::Degraded,
        )
    } else {
        (
            resp_open(id, session, procs, sites, vars, true, None),
            Status::Ok,
        )
    }
}

fn close_session(shared: &Shared, id: u64, session: &str) -> (String, Status) {
    let removed = relock(&shared.sessions).remove(session);
    match removed {
        Some(slot) => {
            // Dropping the slot closes any journal fd before the unlink.
            drop(slot);
            if let Some(dir) = &shared.cfg.state_dir {
                let _ = std::fs::remove_file(journal::path_for(dir, session));
            }
            (resp_close(id, session), Status::Ok)
        }
        None => {
            // A journal on disk but not in the table (skipped during a
            // faulted recovery): `close` still disposes of it.
            if let Some(dir) = &shared.cfg.state_dir {
                let path = journal::path_for(dir, session);
                if path.exists() {
                    let _ = std::fs::remove_file(&path);
                    return (resp_close(id, session), Status::Ok);
                }
            }
            (
                resp_error(Some(id), &format!("unknown session `{session}`")),
                Status::Error,
            )
        }
    }
}

/// Resolves `session` and runs `body` with its live slot, bumping the
/// LRU stamp; a parked session is transparently resurrected first.
/// Unknown names are error responses (never dropped connections).
fn with_session<F>(
    shared: &Shared,
    id: u64,
    op: &str,
    session: &str,
    guard: &Guard,
    body: F,
) -> (String, Status)
where
    F: FnOnce(&Arc<Mutex<Session>>) -> (String, Status),
{
    let mut sessions = relock(&shared.sessions);
    let parked = matches!(sessions.get(session), Some(Slot::Parked(_)));
    let slot = if parked {
        match resurrect(shared, &mut sessions, session, id, guard) {
            Ok(slot) => slot,
            Err(pair) => return pair,
        }
    } else {
        match sessions.get_mut(session) {
            Some(Slot::Live {
                session: arc,
                last_used,
            }) => {
                *last_used = shared.use_clock.fetch_add(1, Ordering::Relaxed);
                Arc::clone(arc)
            }
            _ => {
                return (
                    resp_error(Some(id), &format!("unknown session `{session}` (op {op})")),
                    Status::Error,
                )
            }
        }
    };
    drop(sessions);
    body(&slot)
}

fn edit_session(
    shared: &Shared,
    env: &Envelope,
    guard: &Guard,
    session: &str,
    slot: &Arc<Mutex<Session>>,
    script_text: &str,
) -> (String, Status) {
    let id = env.id;
    let script = match Script::parse(script_text) {
        Ok(s) => s,
        Err(e) => return (resp_error(Some(id), &e.to_string()), Status::Error),
    };
    let mut state = relock(slot);
    // The session checkpoint runs with the lock held but before the
    // engine is touched: an injected panic here leaves the engine intact
    // for the conservative-query fallback.
    if let Err(interrupt) = guard.checkpoint("serve.session") {
        drop(state);
        return degraded_before_work(shared, env, interrupt);
    }
    let mut applied = 0usize;
    for step in script.steps() {
        let edit = match step.resolve(state.engine.program()) {
            Ok(e) => e,
            Err(e) => {
                return (
                    resp_error(Some(id), &format!("{e} ({applied} steps applied)")),
                    Status::Error,
                )
            }
        };
        let outcome = match state.engine.apply_guarded(&edit, guard) {
            Err(e) => {
                return (
                    resp_error(
                        Some(id),
                        &format!(
                            "script line {}: edit rejected: {e} ({applied} steps applied)",
                            step.line
                        ),
                    ),
                    Status::Error,
                )
            }
            Ok(outcome) => outcome,
        };
        // The edit is committed to the program (even a degraded apply):
        // record it in the history and the journal before anything else
        // can happen to this session.
        applied += 1;
        state.edits_applied += 1;
        let line = script_text
            .lines()
            .nth(step.line - 1)
            .unwrap_or_default()
            .to_owned();
        state.history.push(line.clone());
        let journaled = journal_edit(shared, guard, &mut state, &line);
        match outcome {
            IncrOutcome::Clean(_) => {
                if let Err(reason) = journaled {
                    // Applied, but durability is gone: say so and stop —
                    // the client knows exactly which prefix is on disk.
                    return (
                        resp_edit(
                            id,
                            session,
                            applied,
                            Some(&format!("applied but no longer durable: {reason}")),
                        ),
                        Status::Degraded,
                    );
                }
            }
            IncrOutcome::Degraded { reason } => {
                // The edit is in the program; the results are the sound
                // widened fallback until the next clean apply rebuilds.
                let mut reason = reason.to_string();
                if let Err(jr) = journaled {
                    reason.push_str(&format!("; also: {jr}"));
                }
                return (
                    resp_edit(id, session, applied, Some(&reason)),
                    Status::Degraded,
                );
            }
        }
    }
    (resp_edit(id, session, applied, None), Status::Ok)
}

fn query_session(
    env: &Envelope,
    guard: &Guard,
    session: &str,
    slot: &Arc<Mutex<Session>>,
    target: &crate::proto::QueryTarget,
) -> (String, Status) {
    use crate::proto::QueryTarget;
    let id = env.id;
    let mut state = relock(slot);
    if let Err(interrupt) = guard.checkpoint("serve.session") {
        let reason = interrupt.to_string();
        let program = state.engine.program();
        return match conservative_report(program, target) {
            Some(report) => (
                resp_query(id, session, Some(&reason), &report),
                Status::Degraded,
            ),
            None => (
                resp_error(Some(id), &bad_target_message(program, target)),
                Status::Error,
            ),
        };
    }
    // Point queries go through the query engine: a Full session reads
    // its cache, a lazy session resolves the slice on demand (and may
    // answer degraded *for this query only* if the guard trips mid-walk).
    // `target=all` promotes a lazy session to Full first.
    let (report, note): (String, Option<String>) = match target {
        QueryTarget::All => {
            let sets = state.engine.all_sets();
            let note = state
                .engine
                .holds_degraded()
                .then(|| "session holds degraded (sound, widened) results".to_owned());
            (render_json(state.engine.program(), &sets), note)
        }
        QueryTarget::Site(n) => {
            if *n >= state.engine.program().num_sites() {
                return (
                    resp_error(
                        Some(id),
                        &bad_target_message(state.engine.program(), target),
                    ),
                    Status::Error,
                );
            }
            let s = CallSiteId::new(*n);
            let out = state.engine.site_answer(s, guard);
            let a = out.answer;
            let report = render_json_site_answer(
                state.engine.program(),
                s,
                &a.mods,
                &a.uses,
                &a.dmod,
            );
            (report, out.degraded)
        }
        QueryTarget::Proc(name) => match find_proc(state.engine.program(), name) {
            Some(p) => {
                let out = state.engine.proc_answer(p, guard);
                let a = out.answer;
                let report =
                    render_json_proc(state.engine.program(), name, &a.gmod, &a.guse);
                (report, out.degraded)
            }
            None => {
                return (
                    resp_error(
                        Some(id),
                        &bad_target_message(state.engine.program(), target),
                    ),
                    Status::Error,
                )
            }
        },
    };
    match note {
        Some(reason) => (
            resp_query(id, session, Some(&reason), &report),
            Status::Degraded,
        ),
        None => (resp_query(id, session, None, &report), Status::Ok),
    }
}

fn bad_target_message(program: &Program, target: &crate::proto::QueryTarget) -> String {
    use crate::proto::QueryTarget;
    match target {
        QueryTarget::All => unreachable!("`all` always resolves"),
        QueryTarget::Site(n) => format!(
            "call site {n} out of range (program has {})",
            program.num_sites()
        ),
        QueryTarget::Proc(name) => format!("unknown procedure `{name}`"),
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let c = &shared.counters;
    let (live, parked) = {
        let sessions = relock(&shared.sessions);
        sessions.values().fold((0, 0), |(l, p), slot| match slot {
            Slot::Live { .. } => (l + 1, p),
            Slot::Parked(_) => (l, p + 1),
        })
    };
    StatsSnapshot {
        sessions: live,
        parked,
        connections: c.connections.load(Ordering::Relaxed),
        requests: c.requests.load(Ordering::Relaxed),
        ok: c.ok.load(Ordering::Relaxed),
        degraded: c.degraded.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        evictions: c.evictions.load(Ordering::Relaxed),
        recoveries: c.recoveries.load(Ordering::Relaxed),
        shed: c.shed.load(Ordering::Relaxed),
        journal_bytes: c.journal_bytes.load(Ordering::Relaxed),
        latency_total_us: c.latency_total_us.load(Ordering::Relaxed),
        latency_max_us: c.latency_max_us.load(Ordering::Relaxed),
        per_op: std::array::from_fn(|i| c.per_op[i].load(Ordering::Relaxed)),
    }
}
