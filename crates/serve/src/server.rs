//! The daemon: session table, per-connection frame loops, guarded
//! request dispatch, and server-wide counters.
//!
//! One [`IncrementalEngine`] per session, each behind its own lock, so
//! requests against different sessions run concurrently (one connection
//! per client thread, any number of sessions per connection) while
//! requests against the same session serialize. Every request runs under
//! its own [`Guard`] — the server's configured budget/deadline defaults,
//! tightened or replaced by the request's `budget_ops`/`timeout_ms`
//! fields — so a pathological request degrades *that response* (status
//! `"degraded"`, sound widened sets) instead of starving sibling
//! sessions. Contained panics (injected via the `serve.accept`,
//! `serve.dispatch`, and `serve.session` fault sites, or real bugs)
//! follow the same ladder; see `docs/SERVER.md` for the exact contract.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modref_bitset::BitSet;
use modref_core::Analyzer;
use modref_guard::{Budget, FaultPlan, Guard, Interrupt};
use modref_incr::render::{render_json, render_json_site, SiteSets};
use modref_incr::{IncrOutcome, IncrementalEngine, IncrementalExt, Script};
use modref_ir::{CallSiteId, ProcId, Program, VarId};
use modref_trace::{escape_json, Trace};

use crate::frame::{read_frame, write_frame, FrameError};
use crate::proto::{
    resp_close, resp_edit, resp_error, resp_open, resp_query, resp_stats, Envelope, Request,
    Status, StatsSnapshot,
};

/// Server-wide configuration, fixed at bind time.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Cap on concurrently open sessions; `open` past it is an error
    /// response (never a dropped connection).
    pub max_sessions: usize,
    /// Default per-request op budget (the CLI's `--request-budget-ops`).
    pub request_budget_ops: Option<u64>,
    /// Default per-request wall-clock deadline in milliseconds
    /// (`--request-timeout-ms`).
    pub request_timeout_ms: Option<u64>,
    /// Worker-thread count for each session's pooled solver phases
    /// (`modref-par` semantics: `None` defers to `MODREF_THREADS`).
    pub threads: Option<usize>,
    /// Fault plan armed on request guards. The CLI arms this from
    /// `MODREF_FAULT` like every other guarded entry point; in-process
    /// tests pin plans explicitly. Never armed implicitly.
    pub faults: Option<FaultPlan>,
    /// When set, [`ServerConfig::faults`] arms only for requests
    /// addressed to this session — the hook the fault suite uses to
    /// poison one session while its siblings stay healthy. (The
    /// pre-session `serve.accept` site is armed only when this is
    /// `None`.)
    pub fault_session: Option<String>,
    /// Trace sink; every request records an `incr.serve` span into it.
    pub trace: Trace,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_sessions: 64,
            request_budget_ops: None,
            request_timeout_ms: None,
            threads: None,
            faults: None,
            fault_session: None,
            trace: Trace::disabled(),
        }
    }
}

/// One open session: the engine plus bookkeeping.
struct Session {
    engine: IncrementalEngine,
    /// Edits applied since `open` (including degraded applies).
    edits_applied: u64,
}

/// Monotone counters, updated lock-free from every handler thread.
#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    ok: AtomicU64,
    degraded: AtomicU64,
    errors: AtomicU64,
    latency_total_us: AtomicU64,
    latency_max_us: AtomicU64,
    per_op: [AtomicU64; 5],
}

fn op_slot(op: &str) -> usize {
    match op {
        "open" => 0,
        "edit" => 1,
        "query" => 2,
        "close" => 3,
        _ => 4,
    }
}

struct Shared {
    cfg: ServerConfig,
    sessions: Mutex<HashMap<String, Arc<Mutex<Session>>>>,
    counters: Counters,
    stop: AtomicBool,
    /// Clones of live connection streams keyed by connection id,
    /// force-closed on shutdown so blocked frame reads drain promptly.
    /// Each handler removes its own entry on exit, so the table tracks
    /// *live* connections, not connection history.
    conns: Mutex<HashMap<u64, TcpStream>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

/// Poison-tolerant lock: a handler that panicked at a `serve.*`
/// checkpoint did so *before* touching the engine (and the engine's own
/// apply path contains its panics), so the data under a poisoned lock is
/// always coherent.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A handle to a server running on a background thread. Dropping the
/// handle shuts the server down (idempotent with [`ServerHandle::shutdown`]).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port; see
    /// [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// The bind failure, untouched.
    pub fn bind(addr: SocketAddr, cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            shared: Arc::new(Shared {
                cfg,
                sessions: Mutex::new(HashMap::new()),
                counters: Counters::default(),
                stop: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
                workers: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The actually bound address (resolves a requested port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop on the current thread until shut down (the
    /// CLI `serve` verb's mode — it never returns in normal operation).
    /// Each connection gets its own handler thread; a handler panic is
    /// contained to its connection.
    pub fn run(self) {
        let shared = self.shared;
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(_) => {
                    if shared.stop.load(Ordering::Acquire) {
                        break;
                    }
                    continue;
                }
            };
            if shared.stop.load(Ordering::Acquire) {
                break;
            }
            let conn_id = shared.counters.connections.fetch_add(1, Ordering::Relaxed);
            if let Ok(clone) = stream.try_clone() {
                relock(&shared.conns).insert(conn_id, clone);
            }
            let conn_shared = Arc::clone(&shared);
            let worker = std::thread::spawn(move || {
                // The inner catch_unwind paths keep panics per-request;
                // this outer one keeps any residue per-connection.
                let mut stream = stream;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    handle_connection(&conn_shared, &mut stream);
                }));
                // The clone in `conns` keeps the socket open past this
                // fd's drop — shut the connection down explicitly (the
                // peer gets EOF even after a contained panic) and drop
                // the clone so the table only holds live connections.
                let _ = stream.shutdown(std::net::Shutdown::Both);
                relock(&conn_shared.conns).remove(&conn_id);
                let _ = result;
            });
            // Reap finished handlers so a long-lived daemon's worker
            // table is bounded by live connections, not history.
            let mut workers = relock(&shared.workers);
            workers.retain(|w| !w.is_finished());
            workers.push(worker);
        }
    }

    /// Runs the accept loop on a background thread and returns the
    /// controlling handle (the in-process test mode).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let accept = std::thread::spawn(move || self.run());
        ServerHandle {
            addr,
            shared,
            accept: Some(accept),
        }
    }
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, force-closes live connections, and joins every
    /// handler thread. Sessions (and their engines) are dropped with the
    /// server.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept; the no-op connection is absorbed by
        // the stop check at the top of the loop.
        let _ = TcpStream::connect(self.addr);
        for (_, conn) in relock(&self.shared.conns).drain() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        let _ = accept.join();
        let workers: Vec<JoinHandle<()>> = relock(&self.shared.workers).drain(..).collect();
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Builds the per-request guard: request overrides beat server defaults;
/// the fault plan arms only when the config says so (and, with a
/// `fault_session` filter, only for that session's requests).
fn request_guard(cfg: &ServerConfig, env: &Envelope) -> Guard {
    let mut budget = Budget::unlimited();
    if let Some(ms) = env.timeout_ms.or(cfg.request_timeout_ms) {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = env.budget_ops.or(cfg.request_budget_ops) {
        budget = budget.with_ops(n);
    }
    let mut guard = Guard::new(&budget);
    if let Some(plan) = &cfg.faults {
        let armed = match &cfg.fault_session {
            None => true,
            Some(target) => env.request.session() == Some(target.as_str()),
        };
        if armed {
            guard = guard.with_faults(plan.clone());
        }
    }
    guard
}

/// The guard a fresh connection's `serve.accept` checkpoint runs under.
/// Faults only arm here when they are unfiltered — the accept site
/// belongs to no session.
fn accept_guard(cfg: &ServerConfig) -> Guard {
    let mut guard = Guard::unlimited();
    if cfg.fault_session.is_none() {
        if let Some(plan) = &cfg.faults {
            guard = guard.with_faults(plan.clone());
        }
    }
    guard
}

fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    // A panic injected at `serve.accept` is contained by the caller's
    // catch_unwind: this connection dies (the client sees EOF), the
    // accept loop and every other connection keep going.
    if accept_guard(&shared.cfg).checkpoint("serve.accept").is_err() {
        return;
    }
    loop {
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        match read_frame(stream) {
            Ok(None) => return,
            Ok(Some(payload)) => {
                let reply = handle_frame(shared, &payload);
                if write_frame(stream, reply.as_bytes()).is_err() {
                    // Client went away mid-request. Session state is
                    // already committed; the next connection can reuse it.
                    return;
                }
            }
            Err(err) => {
                // Frame-level failure: the stream is unsynchronised.
                // Say why (typed, with a null id), then close.
                let reply = resp_error(None, &format!("frame: {err}"));
                let _ = write_frame(stream, reply.as_bytes());
                if !matches!(err, FrameError::Io(_)) {
                    shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
    }
}

/// Parses, dispatches, and accounts one request. Always produces exactly
/// one response frame payload.
fn handle_frame(shared: &Shared, payload: &[u8]) -> String {
    let t0 = Instant::now();
    let counters = &shared.counters;
    let env = match Envelope::parse(payload) {
        Ok(env) => env,
        Err(e) => {
            counters.requests.fetch_add(1, Ordering::Relaxed);
            counters.errors.fetch_add(1, Ordering::Relaxed);
            return resp_error(e.id, &e.message);
        }
    };
    counters.requests.fetch_add(1, Ordering::Relaxed);
    let op = env.request.op_name();
    counters.per_op[op_slot(op)].fetch_add(1, Ordering::Relaxed);

    let mut span = shared.cfg.trace.span("incr.serve");
    span.note("op", op);
    if let Some(s) = env.request.session() {
        span.note("session", s);
    }

    let guard = request_guard(&shared.cfg, &env);
    let (reply, status) =
        match catch_unwind(AssertUnwindSafe(|| dispatch(shared, &env, &guard))) {
            Ok(pair) => pair,
            Err(panic) => panic_fallback(shared, &env, panic.as_ref()),
        };
    span.note("status", status.as_str());

    match status {
        Status::Ok => counters.ok.fetch_add(1, Ordering::Relaxed),
        Status::Degraded => counters.degraded.fetch_add(1, Ordering::Relaxed),
        Status::Error => counters.errors.fetch_add(1, Ordering::Relaxed),
    };
    let us = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
    counters.latency_total_us.fetch_add(us, Ordering::Relaxed);
    counters.latency_max_us.fetch_max(us, Ordering::Relaxed);
    span.arg("latency_us", us);
    reply
}

/// `{"id":…,"status":"degraded",…}` for ops that carry no report.
fn resp_degraded_plain(id: u64, op: &str, session: Option<&str>, reason: &str) -> String {
    let session = session.map_or_else(String::new, |s| {
        format!(",\"session\":\"{}\"", escape_json(s))
    });
    format!(
        "{{\"id\":{id},\"status\":\"degraded\",\"op\":\"{op}\"{session},\"reason\":\"{}\"}}",
        escape_json(reason)
    )
}

/// The response when dispatch itself panicked (an injected `serve.*`
/// fault or a real bug outside the engine's own containment). Queries
/// still answer — with the sound conservative widening — so a poisoned
/// session degrades instead of going dark; everything else reports
/// `degraded` with the panic text.
fn panic_fallback(
    shared: &Shared,
    env: &Envelope,
    panic: &(dyn std::any::Any + Send),
) -> (String, Status) {
    let reason = format!("panic during request: {}", panic_message(panic));
    if let Request::Query { session, target } = &env.request {
        if let Some(slot) = relock(&shared.sessions).get(session).cloned() {
            let guard = relock(&slot);
            let report = conservative_report(guard.engine.program(), target);
            drop(guard);
            if let Some(report) = report {
                return (
                    resp_query(env.id, session, Some(&reason), &report),
                    Status::Degraded,
                );
            }
        }
    }
    (
        resp_degraded_plain(env.id, env.request.op_name(), env.request.session(), &reason),
        Status::Degraded,
    )
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Renders the sound widened report for `target`, or `None` when the
/// target does not resolve (out-of-range site, unknown procedure) — the
/// caller turns that into a plain degraded response.
fn conservative_report(program: &Program, target: &crate::proto::QueryTarget) -> Option<String> {
    use crate::proto::QueryTarget;
    match target {
        QueryTarget::All => Some(render_json(program, &SiteSets::conservative(program))),
        QueryTarget::Site(n) => {
            if *n >= program.num_sites() {
                return None;
            }
            Some(render_json_site(
                program,
                &SiteSets::conservative(program),
                CallSiteId::new(*n),
            ))
        }
        QueryTarget::Proc(name) => {
            let p = find_proc(program, name)?;
            let wide = program.visible_set(p);
            Some(render_proc(program, name, &wide, &wide))
        }
    }
}

fn find_proc(program: &Program, name: &str) -> Option<ProcId> {
    program.procs().find(|&p| program.proc_name(p) == name)
}

/// `{"proc":…,"gmod":[…],"guse":[…]}` with the same sorted-quoted-name
/// arrays the site report uses.
fn render_proc(
    program: &Program,
    name: &str,
    gmod: &BitSet,
    guse: &BitSet,
) -> String {
    let names = |set: &BitSet| -> String {
        let mut parts: Vec<String> = set
            .iter()
            .map(|i| format!("\"{}\"", escape_json(program.var_name(VarId::new(i)))))
            .collect();
        parts.sort();
        format!("[{}]", parts.join(","))
    };
    format!(
        "{{\"proc\":\"{}\",\"gmod\":{},\"guse\":{}}}\n",
        escape_json(name),
        names(gmod),
        names(guse)
    )
}

fn dispatch(shared: &Shared, env: &Envelope, guard: &Guard) -> (String, Status) {
    let id = env.id;
    // The dispatch checkpoint: a panic here unwinds into the caller's
    // containment; a budget/deadline trip degrades the response.
    if let Err(interrupt) = guard.checkpoint("serve.dispatch") {
        return degraded_before_work(shared, env, interrupt);
    }
    match &env.request {
        Request::Open { session, program } => open_session(shared, id, session, program),
        Request::Edit { session, script } => {
            with_session(shared, id, "edit", session, |slot| {
                edit_session(shared, env, guard, session, slot, script)
            })
        }
        Request::Query { session, target } => {
            with_session(shared, id, "query", session, |slot| {
                query_session(env, guard, session, slot, target)
            })
        }
        Request::Close { session } => {
            let removed = relock(&shared.sessions).remove(session);
            match removed {
                Some(_) => (resp_close(id, session), Status::Ok),
                None => (
                    resp_error(Some(id), &format!("unknown session `{session}`")),
                    Status::Error,
                ),
            }
        }
        Request::Stats => {
            let snap = snapshot(shared);
            (resp_stats(id, &snap), Status::Ok)
        }
    }
}

/// A guard trip before any session work: queries still answer with the
/// conservative widening, everything else degrades plainly.
fn degraded_before_work(shared: &Shared, env: &Envelope, interrupt: Interrupt) -> (String, Status) {
    let reason = interrupt.to_string();
    if let Request::Query { session, target } = &env.request {
        if let Some(slot) = relock(&shared.sessions).get(session).cloned() {
            let guard = relock(&slot);
            if let Some(report) = conservative_report(guard.engine.program(), target) {
                return (
                    resp_query(env.id, session, Some(&reason), &report),
                    Status::Degraded,
                );
            }
        }
    }
    (
        resp_degraded_plain(env.id, env.request.op_name(), env.request.session(), &reason),
        Status::Degraded,
    )
}

fn open_session(shared: &Shared, id: u64, session: &str, source: &str) -> (String, Status) {
    let program = match modref_frontend::parse_program(source) {
        Ok(p) => p,
        Err(e) => {
            return (
                resp_error(Some(id), &format!("parse error: {e}")),
                Status::Error,
            )
        }
    };
    // Check-then-insert under one lock so two racing opens of the same
    // name (or the last two slots) resolve consistently.
    let mut sessions = relock(&shared.sessions);
    if sessions.contains_key(session) {
        return (
            resp_error(Some(id), &format!("session `{session}` is already open")),
            Status::Error,
        );
    }
    if sessions.len() >= shared.cfg.max_sessions {
        return (
            resp_error(
                Some(id),
                &format!(
                    "session limit reached ({} open, max {})",
                    sessions.len(),
                    shared.cfg.max_sessions
                ),
            ),
            Status::Error,
        );
    }
    // The initial full analysis runs inside the table lock: opens are
    // rare and bounded, and it keeps "name reserved" and "engine ready"
    // one atomic step.
    let mut analyzer = Analyzer::new();
    analyzer.with_trace(shared.cfg.trace.clone());
    if let Some(t) = shared.cfg.threads {
        analyzer.threads(t);
    }
    let engine = analyzer.incremental(program);
    let (procs, sites, vars) = {
        let p = engine.program();
        (p.num_procs(), p.num_sites(), p.num_vars())
    };
    sessions.insert(
        session.to_owned(),
        Arc::new(Mutex::new(Session {
            engine,
            edits_applied: 0,
        })),
    );
    (resp_open(id, session, procs, sites, vars), Status::Ok)
}

/// Resolves `session` and runs `body` with its slot; unknown names are
/// error responses (never dropped connections).
fn with_session<F>(
    shared: &Shared,
    id: u64,
    op: &str,
    session: &str,
    body: F,
) -> (String, Status)
where
    F: FnOnce(&Arc<Mutex<Session>>) -> (String, Status),
{
    let slot = relock(&shared.sessions).get(session).cloned();
    match slot {
        Some(slot) => body(&slot),
        None => (
            resp_error(Some(id), &format!("unknown session `{session}` (op {op})")),
            Status::Error,
        ),
    }
}

fn edit_session(
    shared: &Shared,
    env: &Envelope,
    guard: &Guard,
    session: &str,
    slot: &Arc<Mutex<Session>>,
    script_text: &str,
) -> (String, Status) {
    let id = env.id;
    let script = match Script::parse(script_text) {
        Ok(s) => s,
        Err(e) => return (resp_error(Some(id), &e.to_string()), Status::Error),
    };
    let mut state = relock(slot);
    // The session checkpoint runs with the lock held but before the
    // engine is touched: an injected panic here leaves the engine intact
    // for the conservative-query fallback.
    if let Err(interrupt) = guard.checkpoint("serve.session") {
        drop(state);
        return degraded_before_work(shared, env, interrupt);
    }
    let mut applied = 0usize;
    for step in script.steps() {
        let edit = match step.resolve(state.engine.program()) {
            Ok(e) => e,
            Err(e) => {
                return (
                    resp_error(Some(id), &format!("{e} ({applied} steps applied)")),
                    Status::Error,
                )
            }
        };
        match state.engine.apply_guarded(&edit, guard) {
            Err(e) => {
                return (
                    resp_error(
                        Some(id),
                        &format!(
                            "script line {}: edit rejected: {e} ({applied} steps applied)",
                            step.line
                        ),
                    ),
                    Status::Error,
                )
            }
            Ok(IncrOutcome::Clean(_)) => {
                applied += 1;
                state.edits_applied += 1;
            }
            Ok(IncrOutcome::Degraded { reason }) => {
                // The edit is in the program; the results are the sound
                // widened fallback until the next clean apply rebuilds.
                applied += 1;
                state.edits_applied += 1;
                return (
                    resp_edit(id, session, applied, Some(&reason.to_string())),
                    Status::Degraded,
                );
            }
        }
    }
    (resp_edit(id, session, applied, None), Status::Ok)
}

fn query_session(
    env: &Envelope,
    guard: &Guard,
    session: &str,
    slot: &Arc<Mutex<Session>>,
    target: &crate::proto::QueryTarget,
) -> (String, Status) {
    use crate::proto::QueryTarget;
    let id = env.id;
    let state = relock(slot);
    let engine = &state.engine;
    let program = engine.program();
    if let Err(interrupt) = guard.checkpoint("serve.session") {
        let reason = interrupt.to_string();
        return match conservative_report(program, target) {
            Some(report) => (
                resp_query(id, session, Some(&reason), &report),
                Status::Degraded,
            ),
            None => (
                resp_error(Some(id), &bad_target_message(program, target)),
                Status::Error,
            ),
        };
    }
    let report = match target {
        QueryTarget::All => render_json(program, &SiteSets::from_engine(engine)),
        QueryTarget::Site(n) => {
            if *n >= program.num_sites() {
                return (
                    resp_error(Some(id), &bad_target_message(program, target)),
                    Status::Error,
                );
            }
            render_json_site(program, &SiteSets::from_engine(engine), CallSiteId::new(*n))
        }
        QueryTarget::Proc(name) => match find_proc(program, name) {
            Some(p) => render_proc(program, name, engine.gmod(p), engine.guse(p)),
            None => {
                return (
                    resp_error(Some(id), &bad_target_message(program, target)),
                    Status::Error,
                )
            }
        },
    };
    // A session whose last apply degraded holds sound widened sets; say
    // so on every answer until a clean apply rebuilds them.
    if state.engine.stats().degraded {
        (
            resp_query(
                id,
                session,
                Some("session holds degraded (sound, widened) results"),
                &report,
            ),
            Status::Degraded,
        )
    } else {
        (resp_query(id, session, None, &report), Status::Ok)
    }
}

fn bad_target_message(program: &Program, target: &crate::proto::QueryTarget) -> String {
    use crate::proto::QueryTarget;
    match target {
        QueryTarget::All => unreachable!("`all` always resolves"),
        QueryTarget::Site(n) => format!(
            "call site {n} out of range (program has {})",
            program.num_sites()
        ),
        QueryTarget::Proc(name) => format!("unknown procedure `{name}`"),
    }
}

fn snapshot(shared: &Shared) -> StatsSnapshot {
    let c = &shared.counters;
    StatsSnapshot {
        sessions: relock(&shared.sessions).len(),
        connections: c.connections.load(Ordering::Relaxed),
        requests: c.requests.load(Ordering::Relaxed),
        ok: c.ok.load(Ordering::Relaxed),
        degraded: c.degraded.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        latency_total_us: c.latency_total_us.load(Ordering::Relaxed),
        latency_max_us: c.latency_max_us.load(Ordering::Relaxed),
        per_op: std::array::from_fn(|i| c.per_op[i].load(Ordering::Relaxed)),
    }
}
