//! Condensation: the acyclic quotient of a graph by its SCCs.

use crate::digraph::DiGraph;
use crate::scc::{SccId, Sccs};

/// The condensation of a [`DiGraph`]: one node per strongly-connected
/// component, one edge per inter-component edge of the original graph
/// (duplicates removed).
///
/// Because [`crate::tarjan`] numbers components in reverse topological
/// order, every edge of the condensation points from a higher id to a lower
/// id; iterating components `0, 1, 2, …` is therefore a leaves-to-roots
/// sweep — exactly step (3) of the paper's Figure 1.
///
/// # Examples
///
/// ```
/// use modref_graph::{tarjan, Condensation, DiGraph};
///
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (1, 2), (2, 3), (0, 2)]);
/// let sccs = tarjan(&g);
/// let cond = Condensation::build(&g, &sccs);
/// assert_eq!(cond.graph().num_nodes(), 3);
/// // {0,1} → {2} appears once even though two original edges induce it.
/// let from = sccs.component_of(0);
/// assert_eq!(cond.graph().out_degree(from), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Condensation {
    graph: DiGraph,
}

impl Condensation {
    /// Builds the condensation of `g` under the component map `sccs`.
    ///
    /// Self-edges (intra-component edges) are dropped and parallel
    /// inter-component edges are deduplicated, so the result is a simple
    /// DAG. Runs in `O(N + E)`.
    pub fn build(g: &DiGraph, sccs: &Sccs) -> Self {
        let k = sccs.len();
        let mut quotient = DiGraph::new(k);
        // Dedup with a per-source stamp: seen[target] == current source
        // means the edge was already added for this source.
        let mut seen: Vec<SccId> = vec![usize::MAX; k];
        for from_comp in 0..k {
            for &v in sccs.members(from_comp) {
                for w in g.successor_nodes(v) {
                    let to_comp = sccs.component_of(w);
                    if to_comp != from_comp && seen[to_comp] != from_comp {
                        seen[to_comp] = from_comp;
                        quotient.add_edge(from_comp, to_comp);
                    }
                }
            }
        }
        Condensation { graph: quotient }
    }

    /// The quotient DAG. Node `c` is component `c` of the input `Sccs`.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scc::tarjan;

    #[test]
    fn condensation_is_acyclic_and_reverse_topo_numbered() {
        let g = DiGraph::from_edges(
            6,
            [
                (0, 1),
                (1, 2),
                (2, 0),
                (2, 3),
                (3, 4),
                (4, 3),
                (4, 5),
                (0, 5),
            ],
        );
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        assert_eq!(cond.graph().num_nodes(), 3);
        for e in cond.graph().edges() {
            assert!(e.to < e.from, "condensation edge {e:?} not reverse-topo");
        }
    }

    #[test]
    fn parallel_and_internal_edges_dropped() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (0, 2), (1, 2), (0, 2)]);
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        assert_eq!(cond.graph().num_nodes(), 2);
        assert_eq!(cond.graph().num_edges(), 1);
    }

    #[test]
    fn empty_graph_condenses_to_empty() {
        let g = DiGraph::new(0);
        let sccs = tarjan(&g);
        assert_eq!(Condensation::build(&g, &sccs).graph().num_nodes(), 0);
    }

    #[test]
    fn two_sources_one_target_keeps_both_edges() {
        let g = DiGraph::from_edges(3, [(1, 0), (2, 0)]);
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        assert_eq!(cond.graph().num_edges(), 2);
    }
}
