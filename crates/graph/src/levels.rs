//! Topological levels of a condensation — the schedule for parallel
//! propagation over an acyclic quotient graph.
//!
//! [`crate::tarjan`] numbers components in reverse topological order, so
//! every edge of a [`Condensation`] points from a higher id to a lower
//! one. The *level* of a component is the length of its longest outgoing
//! path: `0` for sinks (components with no successors), otherwise
//! `1 + max(level of successors)`. Two facts make levels a parallel
//! schedule:
//!
//! * components sharing a level are pairwise independent (an edge between
//!   them would force a level difference), so they can be processed
//!   concurrently;
//! * every successor of a level-`ℓ` component sits at a level `< ℓ`, so a
//!   sinks-first sweep (`0, 1, 2, …`) sees all dependencies finalised —
//!   the parallel analogue of Figure 1's leaves-to-roots order.

use crate::condense::Condensation;
use crate::digraph::DiGraph;
use crate::scc::SccId;

/// The topological levels of a [`Condensation`], built by
/// [`Condensation::levels`].
#[derive(Debug, Clone)]
pub struct Levels {
    level_of: Vec<usize>,
    groups: Vec<Vec<SccId>>,
}

impl Levels {
    /// Computes the levels of any reverse-topologically numbered quotient
    /// DAG (every edge `a → b` with `b < a`) in `O(N + E)`. This is the
    /// computation behind [`Condensation::levels`], exposed for callers —
    /// like [`crate::dyncond::DynCondensation`] — that maintain the
    /// quotient themselves.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if an edge violates the numbering invariant.
    pub fn compute(quotient: &DiGraph) -> Levels {
        let n = quotient.num_nodes();
        let mut level_of = vec![0usize; n];
        let mut deepest = 0usize;
        for c in 0..n {
            let mut level = 0;
            for d in quotient.successor_nodes(c) {
                debug_assert!(d < c, "quotient edge must point to a lower id");
                level = level.max(level_of[d] + 1);
            }
            level_of[c] = level;
            deepest = deepest.max(level);
        }
        let mut groups: Vec<Vec<SccId>> = vec![Vec::new(); if n == 0 { 0 } else { deepest + 1 }];
        for (c, &level) in level_of.iter().enumerate() {
            groups[level].push(c);
        }
        Levels { level_of, groups }
    }

    /// Assembles a `Levels` from precomputed parts. The caller guarantees
    /// consistency: `groups[l]` holds exactly the components with
    /// `level_of == l`, in ascending id order, with no trailing empty
    /// group.
    pub fn from_parts(level_of: Vec<usize>, groups: Vec<Vec<SccId>>) -> Levels {
        debug_assert!(groups
            .iter()
            .enumerate()
            .all(|(l, g)| g.iter().all(|&c| level_of[c] == l)));
        debug_assert!(groups.last().is_none_or(|g| !g.is_empty()));
        Levels { level_of, groups }
    }

    /// The `level_of` map as a slice indexed by component id.
    pub fn level_map(&self) -> &[usize] {
        &self.level_of
    }

    /// Mutable access to `(level_of, groups)` for in-place level repair
    /// by the dynamic condensation. The [`Levels::from_parts`] invariants
    /// must hold again once the repair finishes.
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<usize>, &mut Vec<Vec<SccId>>) {
        (&mut self.level_of, &mut self.groups)
    }

    /// Number of distinct levels (0 for an empty condensation).
    pub fn num_levels(&self) -> usize {
        self.groups.len()
    }

    /// The level of component `c`.
    pub fn level_of(&self, c: SccId) -> usize {
        self.level_of[c]
    }

    /// The components at `level`, in ascending id order.
    pub fn group(&self, level: usize) -> &[SccId] {
        &self.groups[level]
    }

    /// Iterates the groups sinks-first (level 0, 1, 2, …) — the order in
    /// which a dependency-respecting sweep must process them.
    pub fn groups(&self) -> impl ExactSizeIterator<Item = &[SccId]> + '_ {
        self.groups.iter().map(Vec::as_slice)
    }
}

impl Condensation {
    /// Computes the topological levels of this condensation in
    /// `O(N + E)`: ascending component id is reverse topological order,
    /// so every successor's level is final when its predecessor asks.
    pub fn levels(&self) -> Levels {
        Levels::compute(self.graph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use crate::scc::tarjan;

    fn levels_of(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> (Levels, Vec<SccId>) {
        let g = DiGraph::from_edges(n, edges);
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        (cond.levels(), sccs.component_map().to_vec())
    }

    #[test]
    fn chain_gets_one_component_per_level() {
        // 0 → 1 → 2 → 3: four singleton components, levels 3, 2, 1, 0.
        let (levels, comp) = levels_of(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(levels.num_levels(), 4);
        assert_eq!(levels.level_of(comp[3]), 0);
        assert_eq!(levels.level_of(comp[0]), 3);
        for l in 0..4 {
            assert_eq!(levels.group(l).len(), 1);
        }
    }

    #[test]
    fn diamond_places_independent_branches_on_one_level() {
        // 0 → {1, 2} → 3: the middle nodes share a level.
        let (levels, comp) = levels_of(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(levels.num_levels(), 3);
        assert_eq!(levels.level_of(comp[1]), levels.level_of(comp[2]));
        assert_eq!(levels.level_of(comp[3]), 0);
        assert_eq!(levels.level_of(comp[0]), 2);
    }

    #[test]
    fn cycles_collapse_before_levelling() {
        // 0 ⇄ 1 → 2: two components, the cycle above the sink.
        let (levels, comp) = levels_of(3, [(0, 1), (1, 0), (1, 2)]);
        assert_eq!(levels.num_levels(), 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(levels.level_of(comp[0]), 1);
        assert_eq!(levels.level_of(comp[2]), 0);
    }

    #[test]
    fn level_is_longest_path_not_shortest() {
        // 3 → 2 → 1 → 0 and 3 → 0: node 3 must sit at level 3, not 1.
        let (levels, comp) = levels_of(4, [(3, 2), (2, 1), (1, 0), (3, 0)]);
        assert_eq!(levels.level_of(comp[3]), 3);
    }

    #[test]
    fn every_edge_crosses_levels_downward_and_groups_partition() {
        let g = DiGraph::from_edges(
            8,
            [
                (0, 1),
                (1, 2),
                (2, 0), // cycle {0,1,2}
                (2, 3),
                (3, 4),
                (4, 3), // cycle {3,4}
                (1, 5),
                (5, 6),
                (3, 6),
                (6, 7),
            ],
        );
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        let levels = cond.levels();
        for e in cond.graph().edges() {
            assert!(
                levels.level_of(e.to) < levels.level_of(e.from),
                "edge {e:?} does not descend"
            );
        }
        let total: usize = levels.groups().map(<[SccId]>::len).sum();
        assert_eq!(total, sccs.len(), "groups partition the components");
        for (l, group) in levels.groups().enumerate() {
            for &c in group {
                assert_eq!(levels.level_of(c), l);
            }
        }
    }

    #[test]
    fn empty_graph_has_no_levels() {
        let (levels, _) = levels_of(0, []);
        assert_eq!(levels.num_levels(), 0);
        assert_eq!(levels.groups().len(), 0);
    }
}
