//! Topological ordering of DAGs.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use crate::digraph::{DiGraph, NodeId};

/// Error returned by [`topological_order`] when the graph has a cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError {
    /// A node known to lie on a cycle.
    pub witness: NodeId,
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph contains a cycle through node {}", self.witness)
    }
}

impl Error for CycleError {}

/// Computes a topological order of `g` with Kahn's algorithm, `O(N + E)`.
///
/// Parallel edges are handled (each contributes to the in-degree).
///
/// # Errors
///
/// Returns [`CycleError`] if `g` contains a directed cycle (including a
/// self-loop); the witness is a node of minimal id left with nonzero
/// in-degree.
///
/// # Examples
///
/// ```
/// use modref_graph::{topo::topological_order, DiGraph};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = DiGraph::from_edges(3, [(2, 0), (0, 1)]);
/// let order = topological_order(&g)?;
/// assert_eq!(order, vec![2, 0, 1]);
/// # Ok(())
/// # }
/// ```
pub fn topological_order(g: &DiGraph) -> Result<Vec<NodeId>, CycleError> {
    let n = g.num_nodes();
    let mut indeg = vec![0usize; n];
    for e in g.edges() {
        indeg[e.to] += 1;
    }
    let mut queue: VecDeque<NodeId> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for w in g.successor_nodes(v) {
            indeg[w] -= 1;
            if indeg[w] == 0 {
                queue.push_back(w);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        let witness = (0..n).find(|&v| indeg[v] > 0).expect("cycle witness");
        Err(CycleError { witness })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_respect_edges() {
        let g = DiGraph::from_edges(5, [(0, 2), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let order = topological_order(&g).expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; 5];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for e in g.edges() {
            assert!(pos[e.from] < pos[e.to]);
        }
    }

    #[test]
    fn cycle_detected() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 1)]);
        let err = topological_order(&g).unwrap_err();
        assert!(err.witness == 1 || err.witness == 2);
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = DiGraph::from_edges(1, [(0, 0)]);
        assert!(topological_order(&g).is_err());
    }

    #[test]
    fn empty_and_edgeless() {
        assert_eq!(
            topological_order(&DiGraph::new(0)).unwrap(),
            Vec::<usize>::new()
        );
        assert_eq!(topological_order(&DiGraph::new(2)).unwrap().len(), 2);
    }

    #[test]
    fn parallel_edges_counted_in_degree() {
        let g = DiGraph::from_edges(2, [(0, 1), (0, 1)]);
        assert_eq!(topological_order(&g).unwrap(), vec![0, 1]);
    }
}
