//! Depth-first search with edge classification.
//!
//! Section 4 of the paper reasons about *tree*, *forward*, *back*, and
//! *cross* edges of the depth-first search tree of the call multi-graph.
//! [`DepthFirst`] computes the classification along with discovery
//! (pre-order) and finish (post-order) numbers, iteratively.

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Classification of an edge with respect to a depth-first search forest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Edge to an undiscovered node; part of the DFS forest.
    Tree,
    /// Edge to a descendant already discovered on the current path's subtree.
    Forward,
    /// Edge to an ancestor still on the active DFS path (creates a cycle).
    Back,
    /// Edge to a node in an already-finished subtree.
    Cross,
}

/// The result of a depth-first traversal of a [`DiGraph`].
///
/// # Examples
///
/// ```
/// use modref_graph::{DepthFirst, DiGraph, EdgeKind};
///
/// // 0 → 1 → 2, plus a back edge 2 → 0 and a forward edge 0 → 2.
/// let mut g = DiGraph::new(3);
/// let t0 = g.add_edge(0, 1);
/// let t1 = g.add_edge(1, 2);
/// let back = g.add_edge(2, 0);
/// let fwd = g.add_edge(0, 2);
/// let dfs = DepthFirst::run(&g, [0]);
/// assert_eq!(dfs.edge_kind(t0), Some(EdgeKind::Tree));
/// assert_eq!(dfs.edge_kind(t1), Some(EdgeKind::Tree));
/// assert_eq!(dfs.edge_kind(back), Some(EdgeKind::Back));
/// assert_eq!(dfs.edge_kind(fwd), Some(EdgeKind::Forward));
/// ```
#[derive(Debug, Clone)]
pub struct DepthFirst {
    discover: Vec<Option<usize>>,
    finish: Vec<Option<usize>>,
    parent: Vec<Option<NodeId>>,
    kinds: Vec<Option<EdgeKind>>,
    preorder: Vec<NodeId>,
    postorder: Vec<NodeId>,
}

impl DepthFirst {
    /// Runs DFS from each root in `roots` (in order), skipping roots already
    /// reached. Nodes unreachable from every root stay undiscovered and
    /// their incident edges unclassified.
    pub fn run<I: IntoIterator<Item = NodeId>>(g: &DiGraph, roots: I) -> Self {
        let n = g.num_nodes();
        let mut st = DepthFirst {
            discover: vec![None; n],
            finish: vec![None; n],
            parent: vec![None; n],
            kinds: vec![None; g.num_edges()],
            preorder: Vec::with_capacity(n),
            postorder: Vec::with_capacity(n),
        };
        let mut clock = 0usize;
        let mut on_path = vec![false; n];
        // Frames: (node, cursor into successors).
        let mut frames: Vec<(NodeId, usize)> = Vec::new();

        for root in roots {
            if st.discover[root].is_some() {
                continue;
            }
            st.discover[root] = Some(clock);
            clock += 1;
            st.preorder.push(root);
            on_path[root] = true;
            frames.push((root, 0));

            while let Some(&mut (v, ref mut next)) = frames.last_mut() {
                let succs = g.successors_slice(v);
                if *next < succs.len() {
                    let (w, e) = succs[*next];
                    *next += 1;
                    match st.discover[w] {
                        None => {
                            st.kinds[e] = Some(EdgeKind::Tree);
                            st.parent[w] = Some(v);
                            st.discover[w] = Some(clock);
                            clock += 1;
                            st.preorder.push(w);
                            on_path[w] = true;
                            frames.push((w, 0));
                        }
                        Some(dw) => {
                            let kind = if on_path[w] {
                                // Includes self-loops (w == v).
                                EdgeKind::Back
                            } else if dw > st.discover[v].expect("v discovered") {
                                EdgeKind::Forward
                            } else {
                                EdgeKind::Cross
                            };
                            st.kinds[e] = Some(kind);
                        }
                    }
                } else {
                    frames.pop();
                    on_path[v] = false;
                    st.finish[v] = Some(clock);
                    clock += 1;
                    st.postorder.push(v);
                }
            }
        }
        st
    }

    /// Discovery (pre-order) time of `n`, or `None` if unreached.
    pub fn discovered(&self, n: NodeId) -> Option<usize> {
        self.discover[n]
    }

    /// Finish (post-order) time of `n`, or `None` if unreached.
    pub fn finished(&self, n: NodeId) -> Option<usize> {
        self.finish[n]
    }

    /// DFS-tree parent of `n`, or `None` for roots and unreached nodes.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parent[n]
    }

    /// Classification of edge `e`, or `None` if its source was unreached.
    pub fn edge_kind(&self, e: EdgeId) -> Option<EdgeKind> {
        self.kinds[e]
    }

    /// Nodes in discovery order.
    pub fn preorder(&self) -> &[NodeId] {
        &self.preorder
    }

    /// Nodes in finish order (children before parents).
    pub fn postorder(&self) -> &[NodeId] {
        &self.postorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_on_a_chain() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2)]);
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.preorder(), &[0, 1, 2]);
        assert_eq!(dfs.postorder(), &[2, 1, 0]);
        assert_eq!(dfs.parent(2), Some(1));
        assert_eq!(dfs.parent(0), None);
    }

    #[test]
    fn cross_edge_between_subtrees() {
        // 0 → 1, 0 → 2, 2 → 1 : when 1's subtree finishes first, 2 → 1 is
        // a cross edge.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let cross = g.add_edge(2, 1);
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.edge_kind(cross), Some(EdgeKind::Cross));
    }

    #[test]
    fn self_loop_is_back_edge() {
        let mut g = DiGraph::new(1);
        let e = g.add_edge(0, 0);
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.edge_kind(e), Some(EdgeKind::Back));
    }

    #[test]
    fn unreachable_nodes_unclassified() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        let e = g.add_edge(2, 0);
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.discovered(2), None);
        assert_eq!(dfs.edge_kind(e), None);
    }

    #[test]
    fn multiple_roots_form_forest() {
        let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
        let dfs = DepthFirst::run(&g, [0, 2]);
        assert!(dfs.discovered(3).is_some());
        assert_eq!(dfs.parent(3), Some(2));
        // Roots keep no parent.
        assert_eq!(dfs.parent(2), None);
    }

    #[test]
    fn parallel_edges_each_classified() {
        let mut g = DiGraph::new(2);
        let a = g.add_edge(0, 1);
        let b = g.add_edge(0, 1);
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.edge_kind(a), Some(EdgeKind::Tree));
        // The second parallel edge finds 1 already on... actually finished
        // or on path depending on traversal; with 1 a leaf it is Forward
        // only if still on path — here 1 finishes before the cursor returns,
        // so the edge goes to a finished descendant: Forward.
        assert_eq!(dfs.edge_kind(b), Some(EdgeKind::Forward));
    }

    #[test]
    fn deep_graph_iterative_safety() {
        let n = 150_000;
        let g = DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let dfs = DepthFirst::run(&g, [0]);
        assert_eq!(dfs.postorder().len(), n);
        assert_eq!(dfs.postorder()[0], n - 1);
    }
}
