//! Dynamically maintained SCC condensation — the structure behind the
//! incremental engine's early-cutoff sweeps.
//!
//! A batch run computes [`crate::tarjan`], [`Condensation`] and [`Levels`]
//! from scratch in `O(N + E)`. The incremental engine cannot afford that
//! on every edit: a one-line change to a 1024-procedure program usually
//! touches *no* structure at all, and when it does touch structure it
//! inserts or deletes a single multi-graph edge. [`DynCondensation`] keeps
//! the triple `(Sccs, condensation, Levels)` — with Tarjan's
//! reverse-topological numbering invariant (`edge a → b ⇒ comp(b) <
//! comp(a)`) — valid across single-edge [`DynCondensation::insert_edge`] /
//! [`DynCondensation::delete_edge`] patches:
//!
//! * edges that land inside a component, or that already respect the
//!   numbering, cost `O(out-degree)`;
//! * an order-violating insert triggers a Pearce–Kelly window repair
//!   (Pearce & Kelly, *A dynamic topological sort algorithm for directed
//!   acyclic graphs*, JEA 2006) confined to the affected id window — and a
//!   component **merge** when the new edge closes a cycle;
//! * an intra-component delete re-runs Tarjan *on that component only*,
//!   splicing any split parts into the global numbering.
//!
//! Only the repair paths that renumber components (`merge`, `split`,
//! window reorder) rebuild the quotient graph and levels, and even those
//! skip the full-graph DFS. The common paths patch levels in place with a
//! worklist relaxation.

use std::collections::HashMap;
use std::mem;

use crate::condense::Condensation;
use crate::digraph::{DiGraph, NodeId};
use crate::levels::Levels;
use crate::scc::{tarjan, SccId, Sccs};

/// What a single edge patch dirtied.
#[derive(Debug, Clone)]
pub struct PatchEffect {
    /// Graph nodes whose component structure or successor set changed —
    /// the seeds for a [`crate::dirty::SparseSweep`] over the patched
    /// condensation. Always non-empty for a successful patch.
    pub dirty: Vec<NodeId>,
    /// `true` if component ids were reassigned (merge, split, or window
    /// reorder). Node ids are never reassigned; per-node caches survive
    /// every patch, per-component caches only survive when this is
    /// `false`.
    pub renumbered: bool,
}

/// An SCC condensation (with levels) maintained under single-edge inserts
/// and deletes. See the module docs for the algorithmic contract.
///
/// # Examples
///
/// ```
/// use modref_graph::{DiGraph, DynCondensation};
///
/// let mut dc = DynCondensation::build(DiGraph::from_edges(3, [(0, 1), (1, 2)]));
/// assert_eq!(dc.sccs().len(), 3);
/// // Closing the loop merges everything into one component …
/// let patch = dc.insert_edge(2, 0);
/// assert!(patch.renumbered);
/// assert_eq!(dc.sccs().len(), 1);
/// // … and breaking it splits the component back apart.
/// let patch = dc.delete_edge(2, 0);
/// assert!(patch.renumbered);
/// assert_eq!(dc.sccs().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DynCondensation {
    graph: DiGraph,
    /// Multi-graph reverse adjacency (duplicates kept, arbitrary order).
    graph_preds: Vec<Vec<NodeId>>,
    sccs: Sccs,
    /// `comp_pos[n]` = index of `n` within `sccs.members(comp_of(n))`.
    comp_pos: Vec<usize>,
    /// Simple quotient DAG; every edge points from a higher id to a lower.
    cond: DiGraph,
    /// Deduplicated, ascending, self-loop-free predecessors per component.
    cond_preds: Vec<Vec<SccId>>,
    levels: Levels,
    patches: usize,
    renumbers: usize,
}

impl DynCondensation {
    /// Builds the initial condensation from scratch (`O(N + E)`).
    pub fn build(graph: DiGraph) -> Self {
        let sccs = tarjan(&graph);
        let mut graph_preds = vec![Vec::new(); graph.num_nodes()];
        for e in graph.edges() {
            graph_preds[e.to].push(e.from);
        }
        let mut dc = DynCondensation {
            graph,
            graph_preds,
            sccs,
            comp_pos: Vec::new(),
            cond: DiGraph::new(0),
            cond_preds: Vec::new(),
            levels: Levels::from_parts(Vec::new(), Vec::new()),
            patches: 0,
            renumbers: 0,
        };
        dc.rebuild_comp_pos();
        dc.rebuild_quotient();
        dc
    }

    /// The maintained multi-graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The maintained components (Tarjan numbering invariant holds).
    pub fn sccs(&self) -> &Sccs {
        &self.sccs
    }

    /// The maintained simple quotient DAG.
    pub fn cond(&self) -> &DiGraph {
        &self.cond
    }

    /// Deduplicated, ascending, self-loop-free component predecessors —
    /// the shape [`crate::dirty::SparseSweep`] consumes.
    pub fn cond_preds(&self) -> &[Vec<SccId>] {
        &self.cond_preds
    }

    /// The maintained topological levels of the quotient.
    pub fn levels(&self) -> &Levels {
        &self.levels
    }

    /// `comp_pos[n]` = index of node `n` within its component's member
    /// list — the row index per-component solvers use.
    pub fn comp_pos(&self) -> &[usize] {
        &self.comp_pos
    }

    /// Multi-graph predecessors of `n` (duplicates kept).
    pub fn predecessors(&self, n: NodeId) -> &[NodeId] {
        &self.graph_preds[n]
    }

    /// Number of edge patches applied since [`DynCondensation::build`].
    pub fn patches(&self) -> usize {
        self.patches
    }

    /// Number of patches that had to renumber components.
    pub fn renumbers(&self) -> usize {
        self.renumbers
    }

    /// Appends a fresh isolated node as a singleton component at the
    /// highest id (no edges ⇒ the numbering invariant is untouched),
    /// at level 0.
    pub fn add_node(&mut self) -> NodeId {
        let n = self.graph.add_node();
        self.graph_preds.push(Vec::new());
        let (mut comp_of, mut members) = self.take_sccs().into_parts();
        let c = members.len();
        comp_of.push(c);
        members.push(vec![n]);
        self.sccs = Sccs::from_parts(comp_of, members);
        self.comp_pos.push(0);
        let cc = self.cond.add_node();
        debug_assert_eq!(cc, c);
        self.cond_preds.push(Vec::new());
        let (level_of, groups) = self.levels.parts_mut();
        level_of.push(0);
        if groups.is_empty() {
            groups.push(Vec::new());
        }
        groups[0].push(c);
        n
    }

    /// Inserts multi-graph edge `u → v` and repairs the condensation.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> PatchEffect {
        self.patches += 1;
        self.graph.add_edge(u, v);
        self.graph_preds[v].push(u);
        let cu = self.sccs.component_of(u);
        let cv = self.sccs.component_of(v);
        if cu == cv {
            // Intra-component (or self-loop): structure untouched.
            return PatchEffect {
                dirty: vec![u],
                renumbered: false,
            };
        }
        if cv < cu {
            // Respects the numbering: at most a new quotient edge.
            if !self.cond.successor_nodes(cu).any(|d| d == cv) {
                self.cond.add_edge(cu, cv);
                let pos = self.cond_preds[cv]
                    .binary_search(&cu)
                    .expect_err("quotient edge was absent");
                self.cond_preds[cv].insert(pos, cu);
                self.relax_levels(cu);
            }
            return PatchEffect {
                dirty: vec![u],
                renumbered: false,
            };
        }
        self.insert_violation(u, cu, cv)
    }

    /// Deletes one instance of multi-graph edge `u → v` and repairs the
    /// condensation.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if no such edge exists.
    pub fn delete_edge(&mut self, u: NodeId, v: NodeId) -> PatchEffect {
        self.patches += 1;
        let removed = self.graph.remove_edge(u, v);
        debug_assert!(removed, "delete_edge({u}, {v}): no such edge");
        let pos = self.graph_preds[v]
            .iter()
            .rposition(|&p| p == u)
            .expect("reverse adjacency lists the edge");
        self.graph_preds[v].swap_remove(pos);
        let cu = self.sccs.component_of(u);
        let cv = self.sccs.component_of(v);
        if cu != cv {
            // Inter-component: drop the quotient edge if this was the last
            // multi-graph edge inducing it.
            let survives = self.sccs.members(cu).iter().any(|&m| {
                self.graph
                    .successor_nodes(m)
                    .any(|w| self.sccs.component_of(w) == cv)
            });
            if !survives {
                let removed = self.cond.remove_edge(cu, cv);
                debug_assert!(removed);
                let pos = self.cond_preds[cv]
                    .binary_search(&cu)
                    .expect("quotient predecessor recorded");
                self.cond_preds[cv].remove(pos);
                self.relax_levels(cu);
            }
            return PatchEffect {
                dirty: vec![u],
                renumbered: false,
            };
        }
        if self.sccs.members(cu).len() == 1 {
            // A self-loop vanished; the singleton stays a singleton.
            return PatchEffect {
                dirty: vec![u],
                renumbered: false,
            };
        }
        self.split_check(cu, u)
    }

    /// Order-violating insert (`comp(v) > comp(u)`): Pearce–Kelly window
    /// repair, merging the cycle's components if the edge closed one.
    fn insert_violation(&mut self, u: NodeId, cu: SccId, cv: SccId) -> PatchEffect {
        self.renumbers += 1;
        let k = self.sccs.len();
        let (lo, hi) = (cu, cv);
        // F: components reachable from cv in the (pre-edge) quotient with
        // ids ≥ lo. Successor ids strictly decrease, so any path from cv
        // to cu stays inside the window — lo ∈ F ⟺ the edge closes a
        // cycle.
        let mut in_f = vec![false; k];
        let mut stack = vec![cv];
        in_f[cv] = true;
        while let Some(x) = stack.pop() {
            for y in self.cond.successor_nodes(x) {
                if y >= lo && !in_f[y] {
                    in_f[y] = true;
                    stack.push(y);
                }
            }
        }
        // B: components reaching cu with ids ≤ hi (predecessor ids
        // strictly increase).
        let mut in_b = vec![false; k];
        stack.push(cu);
        in_b[cu] = true;
        while let Some(x) = stack.pop() {
            for &y in &self.cond_preds[x] {
                if y <= hi && !in_b[y] {
                    in_b[y] = true;
                    stack.push(y);
                }
            }
        }
        // Pool of ids to redistribute, ascending. F ∩ B is non-empty
        // exactly when there is a cycle (a member both reaches cu and is
        // reachable from cv).
        let mut pool: Vec<SccId> = Vec::new();
        let mut f_only: Vec<SccId> = Vec::new();
        let mut shared: Vec<SccId> = Vec::new();
        let mut b_only: Vec<SccId> = Vec::new();
        for c in lo..=hi {
            match (in_f[c], in_b[c]) {
                (true, true) => shared.push(c),
                (true, false) => f_only.push(c),
                (false, true) => b_only.push(c),
                (false, false) => continue,
            }
            pool.push(c);
        }
        debug_assert_eq!(shared.is_empty(), !in_f[lo], "cycle ⟺ cu ∈ F");

        // New occupancy of the pool slots: descendants of cv first
        // (smallest ids), then the merged cycle (if any), then ancestors
        // of cu. Relative order within each class is preserved, F members
        // never gain id, B members never lose id — every quotient edge
        // keeps pointing high → low (see tests for the property check).
        let mut map: Vec<SccId> = (0..k).collect();
        let mut slot = 0usize;
        for &c in &f_only {
            map[c] = pool[slot];
            slot += 1;
        }
        if !shared.is_empty() {
            for &c in &shared {
                map[c] = pool[slot];
            }
            slot += 1;
        }
        for &c in &b_only {
            map[c] = pool[slot];
            slot += 1;
        }
        // A merge vacates the |shared| − 1 highest pool slots; compact the
        // numbering by shifting every id above each hole down. Compaction
        // is strictly monotone on occupied ids, so it preserves the
        // invariant the slot assignment established.
        let holes = &pool[slot..];
        if !holes.is_empty() {
            for m in &mut map {
                debug_assert!(holes.binary_search(m).is_err(), "occupied id is a hole");
                *m -= holes.partition_point(|&h| h < *m);
            }
        }
        let dirty = if shared.is_empty() {
            vec![u]
        } else {
            // Every node of the merged component gets a new fixpoint row.
            shared
                .iter()
                .flat_map(|&c| self.sccs.members(c).iter().copied())
                .collect()
        };
        self.renumber(&map, k - holes.len());
        PatchEffect {
            dirty,
            renumbered: true,
        }
    }

    /// Intra-component delete in a multi-member component: re-run Tarjan
    /// on the component's induced subgraph; splice any split parts into
    /// the global numbering at the old id.
    fn split_check(&mut self, c: SccId, u: NodeId) -> PatchEffect {
        let members = self.sccs.members(c);
        let local_of: HashMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut local = DiGraph::new(members.len());
        for (i, &n) in members.iter().enumerate() {
            for w in self.graph.successor_nodes(n) {
                if let Some(&j) = local_of.get(&w) {
                    local.add_edge(i, j);
                }
            }
        }
        let local_sccs = tarjan(&local);
        let m = local_sccs.len();
        if m == 1 {
            return PatchEffect {
                dirty: vec![u],
                renumbered: false,
            };
        }
        // The component split into m parts. Local Tarjan numbers them
        // reverse-topologically, so giving local part j the global id
        // c + j keeps the global invariant: ids below c are untouched,
        // ids above c shift up by m − 1.
        self.renumbers += 1;
        let dirty = members.to_vec();
        let k = self.sccs.len();
        let mut split_of: Vec<SccId> = vec![0; members.len()];
        for (i, _) in members.iter().enumerate() {
            split_of[i] = c + local_sccs.component_of(i);
        }
        let (mut comp_of, old_members) = self.take_sccs().into_parts();
        let mut new_members: Vec<Vec<NodeId>> = Vec::with_capacity(k + m - 1);
        for (old_c, ms) in old_members.into_iter().enumerate() {
            if old_c == c {
                for part in 0..m {
                    new_members.push(
                        ms.iter()
                            .enumerate()
                            .filter(|&(i, _)| split_of[i] == c + part)
                            .map(|(_, &n)| n)
                            .collect(),
                    );
                }
            } else {
                new_members.push(ms);
            }
        }
        for (nc, ms) in new_members.iter().enumerate() {
            for &n in ms {
                comp_of[n] = nc;
            }
        }
        self.sccs = Sccs::from_parts(comp_of, new_members);
        self.rebuild_comp_pos();
        self.rebuild_quotient();
        PatchEffect {
            dirty,
            renumbered: true,
        }
    }

    /// Applies a component renumbering map (`map[old] = new`, possibly
    /// many-to-one for merges) and rebuilds the derived structures.
    fn renumber(&mut self, map: &[SccId], k_new: usize) {
        let (mut comp_of, old_members) = self.take_sccs().into_parts();
        let mut new_members: Vec<Vec<NodeId>> = vec![Vec::new(); k_new];
        for (old_c, ms) in old_members.into_iter().enumerate() {
            let nc = map[old_c];
            if new_members[nc].is_empty() {
                new_members[nc] = ms;
            } else {
                new_members[nc].extend(ms);
            }
        }
        for (nc, ms) in new_members.iter().enumerate() {
            for &n in ms {
                comp_of[n] = nc;
            }
        }
        self.sccs = Sccs::from_parts(comp_of, new_members);
        self.rebuild_comp_pos();
        self.rebuild_quotient();
    }

    fn take_sccs(&mut self) -> Sccs {
        mem::replace(&mut self.sccs, Sccs::from_parts(Vec::new(), Vec::new()))
    }

    fn rebuild_comp_pos(&mut self) {
        self.comp_pos.clear();
        self.comp_pos.resize(self.graph.num_nodes(), 0);
        for ms in self.sccs.iter() {
            for (i, &n) in ms.iter().enumerate() {
                self.comp_pos[n] = i;
            }
        }
    }

    /// Recomputes quotient, predecessors and levels from the (valid)
    /// `graph` + `sccs` pair in `O(N + E)` — no Tarjan DFS.
    fn rebuild_quotient(&mut self) {
        self.cond = Condensation::build(&self.graph, &self.sccs)
            .graph()
            .clone();
        self.cond_preds.clear();
        self.cond_preds.resize(self.cond.num_nodes(), Vec::new());
        for e in self.cond.edges() {
            self.cond_preds[e.to].push(e.from);
        }
        for p in &mut self.cond_preds {
            p.sort_unstable();
        }
        self.levels = Levels::compute(&self.cond);
    }

    /// Worklist relaxation of `level(c) = max(level(d) + 1)` over quotient
    /// successors, starting at `start`, propagating to predecessors on
    /// every change. Handles raises (edge added) and drops (edge removed);
    /// converges to the exact longest-path levels because the quotient is
    /// a DAG.
    fn relax_levels(&mut self, start: SccId) {
        let mut work = vec![start];
        while let Some(c) = work.pop() {
            let need = self
                .cond
                .successor_nodes(c)
                .map(|d| self.levels.level_of(d) + 1)
                .max()
                .unwrap_or(0);
            if need == self.levels.level_of(c) {
                continue;
            }
            let (level_of, groups) = self.levels.parts_mut();
            let old = level_of[c];
            let pos = groups[old]
                .binary_search(&c)
                .expect("component listed at its level");
            groups[old].remove(pos);
            while need >= groups.len() {
                groups.push(Vec::new());
            }
            let pos = groups[need]
                .binary_search(&c)
                .expect_err("component absent from its new level");
            groups[need].insert(pos, c);
            level_of[c] = need;
            while groups.last().is_some_and(|g| g.is_empty()) {
                groups.pop();
            }
            work.extend_from_slice(&self.cond_preds[c]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Full structural audit: numbering invariant, quotient = scratch
    /// condensation (as edge sets), levels = scratch levels, partitions
    /// agree with a scratch Tarjan up to component renaming.
    fn check(dc: &DynCondensation) {
        let scratch = tarjan(dc.graph());
        assert_eq!(scratch.len(), dc.sccs().len());
        // Same partition (compare as sets of sorted member lists).
        let canon = |s: &Sccs| {
            let mut sets: Vec<Vec<NodeId>> = s
                .iter()
                .map(|m| {
                    let mut v = m.to_vec();
                    v.sort_unstable();
                    v
                })
                .collect();
            sets.sort();
            sets
        };
        assert_eq!(canon(dc.sccs()), canon(&scratch), "partition drifted");
        // Numbering invariant on the maintained ids.
        for e in dc.graph().edges() {
            let (a, b) = (dc.sccs().component_of(e.from), dc.sccs().component_of(e.to));
            assert!(b <= a, "edge {e:?}: comp {b} > comp {a}");
        }
        // Quotient graph matches a scratch condensation of the maintained
        // numbering, and the recorded predecessors match it.
        let fresh = Condensation::build(dc.graph(), dc.sccs());
        let edge_set = |g: &DiGraph| {
            let mut v: Vec<(usize, usize)> = g.edges().map(|e| (e.from, e.to)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(edge_set(dc.cond()), edge_set(fresh.graph()));
        for (c, preds) in dc.cond_preds().iter().enumerate() {
            let mut expect: Vec<SccId> = dc
                .cond()
                .edges()
                .filter(|e| e.to == c)
                .map(|e| e.from)
                .collect();
            expect.sort_unstable();
            assert_eq!(preds, &expect);
        }
        // Levels match a scratch recompute exactly (groups included).
        let fresh_levels = Levels::compute(dc.cond());
        assert_eq!(dc.levels().level_map(), fresh_levels.level_map());
        assert_eq!(dc.levels().num_levels(), fresh_levels.num_levels());
        for l in 0..fresh_levels.num_levels() {
            assert_eq!(dc.levels().group(l), fresh_levels.group(l));
        }
        // comp_pos agrees with member lists.
        for (c, ms) in dc.sccs().iter().enumerate() {
            for (i, &n) in ms.iter().enumerate() {
                assert_eq!(dc.sccs().component_of(n), c);
                assert_eq!(dc.comp_pos()[n], i);
            }
        }
    }

    #[test]
    fn ordered_insert_and_delete_patch_in_place() {
        let mut dc = DynCondensation::build(DiGraph::from_edges(3, [(0, 1), (1, 2)]));
        check(&dc);
        let p = dc.insert_edge(0, 2); // comp(2) < comp(0): no renumber
        assert!(!p.renumbered);
        assert_eq!(p.dirty, vec![0]);
        check(&dc);
        let p = dc.delete_edge(0, 2);
        assert!(!p.renumbered);
        check(&dc);
        assert_eq!(dc.renumbers(), 0);
    }

    #[test]
    fn cycle_merge_and_split_roundtrip() {
        let mut dc = DynCondensation::build(DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        let p = dc.insert_edge(3, 1); // closes {1, 2, 3}
        assert!(p.renumbered);
        let mut dirty = p.dirty.clone();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![1, 2, 3]);
        assert_eq!(dc.sccs().len(), 2);
        check(&dc);
        let p = dc.delete_edge(3, 1); // splits back
        assert!(p.renumbered);
        assert_eq!(dc.sccs().len(), 4);
        check(&dc);
        assert_eq!(dc.renumbers(), 2);
    }

    #[test]
    fn reorder_without_cycle() {
        // 2 → 1, 2 → 0, plus isolated 3. Insert 0 → 3: comp(3) > comp(0)
        // forces a window reorder but no merge.
        let mut dc = DynCondensation::build(DiGraph::from_edges(4, [(2, 1), (2, 0)]));
        let (c0, c3) = (dc.sccs().component_of(0), dc.sccs().component_of(3));
        assert!(c3 > c0, "precondition: insert must violate the order");
        let p = dc.insert_edge(0, 3);
        assert!(p.renumbered);
        assert_eq!(dc.sccs().len(), 4);
        check(&dc);
    }

    #[test]
    fn self_loops_and_parallel_edges() {
        let mut dc = DynCondensation::build(DiGraph::new(2));
        dc.insert_edge(0, 0);
        check(&dc);
        let p = dc.insert_edge(1, 0);
        assert!(!p.renumbered);
        dc.insert_edge(1, 0); // parallel: quotient unchanged
        check(&dc);
        dc.delete_edge(1, 0); // one copy survives → quotient edge survives
        assert_eq!(dc.cond().num_edges(), 1);
        check(&dc);
        dc.delete_edge(1, 0);
        assert_eq!(dc.cond().num_edges(), 0);
        check(&dc);
        dc.delete_edge(0, 0);
        check(&dc);
    }

    #[test]
    fn add_node_is_a_singleton_at_the_top() {
        let mut dc = DynCondensation::build(DiGraph::from_edges(2, [(0, 1)]));
        let n = dc.add_node();
        assert_eq!(n, 2);
        check(&dc);
        let p = dc.insert_edge(n, 0); // highest id calling down: ordered
        assert!(!p.renumbered);
        check(&dc);
    }

    #[test]
    fn nested_merges_then_full_teardown() {
        // Build two 2-cycles, bridge them into a 4-cycle, then delete
        // every edge one by one, auditing after each patch.
        let mut dc = DynCondensation::build(DiGraph::new(4));
        let edges = [
            (0, 1),
            (1, 0), // cycle {0,1}
            (2, 3),
            (3, 2), // cycle {2,3}
            (1, 2),
            (3, 0), // bridge both ways → one 4-cycle
        ];
        for &(u, v) in &edges {
            dc.insert_edge(u, v);
            check(&dc);
        }
        assert_eq!(dc.sccs().len(), 1);
        for &(u, v) in edges.iter().rev() {
            dc.delete_edge(u, v);
            check(&dc);
        }
        assert_eq!(dc.sccs().len(), 4);
        assert_eq!(dc.cond().num_edges(), 0);
    }
}
