//! Graphviz (DOT) export for [`DiGraph`]s.
//!
//! The `modref` CLI uses this to visualise call multi-graphs and binding
//! multi-graphs; any labelling scheme can be plugged in.

use std::fmt::Write as _;

use crate::digraph::{DiGraph, EdgeId, NodeId};

/// Renders `g` in DOT syntax.
///
/// `node_label` and `edge_label` provide the display strings; an empty
/// edge label omits the attribute. Labels are escaped for double-quoted
/// DOT strings.
///
/// # Examples
///
/// ```
/// use modref_graph::{dot::to_dot, DiGraph};
///
/// let g = DiGraph::from_edges(2, [(0, 1)]);
/// let dot = to_dot(&g, "calls", |n| format!("p{n}"), |_| String::new());
/// assert!(dot.contains("digraph calls {"));
/// assert!(dot.contains("n0 -> n1"));
/// ```
pub fn to_dot(
    g: &DiGraph,
    name: &str,
    node_label: impl Fn(NodeId) -> String,
    edge_label: impl Fn(EdgeId) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_name(name));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for n in g.nodes() {
        let _ = writeln!(out, "  n{} [label=\"{}\"];", n, escape(&node_label(n)));
    }
    for (e, edge) in g.edges().enumerate() {
        let label = edge_label(e);
        if label.is_empty() {
            let _ = writeln!(out, "  n{} -> n{};", edge.from, edge.to);
        } else {
            let _ = writeln!(
                out,
                "  n{} -> n{} [label=\"{}\"];",
                edge.from,
                edge.to,
                escape(&label)
            );
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize_name(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "g".to_owned()
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_labels() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1); // parallel edges both appear
        g.add_edge(2, 2);
        let dot = to_dot(
            &g,
            "call graph",
            |n| format!("proc{n}"),
            |e| format!("s{e}"),
        );
        assert!(dot.starts_with("digraph call_graph {"));
        assert!(dot.contains("n0 [label=\"proc0\"];"));
        assert_eq!(dot.matches("n0 -> n1").count(), 2);
        assert!(dot.contains("n2 -> n2 [label=\"s2\"];"));
    }

    #[test]
    fn escapes_quotes() {
        let g = DiGraph::new(1);
        let dot = to_dot(&g, "", |_| "a\"b".to_owned(), |_| String::new());
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("a\\\"b"));
    }
}
