#![warn(missing_docs)]

//! Directed multi-graphs and the graph algorithms behind Cooper–Kennedy
//! interprocedural side-effect analysis.
//!
//! Both graphs the paper manipulates — the *call multi-graph*
//! `C = (N_C, E_C)` of §2 and the *binding multi-graph* `β = (N_β, E_β)` of
//! §3.1 — are directed graphs that may carry parallel edges (a procedure can
//! call another from several sites; a formal can be re-bound at each). This
//! crate provides the shared machinery:
//!
//! * [`DiGraph`] — a compact directed multi-graph over `usize` node ids.
//! * [`scc::tarjan`] — iterative Tarjan strongly-connected components
//!   (the paper's Figure 2 is an adaptation of this algorithm).
//! * [`dfs::DepthFirst`] — depth-first search with tree/back/forward/cross
//!   edge classification, matching the vocabulary of §4's proofs.
//! * [`condense::Condensation`] — the acyclic quotient graph used by the
//!   Figure 1 `RMOD` solver.
//! * [`levels::Levels`] — topological levels of a condensation, the
//!   schedule for level-parallel propagation.
//! * [`topo::topological_order`] and [`reach::reachable_from`].
//!
//! All traversals are iterative (explicit stacks), so pathological inputs —
//! call chains millions deep — cannot overflow the thread stack.
//!
//! # Examples
//!
//! ```
//! use modref_graph::{tarjan, DiGraph};
//!
//! let mut g = DiGraph::new(3);
//! g.add_edge(0, 1);
//! g.add_edge(1, 0);
//! g.add_edge(1, 2);
//! let sccs = tarjan(&g);
//! assert_eq!(sccs.len(), 2);
//! assert_eq!(sccs.component_of(0), sccs.component_of(1));
//! assert_ne!(sccs.component_of(0), sccs.component_of(2));
//! ```

pub mod condense;
pub mod dfs;
pub mod digraph;
pub mod dirty;
pub mod dot;
pub mod dyncond;
pub mod levels;
pub mod reach;
pub mod scc;
pub mod topo;

pub use condense::Condensation;
pub use dirty::{DirtySweep, SparseSweep};
pub use dyncond::{DynCondensation, PatchEffect};
pub use levels::Levels;
pub use dfs::{DepthFirst, EdgeKind};
pub use digraph::{DiGraph, Edge, EdgeId, NodeId};
pub use scc::{tarjan, SccId, Sccs};
