//! Iterative Tarjan strongly-connected components.

use crate::digraph::{DiGraph, NodeId};

/// Index of a strongly-connected component produced by [`tarjan`].
pub type SccId = usize;

/// The strongly-connected components of a [`DiGraph`].
///
/// Components are numbered **in the order Tarjan's algorithm closes them**,
/// which is a *reverse topological order* of the condensation: if component
/// `a` has an edge into component `b` (`a ≠ b`), then `b < a`. The `RMOD`
/// solver of the paper's Figure 1 exploits exactly this: visiting components
/// in id order is a leaves-to-roots sweep.
///
/// # Examples
///
/// ```
/// use modref_graph::{tarjan, DiGraph};
///
/// // 0 → 1 ⇄ 2,  1 → 3
/// let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 1), (1, 3)]);
/// let sccs = tarjan(&g);
/// assert_eq!(sccs.len(), 3);
/// // The cycle {1, 2} is one component …
/// assert_eq!(sccs.component_of(1), sccs.component_of(2));
/// // … and it closes after its successor {3} but before its caller {0}.
/// assert!(sccs.component_of(3) < sccs.component_of(1));
/// assert!(sccs.component_of(1) < sccs.component_of(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sccs {
    comp_of: Vec<SccId>,
    members: Vec<Vec<NodeId>>,
}

impl Sccs {
    /// Assembles an `Sccs` from a component map and member lists — the
    /// constructor dynamic condensation maintenance
    /// ([`crate::dyncond::DynCondensation`]) uses after patching the
    /// component structure in place. The caller is responsible for the
    /// numbering invariant [`tarjan`] guarantees: for any graph edge
    /// `u → v` across components, `component_of(v) < component_of(u)`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `comp_of` and `members` disagree.
    pub fn from_parts(comp_of: Vec<SccId>, members: Vec<Vec<NodeId>>) -> Self {
        debug_assert!(
            members
                .iter()
                .enumerate()
                .all(|(c, ms)| ms.iter().all(|&m| comp_of[m] == c)),
            "member lists disagree with the component map"
        );
        debug_assert_eq!(
            members.iter().map(Vec::len).sum::<usize>(),
            comp_of.len(),
            "members must partition the node set"
        );
        Sccs { comp_of, members }
    }

    /// Decomposes into `(comp_of, members)` — the inverse of
    /// [`Sccs::from_parts`], for callers that renumber components.
    pub fn into_parts(self) -> (Vec<SccId>, Vec<Vec<NodeId>>) {
        (self.comp_of, self.members)
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` if the graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The component containing node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn component_of(&self, n: NodeId) -> SccId {
        self.comp_of[n]
    }

    /// The member nodes of component `c`, in the order they were popped.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn members(&self, c: SccId) -> &[NodeId] {
        &self.members[c]
    }

    /// Iterates over components in closure order (reverse topological).
    pub fn iter(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + '_ {
        self.members.iter().map(|v| v.as_slice())
    }

    /// The `comp_of` map as a slice indexed by node id.
    pub fn component_map(&self) -> &[SccId] {
        &self.comp_of
    }

    /// `true` if node `n` lies on a cycle: its component has more than one
    /// member, or it has a self-loop in `g`.
    pub fn is_cyclic_node(&self, g: &DiGraph, n: NodeId) -> bool {
        self.members[self.comp_of[n]].len() > 1 || g.successor_nodes(n).any(|m| m == n)
    }
}

const UNVISITED: usize = usize::MAX;

/// Computes the strongly-connected components of `g` with an iterative
/// version of Tarjan's algorithm (Tarjan 1972, the basis of the paper's
/// Figure 2).
///
/// Runs in `O(N + E)`; never recurses, so arbitrarily deep graphs are safe.
///
/// # Examples
///
/// ```
/// let g = modref_graph::DiGraph::from_edges(2, [(0, 1), (1, 0)]);
/// assert_eq!(modref_graph::tarjan(&g).len(), 1);
/// ```
pub fn tarjan(g: &DiGraph) -> Sccs {
    let n = g.num_nodes();
    let mut dfn = vec![UNVISITED; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut comp_of = vec![0usize; n];
    let mut members: Vec<Vec<NodeId>> = Vec::new();
    let mut next_dfn = 0usize;

    // Work stack frames: (node, index of next successor to examine).
    let mut frames: Vec<(NodeId, usize)> = Vec::new();

    for root in 0..n {
        if dfn[root] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        dfn[root] = next_dfn;
        lowlink[root] = next_dfn;
        next_dfn += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut next)) = frames.last_mut() {
            let succs = g.successors_slice(v);
            if *next < succs.len() {
                let (w, _) = succs[*next];
                *next += 1;
                if dfn[w] == UNVISITED {
                    dfn[w] = next_dfn;
                    lowlink[w] = next_dfn;
                    next_dfn += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(dfn[w]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == dfn[v] {
                    let comp = members.len();
                    let mut component = Vec::new();
                    loop {
                        let u = stack.pop().expect("tarjan stack underflow");
                        on_stack[u] = false;
                        comp_of[u] = comp;
                        component.push(u);
                        if u == v {
                            break;
                        }
                    }
                    members.push(component);
                }
            }
        }
    }

    Sccs { comp_of, members }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;

    fn comp_sets(sccs: &Sccs) -> Vec<Vec<NodeId>> {
        sccs.iter()
            .map(|m| {
                let mut v = m.to_vec();
                v.sort_unstable();
                v
            })
            .collect()
    }

    #[test]
    fn empty_graph() {
        let sccs = tarjan(&DiGraph::new(0));
        assert!(sccs.is_empty());
        assert_eq!(sccs.len(), 0);
    }

    #[test]
    fn isolated_nodes_are_singletons() {
        let sccs = tarjan(&DiGraph::new(3));
        assert_eq!(sccs.len(), 3);
        for n in 0..3 {
            assert_eq!(sccs.members(sccs.component_of(n)), &[n]);
        }
    }

    #[test]
    fn simple_cycle() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 1);
        let mut m = sccs.members(0).to_vec();
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn dag_components_in_reverse_topological_order() {
        // 0 → 1 → 2 → 3 chain: closure order must be 3, 2, 1, 0.
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 4);
        for e in g.edges() {
            assert!(
                sccs.component_of(e.to) <= sccs.component_of(e.from),
                "edge {e:?} violates reverse-topological numbering"
            );
        }
        assert_eq!(sccs.component_of(3), 0);
        assert_eq!(sccs.component_of(0), 3);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} → {2,3}
        let g = DiGraph::from_edges(4, [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.component_of(2) < sccs.component_of(0));
        assert_eq!(comp_sets(&sccs), vec![vec![2, 3], vec![0, 1]]);
    }

    #[test]
    fn self_loop_is_cyclic_singleton() {
        let g = DiGraph::from_edges(2, [(0, 0)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 2);
        assert!(sccs.is_cyclic_node(&g, 0));
        assert!(!sccs.is_cyclic_node(&g, 1));
    }

    #[test]
    fn parallel_edges_do_not_confuse() {
        let g = DiGraph::from_edges(2, [(0, 1), (0, 1), (1, 0)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 1);
    }

    #[test]
    fn irreducible_graph() {
        // Classic irreducible region: 0 → 1, 0 → 2, 1 ⇄ 2. No single-entry
        // loop header; Tarjan does not care (the paper stresses its methods
        // need no reducibility assumption).
        let g = DiGraph::from_edges(3, [(0, 1), (0, 2), (1, 2), (2, 1)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs.component_of(1), sccs.component_of(2));
    }

    #[test]
    fn disconnected_components_all_found() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 0), (3, 4)]);
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), 4);
        let total: usize = sccs.iter().map(|m| m.len()).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 200_000;
        let g = DiGraph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        let sccs = tarjan(&g);
        assert_eq!(sccs.len(), n);
    }

    #[test]
    fn deep_cycle_single_component() {
        let n = 100_000;
        let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let sccs = tarjan(&DiGraph::from_edges(n, edges));
        assert_eq!(sccs.len(), 1);
        assert_eq!(sccs.members(0).len(), n);
    }
}
