//! The [`DiGraph`] directed multi-graph.

use std::fmt;

/// Index of a node in a [`DiGraph`].
pub type NodeId = usize;

/// Index of an edge in a [`DiGraph`], in insertion order.
///
/// Edge identity matters for multi-graphs: two parallel edges between the
/// same pair of nodes represent distinct call sites or binding events and
/// carry distinct ids.
pub type EdgeId = usize;

/// A directed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source node.
    pub from: NodeId,
    /// Target node.
    pub to: NodeId,
}

/// A directed multi-graph over dense `usize` node ids.
///
/// Parallel edges and self-loops are allowed; both occur naturally in call
/// multi-graphs (several call sites for one callee; direct recursion).
///
/// # Examples
///
/// ```
/// use modref_graph::DiGraph;
///
/// let mut g = DiGraph::new(2);
/// let e0 = g.add_edge(0, 1);
/// let e1 = g.add_edge(0, 1); // parallel edge: a second call site
/// assert_ne!(e0, e1);
/// assert_eq!(g.out_degree(0), 2);
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct DiGraph {
    edges: Vec<Edge>,
    succ: Vec<Vec<(NodeId, EdgeId)>>,
}

impl DiGraph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            edges: Vec::new(),
            succ: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` nodes from an edge list.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// let g = modref_graph::DiGraph::from_edges(3, [(0, 1), (1, 2)]);
    /// assert_eq!(g.num_edges(), 2);
    /// ```
    pub fn from_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(n: usize, edges: I) -> Self {
        let mut g = DiGraph::new(n);
        for (from, to) in edges {
            g.add_edge(from, to);
        }
        g
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.succ.len()
    }

    /// Number of edges (parallel edges counted individually).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends a fresh, isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.succ.push(Vec::new());
        self.succ.len() - 1
    }

    /// Adds a directed edge `from → to` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        assert!(
            from < self.succ.len() && to < self.succ.len(),
            "edge ({from}, {to}) out of range for {} nodes",
            self.succ.len()
        );
        let id = self.edges.len();
        self.edges.push(Edge { from, to });
        self.succ[from].push((to, id));
        id
    }

    /// Removes one instance of edge `from → to` (the most recently added
    /// one, if parallel edges exist) and returns `true`; returns `false`
    /// when no such edge exists.
    ///
    /// Edge ids are **not stable** across removal: the last edge takes
    /// over the removed edge's id (swap-remove). Callers that cache
    /// [`EdgeId`]s must not mix them with removal.
    ///
    /// # Examples
    ///
    /// ```
    /// let mut g = modref_graph::DiGraph::from_edges(2, [(0, 1), (0, 1)]);
    /// assert!(g.remove_edge(0, 1));
    /// assert_eq!(g.num_edges(), 1);
    /// assert!(g.remove_edge(0, 1));
    /// assert!(!g.remove_edge(0, 1));
    /// ```
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some(pos) = self.succ[from].iter().rposition(|&(t, _)| t == to) else {
            return false;
        };
        let (_, e) = self.succ[from].swap_remove(pos);
        let last = self.edges.len() - 1;
        self.edges.swap_remove(e);
        if e != last {
            // The edge that held id `last` moved into slot `e`; fix the
            // id recorded in its source's successor list.
            let moved = self.edges[e];
            let slot = self.succ[moved.from]
                .iter()
                .position(|&(_, id)| id == last)
                .expect("moved edge is listed by its source");
            self.succ[moved.from][slot].1 = e;
        }
        true
    }

    /// The endpoints of edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e]
    }

    /// Iterates over all edges in insertion order.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Successors of `n`, with the edge id of each step; insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn successors(&self, n: NodeId) -> impl ExactSizeIterator<Item = (NodeId, EdgeId)> + '_ {
        self.succ[n].iter().copied()
    }

    /// Successor nodes of `n` (edge ids dropped); insertion order.
    pub fn successor_nodes(&self, n: NodeId) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        self.succ[n].iter().map(|&(to, _)| to)
    }

    /// Successors of `n` as a slice of `(target, edge id)` pairs.
    ///
    /// Traversals that keep a per-node cursor (iterative DFS, Tarjan) index
    /// into this slice directly instead of re-materialising an iterator.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn successors_slice(&self, n: NodeId) -> &[(NodeId, EdgeId)] {
        &self.succ[n]
    }

    /// Out-degree of `n` (parallel edges counted individually).
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.succ[n].len()
    }

    /// Builds the reverse graph (every edge flipped, ids preserved in the
    /// sense that edge `e` of the reverse is edge `e` of the original
    /// reversed).
    ///
    /// # Examples
    ///
    /// ```
    /// let g = modref_graph::DiGraph::from_edges(2, [(0, 1)]);
    /// let r = g.reversed();
    /// assert_eq!(r.successor_nodes(1).collect::<Vec<_>>(), vec![0]);
    /// ```
    pub fn reversed(&self) -> DiGraph {
        let mut r = DiGraph::new(self.num_nodes());
        for e in &self.edges {
            r.add_edge(e.to, e.from);
        }
        r
    }

    /// Iterates over all node ids, `0..num_nodes()`.
    pub fn nodes(&self) -> std::ops::Range<NodeId> {
        0..self.num_nodes()
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DiGraph(n={}; ", self.num_nodes())?;
        let mut first = true;
        for e in &self.edges {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{}→{}", e.from, e.to)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let mut g = DiGraph::new(3);
        let e0 = g.add_edge(0, 1);
        let e1 = g.add_edge(0, 2);
        let e2 = g.add_edge(2, 2); // self loop
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(e0), Edge { from: 0, to: 1 });
        assert_eq!(g.edge(e2), Edge { from: 2, to: 2 });
        assert_eq!(g.successors(0).collect::<Vec<_>>(), vec![(1, e0), (2, e1)]);
        assert_eq!(g.out_degree(1), 0);
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g = DiGraph::new(2);
        let a = g.add_edge(0, 1);
        let b = g.add_edge(0, 1);
        assert_ne!(a, b);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut g = DiGraph::new(1);
        let n = g.add_node();
        assert_eq!(n, 1);
        g.add_edge(0, n);
        assert_eq!(g.successor_nodes(0).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn remove_edge_keeps_ids_consistent() {
        let mut g = DiGraph::from_edges(3, [(0, 1), (1, 2), (0, 2), (0, 1)]);
        assert!(g.remove_edge(0, 1)); // drops one of the parallel pair
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.out_degree(0), 2);
        // Every successor entry must agree with the edge table.
        for n in g.nodes() {
            for &(to, e) in g.successors_slice(n) {
                assert_eq!(g.edge(e), Edge { from: n, to });
            }
        }
        assert!(g.remove_edge(1, 2));
        assert!(!g.remove_edge(1, 2));
        assert_eq!(g.num_edges(), 2);
        for n in g.nodes() {
            for &(to, e) in g.successors_slice(n) {
                assert_eq!(g.edge(e), Edge { from: n, to });
            }
        }
    }

    #[test]
    fn reversed_flips_all_edges() {
        let g = DiGraph::from_edges(4, [(0, 1), (1, 2), (2, 0), (1, 1)]);
        let r = g.reversed();
        assert_eq!(r.num_edges(), 4);
        assert_eq!(r.successor_nodes(1).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(r.successor_nodes(0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        DiGraph::new(1).add_edge(0, 1);
    }

    #[test]
    fn debug_is_nonempty_for_empty_graph() {
        assert_eq!(format!("{:?}", DiGraph::new(0)), "DiGraph(n=0; )");
    }
}
