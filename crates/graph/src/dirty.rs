//! Dirty-set propagation over a condensation.
//!
//! Both sweeps the incremental engine reuses — the Figure 1 `RMOD` pass
//! over the binding multi-graph's condensation and the level-scheduled
//! `GMOD` pass over the call multi-graph's condensation — share one
//! dataflow orientation: a component's value is a function of its
//! *successors'* values (callees, bound formals), and components are
//! processed successors-first (ascending [`SccId`] or sinks-first level
//! order). [`DirtySweep`] tracks, during such a sweep, which components
//! must be recomputed:
//!
//! * components whose inputs changed outright (edited seeds, changed
//!   membership) are **seeded** dirty before the sweep;
//! * when a dirty component is recomputed and its value actually
//!   *changed*, every predecessor becomes dirty ([`DirtySweep::update`]
//!   with `changed = true`);
//! * when a recomputation reproduces the cached value, the dirtiness
//!   stops there — predecessors whose other inputs are clean keep their
//!   cached fixpoints ("downward only past unchanged fixpoints").
//!
//! Because the processing order is successors-first, a predecessor is
//! always visited *after* every component that could dirty it, so one
//! sweep suffices; no worklist is needed.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::digraph::DiGraph;
use crate::scc::SccId;

/// Dirty-component bookkeeping for one successors-first sweep over a
/// condensation (see the module docs).
///
/// # Examples
///
/// ```
/// use modref_graph::{DiGraph, DirtySweep};
///
/// // Condensation 2 → 1 → 0 (ascending ids = successors first).
/// let g = DiGraph::from_edges(3, [(2, 1), (1, 0)]);
/// let mut sweep = DirtySweep::new(&g);
/// sweep.seed(1);
/// assert!(!sweep.is_dirty(0));
/// assert!(sweep.is_dirty(1));
/// // Recomputing 1 changes its value → its predecessor 2 gets dirty.
/// sweep.update(1, true);
/// assert!(sweep.is_dirty(2));
/// sweep.update(2, false);
/// assert_eq!((sweep.recomputed(), sweep.reused()), (2, 0));
/// ```
#[derive(Debug, Clone)]
pub struct DirtySweep {
    preds: Vec<Vec<SccId>>,
    dirty: Vec<bool>,
    reused: usize,
    recomputed: usize,
}

impl DirtySweep {
    /// Prepares a sweep over `condensed` (a [`Condensation::graph`],
    /// though any acyclic [`DiGraph`] whose sweep order is
    /// successors-first works). All components start clean.
    ///
    /// [`Condensation::graph`]: crate::condense::Condensation::graph
    pub fn new(condensed: &DiGraph) -> Self {
        let mut preds = vec![Vec::new(); condensed.num_nodes()];
        for e in condensed.edges() {
            if e.from != e.to {
                preds[e.to].push(e.from);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        DirtySweep {
            preds,
            dirty: vec![false; condensed.num_nodes()],
            reused: 0,
            recomputed: 0,
        }
    }

    /// Marks `c` dirty before the sweep (its inputs changed).
    pub fn seed(&mut self, c: SccId) {
        self.dirty[c] = true;
    }

    /// Whether `c` must be recomputed when the sweep reaches it.
    pub fn is_dirty(&self, c: SccId) -> bool {
        self.dirty[c]
    }

    /// Records that dirty component `c` was recomputed; `changed` says
    /// whether the new value differs from the cached one. On change,
    /// every predecessor of `c` becomes dirty.
    pub fn update(&mut self, c: SccId, changed: bool) {
        self.recomputed += 1;
        if changed {
            for i in 0..self.preds[c].len() {
                let p = self.preds[c][i];
                self.dirty[p] = true;
            }
        }
    }

    /// Records that clean component `c` kept its cached value.
    pub fn skip(&mut self, c: SccId) {
        debug_assert!(!self.dirty[c], "skipped a dirty component");
        self.reused += 1;
    }

    /// Number of components whose cached value was kept.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Number of components recomputed.
    pub fn recomputed(&self) -> usize {
        self.recomputed
    }
}

/// A frontier-driven variant of [`DirtySweep`]: instead of walking every
/// component of the condensation and asking "dirty or clean?", it visits
/// **only** the dirty frontier, pulled from a min-heap ordered by
/// topological level. Work is `O(D log D + E_D)` in the number of dirty
/// components `D` and their incident condensation edges — independent of
/// the total graph size. This is the "per-phase dirty-set sparsification"
/// half of the early-cutoff scheme: a one-procedure edit on a 1024-node
/// flat condensation touches a handful of components, not 1024.
///
/// Correctness relies on the same orientation as [`DirtySweep`]: a
/// component's value depends only on its successors, which sit at strictly
/// *lower* levels. Seeds are all enqueued before the first batch is drawn,
/// and [`SparseSweep::update`] only enqueues predecessors — which sit at
/// strictly *higher* levels than the component just recomputed — so every
/// component is drawn after all components that could dirty it.
///
/// Components that are never drawn keep their cached values implicitly;
/// there is no per-component `skip` call (that linear pass is exactly what
/// this type removes).
///
/// # Examples
///
/// ```
/// use modref_graph::{DiGraph, Levels, SparseSweep};
///
/// // Condensation 2 → 1 → 0 (levels 2, 1, 0).
/// let g = DiGraph::from_edges(3, [(2, 1), (1, 0)]);
/// let levels = Levels::compute(&g);
/// let preds: Vec<Vec<usize>> = vec![vec![1], vec![2], vec![]];
/// let mut sweep = SparseSweep::new(&preds, levels.level_map());
/// sweep.seed(1);
/// let mut batch = Vec::new();
/// assert!(sweep.next_batch(&mut batch));
/// assert_eq!(batch, vec![1]);
/// sweep.update(1, true); // value changed → predecessor 2 joins the frontier
/// assert!(sweep.next_batch(&mut batch));
/// assert_eq!(batch, vec![2]);
/// sweep.update(2, false);
/// assert!(!sweep.next_batch(&mut batch)); // 0 was never touched
/// assert_eq!(sweep.recomputed(), 2);
/// ```
#[derive(Debug)]
pub struct SparseSweep<'a> {
    preds: &'a [Vec<SccId>],
    level_of: &'a [usize],
    heap: BinaryHeap<Reverse<(usize, SccId)>>,
    queued: Vec<bool>,
    recomputed: usize,
}

impl<'a> SparseSweep<'a> {
    /// Prepares a sweep over a condensation given its deduplicated
    /// predecessor lists (no self-loops) and its level map — exactly the
    /// shape [`crate::dyncond::DynCondensation`] maintains.
    pub fn new(preds: &'a [Vec<SccId>], level_of: &'a [usize]) -> Self {
        debug_assert_eq!(preds.len(), level_of.len());
        SparseSweep {
            preds,
            level_of,
            heap: BinaryHeap::new(),
            queued: vec![false; preds.len()],
            recomputed: 0,
        }
    }

    /// Marks `c` dirty. All seeds must be planted before the first
    /// [`SparseSweep::next_batch`] call; duplicates are absorbed.
    pub fn seed(&mut self, c: SccId) {
        if !self.queued[c] {
            self.queued[c] = true;
            self.heap.push(Reverse((self.level_of[c], c)));
        }
    }

    /// Drains every dirty component at the current minimum level into
    /// `batch` (ascending component id — the same order a dense
    /// level-group walk would produce) and returns `true`; returns `false`
    /// when the frontier is exhausted. Components within a batch share a
    /// level, hence are pairwise independent and safe to recompute in
    /// parallel. Call [`SparseSweep::update`] for each drained component
    /// before asking for the next batch.
    pub fn next_batch(&mut self, batch: &mut Vec<SccId>) -> bool {
        batch.clear();
        let Some(&Reverse((level, _))) = self.heap.peek() else {
            return false;
        };
        while let Some(&Reverse((l, c))) = self.heap.peek() {
            if l != level {
                break;
            }
            self.heap.pop();
            batch.push(c);
        }
        true
    }

    /// Records that dirty component `c` was recomputed; on `changed`,
    /// its predecessors (strictly higher level) join the frontier.
    pub fn update(&mut self, c: SccId, changed: bool) {
        self.recomputed += 1;
        if changed {
            for &p in &self.preds[c] {
                debug_assert!(self.level_of[p] > self.level_of[c]);
                if !self.queued[p] {
                    self.queued[p] = true;
                    self.heap.push(Reverse((self.level_of[p], p)));
                }
            }
        }
    }

    /// Number of components recomputed so far.
    pub fn recomputed(&self) -> usize {
        self.recomputed
    }

    /// Total number of components in the condensation (dirty or not) —
    /// the reuse count is `total() - recomputed()`.
    pub fn total(&self) -> usize {
        self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_graph_reuses_everything() {
        let g = DiGraph::from_edges(4, [(3, 2), (2, 1), (1, 0)]);
        let mut sweep = DirtySweep::new(&g);
        for c in 0..4 {
            assert!(!sweep.is_dirty(c));
            sweep.skip(c);
        }
        assert_eq!(sweep.reused(), 4);
        assert_eq!(sweep.recomputed(), 0);
    }

    #[test]
    fn unchanged_fixpoint_stops_propagation() {
        // Diamond: 3 → {1, 2} → 0.
        let g = DiGraph::from_edges(4, [(3, 1), (3, 2), (1, 0), (2, 0)]);
        let mut sweep = DirtySweep::new(&g);
        sweep.seed(0);
        sweep.update(0, true); // 0 changed → 1 and 2 dirty
        assert!(sweep.is_dirty(1) && sweep.is_dirty(2));
        sweep.update(1, false); // 1's fixpoint survived …
        sweep.update(2, false); // … and so did 2's
        assert!(!sweep.is_dirty(3)); // → 3 is reused
        sweep.skip(3);
        assert_eq!((sweep.recomputed(), sweep.reused()), (3, 1));
    }

    #[test]
    fn sparse_sweep_visits_only_the_frontier() {
        // Diamond 3 → {1, 2} → 0 plus an untouched island 4.
        let preds: Vec<Vec<SccId>> = vec![vec![1, 2], vec![3], vec![3], vec![], vec![]];
        let level_of = vec![0, 1, 1, 2, 0];
        let mut sweep = SparseSweep::new(&preds, &level_of);
        sweep.seed(0);
        sweep.seed(0); // duplicate seed absorbed
        let mut batch = Vec::new();
        assert!(sweep.next_batch(&mut batch));
        assert_eq!(batch, vec![0]);
        sweep.update(0, true);
        assert!(sweep.next_batch(&mut batch));
        assert_eq!(batch, vec![1, 2]); // one level, ascending ids
        sweep.update(1, false);
        sweep.update(2, false);
        // Both fixpoints survived → 3 never enters the frontier.
        assert!(!sweep.next_batch(&mut batch));
        assert_eq!(sweep.recomputed(), 3);
        assert_eq!(sweep.total(), 5);
    }

    #[test]
    fn sparse_sweep_change_reaches_transitive_predecessors() {
        // Chain 3 → 2 → 1 → 0, everything changes.
        let preds: Vec<Vec<SccId>> = vec![vec![1], vec![2], vec![3], vec![]];
        let level_of = vec![0, 1, 2, 3];
        let mut sweep = SparseSweep::new(&preds, &level_of);
        sweep.seed(0);
        let mut batch = Vec::new();
        let mut order = Vec::new();
        while sweep.next_batch(&mut batch) {
            for &c in &batch {
                order.push(c);
                sweep.update(c, true);
            }
        }
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(sweep.recomputed(), 4);
    }

    #[test]
    fn parallel_edges_and_self_loops_dedup() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 0);
        g.add_edge(1, 0); // parallel
        g.add_edge(1, 1); // self-loop: a component never dirties itself
        let mut sweep = DirtySweep::new(&g);
        sweep.seed(0);
        sweep.update(0, true);
        assert!(sweep.is_dirty(1));
        assert_eq!(sweep.preds[1], vec![] as Vec<SccId>); // self-loop excluded
        assert_eq!(sweep.preds[0], vec![1]); // parallel edges deduplicated
        sweep.update(1, true); // root change dirties nobody
        assert_eq!(sweep.recomputed(), 2);
    }
}
