//! Dirty-set propagation over a condensation.
//!
//! Both sweeps the incremental engine reuses — the Figure 1 `RMOD` pass
//! over the binding multi-graph's condensation and the level-scheduled
//! `GMOD` pass over the call multi-graph's condensation — share one
//! dataflow orientation: a component's value is a function of its
//! *successors'* values (callees, bound formals), and components are
//! processed successors-first (ascending [`SccId`] or sinks-first level
//! order). [`DirtySweep`] tracks, during such a sweep, which components
//! must be recomputed:
//!
//! * components whose inputs changed outright (edited seeds, changed
//!   membership) are **seeded** dirty before the sweep;
//! * when a dirty component is recomputed and its value actually
//!   *changed*, every predecessor becomes dirty ([`DirtySweep::update`]
//!   with `changed = true`);
//! * when a recomputation reproduces the cached value, the dirtiness
//!   stops there — predecessors whose other inputs are clean keep their
//!   cached fixpoints ("downward only past unchanged fixpoints").
//!
//! Because the processing order is successors-first, a predecessor is
//! always visited *after* every component that could dirty it, so one
//! sweep suffices; no worklist is needed.

use crate::digraph::DiGraph;
use crate::scc::SccId;

/// Dirty-component bookkeeping for one successors-first sweep over a
/// condensation (see the module docs).
///
/// # Examples
///
/// ```
/// use modref_graph::{DiGraph, DirtySweep};
///
/// // Condensation 2 → 1 → 0 (ascending ids = successors first).
/// let g = DiGraph::from_edges(3, [(2, 1), (1, 0)]);
/// let mut sweep = DirtySweep::new(&g);
/// sweep.seed(1);
/// assert!(!sweep.is_dirty(0));
/// assert!(sweep.is_dirty(1));
/// // Recomputing 1 changes its value → its predecessor 2 gets dirty.
/// sweep.update(1, true);
/// assert!(sweep.is_dirty(2));
/// sweep.update(2, false);
/// assert_eq!((sweep.recomputed(), sweep.reused()), (2, 0));
/// ```
#[derive(Debug, Clone)]
pub struct DirtySweep {
    preds: Vec<Vec<SccId>>,
    dirty: Vec<bool>,
    reused: usize,
    recomputed: usize,
}

impl DirtySweep {
    /// Prepares a sweep over `condensed` (a [`Condensation::graph`],
    /// though any acyclic [`DiGraph`] whose sweep order is
    /// successors-first works). All components start clean.
    ///
    /// [`Condensation::graph`]: crate::condense::Condensation::graph
    pub fn new(condensed: &DiGraph) -> Self {
        let mut preds = vec![Vec::new(); condensed.num_nodes()];
        for e in condensed.edges() {
            if e.from != e.to {
                preds[e.to].push(e.from);
            }
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        DirtySweep {
            preds,
            dirty: vec![false; condensed.num_nodes()],
            reused: 0,
            recomputed: 0,
        }
    }

    /// Marks `c` dirty before the sweep (its inputs changed).
    pub fn seed(&mut self, c: SccId) {
        self.dirty[c] = true;
    }

    /// Whether `c` must be recomputed when the sweep reaches it.
    pub fn is_dirty(&self, c: SccId) -> bool {
        self.dirty[c]
    }

    /// Records that dirty component `c` was recomputed; `changed` says
    /// whether the new value differs from the cached one. On change,
    /// every predecessor of `c` becomes dirty.
    pub fn update(&mut self, c: SccId, changed: bool) {
        self.recomputed += 1;
        if changed {
            for i in 0..self.preds[c].len() {
                let p = self.preds[c][i];
                self.dirty[p] = true;
            }
        }
    }

    /// Records that clean component `c` kept its cached value.
    pub fn skip(&mut self, c: SccId) {
        debug_assert!(!self.dirty[c], "skipped a dirty component");
        self.reused += 1;
    }

    /// Number of components whose cached value was kept.
    pub fn reused(&self) -> usize {
        self.reused
    }

    /// Number of components recomputed.
    pub fn recomputed(&self) -> usize {
        self.recomputed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_graph_reuses_everything() {
        let g = DiGraph::from_edges(4, [(3, 2), (2, 1), (1, 0)]);
        let mut sweep = DirtySweep::new(&g);
        for c in 0..4 {
            assert!(!sweep.is_dirty(c));
            sweep.skip(c);
        }
        assert_eq!(sweep.reused(), 4);
        assert_eq!(sweep.recomputed(), 0);
    }

    #[test]
    fn unchanged_fixpoint_stops_propagation() {
        // Diamond: 3 → {1, 2} → 0.
        let g = DiGraph::from_edges(4, [(3, 1), (3, 2), (1, 0), (2, 0)]);
        let mut sweep = DirtySweep::new(&g);
        sweep.seed(0);
        sweep.update(0, true); // 0 changed → 1 and 2 dirty
        assert!(sweep.is_dirty(1) && sweep.is_dirty(2));
        sweep.update(1, false); // 1's fixpoint survived …
        sweep.update(2, false); // … and so did 2's
        assert!(!sweep.is_dirty(3)); // → 3 is reused
        sweep.skip(3);
        assert_eq!((sweep.recomputed(), sweep.reused()), (3, 1));
    }

    #[test]
    fn parallel_edges_and_self_loops_dedup() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 0);
        g.add_edge(1, 0); // parallel
        g.add_edge(1, 1); // self-loop: a component never dirties itself
        let mut sweep = DirtySweep::new(&g);
        sweep.seed(0);
        sweep.update(0, true);
        assert!(sweep.is_dirty(1));
        assert_eq!(sweep.preds[1], vec![] as Vec<SccId>); // self-loop excluded
        assert_eq!(sweep.preds[0], vec![1]); // parallel edges deduplicated
        sweep.update(1, true); // root change dirties nobody
        assert_eq!(sweep.recomputed(), 2);
    }
}
