//! Reachability and unreachable-node pruning.
//!
//! Section 3.3 of the paper assumes "every procedure in the program is
//! reachable by some call chain" and notes that "a linear-time algorithm
//! that eliminates unreachable procedures can be invoked" first. This module
//! is that algorithm, stated over plain graphs.

use crate::digraph::{DiGraph, NodeId};

/// Returns the set of nodes reachable from `roots` (including the roots),
/// as a boolean vector indexed by node id. `O(N + E)`.
///
/// # Examples
///
/// ```
/// use modref_graph::{reach::reachable_from, DiGraph};
///
/// let g = DiGraph::from_edges(4, [(0, 1), (2, 3)]);
/// let r = reachable_from(&g, [0]);
/// assert_eq!(r, vec![true, true, false, false]);
/// ```
pub fn reachable_from<I: IntoIterator<Item = NodeId>>(g: &DiGraph, roots: I) -> Vec<bool> {
    let mut seen = vec![false; g.num_nodes()];
    let mut stack: Vec<NodeId> = Vec::new();
    for r in roots {
        if !seen[r] {
            seen[r] = true;
            stack.push(r);
        }
    }
    while let Some(v) = stack.pop() {
        for w in g.successor_nodes(v) {
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    seen
}

/// The result of [`prune_unreachable`]: the pruned graph plus id mappings.
#[derive(Debug, Clone)]
pub struct Pruned {
    /// The subgraph induced by the reachable nodes, with dense new ids.
    pub graph: DiGraph,
    /// `old_of[new] = old` node id mapping.
    pub old_of: Vec<NodeId>,
    /// `new_of[old] = Some(new)` for kept nodes, `None` for dropped ones.
    pub new_of: Vec<Option<NodeId>>,
}

/// Drops every node not reachable from `roots`, renumbering the survivors
/// densely in ascending old-id order. `O(N + E)`.
///
/// # Examples
///
/// ```
/// use modref_graph::{reach::prune_unreachable, DiGraph};
///
/// let g = DiGraph::from_edges(4, [(0, 2), (1, 3)]);
/// let pruned = prune_unreachable(&g, [0]);
/// assert_eq!(pruned.graph.num_nodes(), 2);
/// assert_eq!(pruned.old_of, vec![0, 2]);
/// assert_eq!(pruned.new_of[1], None);
/// ```
pub fn prune_unreachable<I: IntoIterator<Item = NodeId>>(g: &DiGraph, roots: I) -> Pruned {
    let keep = reachable_from(g, roots);
    let mut new_of = vec![None; g.num_nodes()];
    let mut old_of = Vec::new();
    for (old, &k) in keep.iter().enumerate() {
        if k {
            new_of[old] = Some(old_of.len());
            old_of.push(old);
        }
    }
    let mut graph = DiGraph::new(old_of.len());
    for e in g.edges() {
        if let (Some(f), Some(t)) = (new_of[e.from], new_of[e.to]) {
            graph.add_edge(f, t);
        }
    }
    Pruned {
        graph,
        old_of,
        new_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reachable_includes_roots_and_closure() {
        let g = DiGraph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let r = reachable_from(&g, [0, 3]);
        assert_eq!(r, vec![true, true, true, true, true]);
        let r0 = reachable_from(&g, [3]);
        assert_eq!(r0, vec![false, false, false, true, true]);
    }

    #[test]
    fn reachable_handles_cycles() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 0), (1, 2)]);
        assert_eq!(reachable_from(&g, [0]), vec![true, true, true]);
    }

    #[test]
    fn no_roots_reaches_nothing() {
        let g = DiGraph::from_edges(2, [(0, 1)]);
        assert_eq!(reachable_from(&g, []), vec![false, false]);
    }

    #[test]
    fn prune_keeps_edge_structure() {
        // 1 is unreachable; edges touching it vanish.
        let g = DiGraph::from_edges(4, [(0, 2), (1, 2), (2, 3), (1, 1)]);
        let p = prune_unreachable(&g, [0]);
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 2);
        assert_eq!(p.old_of, vec![0, 2, 3]);
        let new2 = p.new_of[2].unwrap();
        let new3 = p.new_of[3].unwrap();
        assert_eq!(
            p.graph.successor_nodes(new2).collect::<Vec<_>>(),
            vec![new3]
        );
    }

    #[test]
    fn prune_all_reachable_is_identity_shape() {
        let g = DiGraph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let p = prune_unreachable(&g, [0]);
        assert_eq!(p.graph.num_nodes(), 3);
        assert_eq!(p.graph.num_edges(), 3);
        assert_eq!(p.old_of, vec![0, 1, 2]);
    }
}
