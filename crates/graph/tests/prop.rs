//! Property tests: SCC/DFS/condensation invariants on random multi-graphs.

use modref_graph::{
    reach::reachable_from, tarjan, topo::topological_order, Condensation, DepthFirst, DiGraph,
    EdgeKind,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..40).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..120)
            .prop_map(move |edges| DiGraph::from_edges(n, edges))
    })
}

/// Floyd–Warshall style boolean transitive closure, the obvious-but-slow
/// reachability oracle.
fn closure(g: &DiGraph) -> Vec<Vec<bool>> {
    let n = g.num_nodes();
    let mut reach = vec![vec![false; n]; n];
    for e in g.edges() {
        reach[e.from][e.to] = true;
    }
    #[allow(clippy::needless_range_loop)] // triple-index closure update
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn scc_matches_mutual_reachability(g in arb_graph()) {
        let sccs = tarjan(&g);
        let reach = closure(&g);
        let n = g.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let same = sccs.component_of(a) == sccs.component_of(b);
                let mutual = a == b || (reach[a][b] && reach[b][a]);
                prop_assert_eq!(same, mutual, "nodes {} and {}", a, b);
            }
        }
    }

    #[test]
    fn scc_numbering_is_reverse_topological(g in arb_graph()) {
        let sccs = tarjan(&g);
        for e in g.edges() {
            prop_assert!(sccs.component_of(e.to) <= sccs.component_of(e.from));
        }
    }

    #[test]
    fn condensation_is_acyclic(g in arb_graph()) {
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        prop_assert!(topological_order(cond.graph()).is_ok());
    }

    #[test]
    fn dfs_back_edges_iff_cycles(g in arb_graph()) {
        let dfs = DepthFirst::run(&g, g.nodes());
        let has_back = g
            .edges()
            .enumerate()
            .any(|(i, _)| dfs.edge_kind(i) == Some(EdgeKind::Back));
        let has_cycle = topological_order(&g).is_err();
        prop_assert_eq!(has_back, has_cycle);
    }

    #[test]
    fn dfs_covers_all_nodes_when_rooted_everywhere(g in arb_graph()) {
        let dfs = DepthFirst::run(&g, g.nodes());
        prop_assert_eq!(dfs.preorder().len(), g.num_nodes());
        prop_assert_eq!(dfs.postorder().len(), g.num_nodes());
        for (i, _) in g.edges().enumerate() {
            prop_assert!(dfs.edge_kind(i).is_some());
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn reachability_matches_closure(g in arb_graph()) {
        let reach = closure(&g);
        let n = g.num_nodes();
        for root in 0..n {
            let r = reachable_from(&g, [root]);
            for v in 0..n {
                prop_assert_eq!(r[v], v == root || reach[root][v]);
            }
        }
    }

    #[test]
    fn postorder_children_before_parents_on_tree_edges(g in arb_graph()) {
        let dfs = DepthFirst::run(&g, g.nodes());
        let finish_pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, &v) in dfs.postorder().iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (i, e) in g.edges().enumerate() {
            if dfs.edge_kind(i) == Some(EdgeKind::Tree) {
                prop_assert!(finish_pos[e.to] < finish_pos[e.from]);
            }
        }
    }
}
