//! Property tests: SCC/DFS/condensation invariants on random multi-graphs.

use modref_check::prelude::*;
use modref_graph::{
    reach::reachable_from, tarjan, topo::topological_order, Condensation, DepthFirst, DiGraph,
    EdgeKind,
};

/// A random multi-graph as `(n, edges)`: up to 40 nodes, up to 120 edges
/// (duplicates and self-loops included). Shrinking drops edges — halves
/// first, then singles — which is what makes SCC counterexamples small.
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    custom(
        |rng: &mut Rng| {
            let n = rng.gen_range(1..40usize);
            let m = rng.gen_range(0..120usize);
            let edges = (0..m)
                .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect();
            (n, edges)
        },
        |&(n, ref edges): &(usize, Vec<(usize, usize)>)| {
            let mut out = Vec::new();
            let m = edges.len();
            if m > 0 {
                out.push((n, edges[m / 2..].to_vec()));
                out.push((n, edges[..m / 2].to_vec()));
                for i in (0..m).rev().take(8) {
                    let mut e = edges.clone();
                    e.remove(i);
                    out.push((n, e));
                }
            }
            out
        },
    )
}

fn graph_of((n, edges): &(usize, Vec<(usize, usize)>)) -> DiGraph {
    DiGraph::from_edges(*n, edges.iter().copied())
}

/// Floyd–Warshall style boolean transitive closure, the obvious-but-slow
/// reachability oracle.
fn closure(g: &DiGraph) -> Vec<Vec<bool>> {
    let n = g.num_nodes();
    let mut reach = vec![vec![false; n]; n];
    for e in g.edges() {
        reach[e.from][e.to] = true;
    }
    #[allow(clippy::needless_range_loop)] // triple-index closure update
    for k in 0..n {
        for i in 0..n {
            if reach[i][k] {
                for j in 0..n {
                    if reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
    }
    reach
}

property! {
    #![cases = 64]

    #[allow(clippy::needless_range_loop)]
    fn scc_matches_mutual_reachability(raw in arb_graph()) {
        let g = graph_of(&raw);
        let sccs = tarjan(&g);
        let reach = closure(&g);
        let n = g.num_nodes();
        for a in 0..n {
            for b in 0..n {
                let same = sccs.component_of(a) == sccs.component_of(b);
                let mutual = a == b || (reach[a][b] && reach[b][a]);
                prop_assert_eq!(same, mutual, "nodes {} and {}", a, b);
            }
        }
    }

    fn scc_numbering_is_reverse_topological(raw in arb_graph()) {
        let g = graph_of(&raw);
        let sccs = tarjan(&g);
        for e in g.edges() {
            prop_assert!(sccs.component_of(e.to) <= sccs.component_of(e.from));
        }
    }

    fn condensation_is_acyclic(raw in arb_graph()) {
        let g = graph_of(&raw);
        let sccs = tarjan(&g);
        let cond = Condensation::build(&g, &sccs);
        prop_assert!(topological_order(cond.graph()).is_ok());
    }

    fn dfs_back_edges_iff_cycles(raw in arb_graph()) {
        let g = graph_of(&raw);
        let dfs = DepthFirst::run(&g, g.nodes());
        let has_back = g
            .edges()
            .enumerate()
            .any(|(i, _)| dfs.edge_kind(i) == Some(EdgeKind::Back));
        let has_cycle = topological_order(&g).is_err();
        prop_assert_eq!(has_back, has_cycle);
    }

    fn dfs_covers_all_nodes_when_rooted_everywhere(raw in arb_graph()) {
        let g = graph_of(&raw);
        let dfs = DepthFirst::run(&g, g.nodes());
        prop_assert_eq!(dfs.preorder().len(), g.num_nodes());
        prop_assert_eq!(dfs.postorder().len(), g.num_nodes());
        for (i, _) in g.edges().enumerate() {
            prop_assert!(dfs.edge_kind(i).is_some());
        }
    }

    #[allow(clippy::needless_range_loop)]
    fn reachability_matches_closure(raw in arb_graph()) {
        let g = graph_of(&raw);
        let reach = closure(&g);
        let n = g.num_nodes();
        for root in 0..n {
            let r = reachable_from(&g, [root]);
            for v in 0..n {
                prop_assert_eq!(r[v], v == root || reach[root][v]);
            }
        }
    }

    fn postorder_children_before_parents_on_tree_edges(raw in arb_graph()) {
        let g = graph_of(&raw);
        let dfs = DepthFirst::run(&g, g.nodes());
        let finish_pos: Vec<usize> = {
            let mut p = vec![0; g.num_nodes()];
            for (i, &v) in dfs.postorder().iter().enumerate() {
                p[v] = i;
            }
            p
        };
        for (i, e) in g.edges().enumerate() {
            if dfs.edge_kind(i) == Some(EdgeKind::Tree) {
                prop_assert!(finish_pos[e.to] < finish_pos[e.from]);
            }
        }
    }
}
