//! Property tests for the dynamically maintained condensation and the
//! sparse early-cutoff sweep.
//!
//! Two walls:
//!
//! * after **arbitrary edge churn** (random interleavings of inserts and
//!   deletes, audited after *every* patch) the maintained
//!   `(Sccs, condensation, Levels)` triple is indistinguishable from a
//!   from-scratch recompute;
//! * on a random condensation with random seed perturbations, the
//!   [`SparseSweep`] recomputes a **subset** of the components the dense
//!   [`DirtySweep`] touches, and both land on exactly the from-scratch
//!   fixpoint — the cutoff never trades soundness for sparseness.

use modref_check::prelude::*;
use modref_check::runner::CaseResult;
use modref_graph::{
    tarjan, Condensation, DiGraph, DirtySweep, DynCondensation, Levels, NodeId, SccId, SparseSweep,
};

/// Canonical partition: sorted member lists, sorted.
fn canon_partition(sccs: &modref_graph::Sccs) -> Vec<Vec<NodeId>> {
    let mut sets: Vec<Vec<NodeId>> = sccs
        .iter()
        .map(|m| {
            let mut v = m.to_vec();
            v.sort_unstable();
            v
        })
        .collect();
    sets.sort();
    sets
}

fn sorted_edges(g: &DiGraph) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = g.edges().map(|e| (e.from, e.to)).collect();
    v.sort_unstable();
    v
}

/// Propagates a failed audit out of the enclosing property body.
macro_rules! check_audit {
    ($dc:expr, $edges:expr) => {
        match audit($dc, $edges) {
            CaseResult::Pass => {}
            other => return other,
        }
    };
}

/// Full structural audit of a [`DynCondensation`] against from-scratch
/// recomputes and the expected edge multiset.
fn audit(dc: &DynCondensation, edges: &[(usize, usize)]) -> CaseResult {
    let mut expect = edges.to_vec();
    expect.sort_unstable();
    prop_assert_eq!(sorted_edges(dc.graph()), expect, "maintained edge multiset");

    // Partition equals scratch Tarjan (up to renaming).
    let scratch = tarjan(dc.graph());
    prop_assert_eq!(
        canon_partition(dc.sccs()),
        canon_partition(&scratch),
        "partition drifted from scratch Tarjan"
    );

    // Numbering invariant on the maintained ids.
    for e in dc.graph().edges() {
        let (a, b) = (
            dc.sccs().component_of(e.from),
            dc.sccs().component_of(e.to),
        );
        prop_assert!(b <= a, "edge {:?} maps to comps {} -> {}", e, a, b);
    }

    // Quotient graph and predecessors equal a scratch condensation of the
    // maintained numbering.
    let fresh = Condensation::build(dc.graph(), dc.sccs());
    prop_assert_eq!(sorted_edges(dc.cond()), sorted_edges(fresh.graph()));
    for (c, preds) in dc.cond_preds().iter().enumerate() {
        let mut expect: Vec<SccId> = dc
            .cond()
            .edges()
            .filter(|e| e.to == c)
            .map(|e| e.from)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(preds.clone(), expect, "cond_preds[{}]", c);
    }

    // Levels (map *and* groups) equal a scratch recompute.
    let fresh_levels = Levels::compute(dc.cond());
    prop_assert_eq!(dc.levels().level_map(), fresh_levels.level_map());
    prop_assert_eq!(dc.levels().num_levels(), fresh_levels.num_levels());
    for l in 0..fresh_levels.num_levels() {
        prop_assert_eq!(dc.levels().group(l), fresh_levels.group(l), "group {}", l);
    }

    // comp_pos agrees with the member lists.
    for (c, ms) in dc.sccs().iter().enumerate() {
        for (i, &n) in ms.iter().enumerate() {
            prop_assert_eq!(dc.sccs().component_of(n), c);
            prop_assert_eq!(dc.comp_pos()[n], i, "comp_pos[{}]", n);
        }
    }
    CaseResult::Pass
}

/// A churn script: `n` nodes and a list of `(kind, a, b)` steps. Kinds
/// `< 6` insert edge `(a % n, b % n)`; kinds `>= 6` delete the present
/// edge at index `b % len` (falling back to insert when none exist).
/// Shrinking drops steps — halves first, then singles from the tail.
fn arb_churn() -> impl Strategy<Value = (usize, Vec<(u8, usize, usize)>)> {
    custom(
        |rng: &mut Rng| {
            let n = rng.gen_range(2..20usize);
            let steps = rng.gen_range(1..48usize);
            let ops = (0..steps)
                .map(|_| {
                    (
                        rng.gen_range(0..10u64) as u8,
                        rng.gen_range(0..n),
                        rng.gen_range(0..1 << 30),
                    )
                })
                .collect();
            (n, ops)
        },
        |&(n, ref ops): &(usize, Vec<(u8, usize, usize)>)| {
            let mut out = Vec::new();
            let m = ops.len();
            if m > 0 {
                out.push((n, ops[..m / 2].to_vec()));
                out.push((n, ops[m / 2..].to_vec()));
                for i in (0..m).rev().take(8) {
                    let mut o = ops.clone();
                    o.remove(i);
                    out.push((n, o));
                }
            }
            out
        },
    )
}

/// A random condensation-shaped DAG (every edge `i → j` with `j < i`, so
/// ascending id is successors-first) plus old/new seed masks and extra
/// over-approximate dirt, for the cutoff-subset property.
#[allow(clippy::type_complexity)]
fn arb_cutoff_case() -> impl Strategy<Value = (usize, Vec<(usize, usize)>, Vec<u64>, Vec<u64>, Vec<usize>)>
{
    custom(
        |rng: &mut Rng| {
            let n = rng.gen_range(2..24usize);
            let m = rng.gen_range(0..60usize);
            let edges: Vec<(usize, usize)> = (0..m)
                .filter_map(|_| {
                    let a = rng.gen_range(0..n);
                    let b = rng.gen_range(0..n);
                    (a != b).then(|| (a.max(b), a.min(b)))
                })
                .collect();
            let old: Vec<u64> = (0..n).map(|_| rng.gen_range(0..256u64)).collect();
            let mut new = old.clone();
            for _ in 0..rng.gen_range(1..4usize) {
                let c = rng.gen_range(0..n);
                // Half the perturbations are no-ops: seeds rewritten to the
                // same value, the case early cutoff exists to exploit.
                if rng.gen_bool(0.5) {
                    new[c] ^= 1u64 << rng.gen_range(0..8u32);
                }
            }
            let extra: Vec<usize> = (0..rng.gen_range(0..4usize))
                .map(|_| rng.gen_range(0..n))
                .collect();
            (n, edges, old, new, extra)
        },
        |_| Vec::new(),
    )
}

/// The fixpoint the sweeps must agree on: `value(c) = seed(c) | OR of
/// successor values`, solved successors-first.
fn scratch_fixpoint(n: usize, g: &DiGraph, seeds: &[u64]) -> Vec<u64> {
    let mut vals = vec![0u64; n];
    for c in 0..n {
        let mut v = seeds[c];
        for d in g.successor_nodes(c) {
            v |= vals[d];
        }
        vals[c] = v;
    }
    vals
}

property! {
    #![cases = 64]

    /// After every single patch of an arbitrary insert/delete interleaving,
    /// the maintained condensation equals a from-scratch recompute.
    fn dyncond_equals_scratch_under_churn(case in arb_churn()) {
        let (n, ops) = case;
        let mut dc = DynCondensation::build(DiGraph::new(n));
        let mut edges: Vec<(usize, usize)> = Vec::new();
        check_audit!(&dc, &edges);
        for &(kind, a, b) in &ops {
            if kind < 6 || edges.is_empty() {
                let (u, v) = (a % n, b % n);
                dc.insert_edge(u, v);
                edges.push((u, v));
            } else {
                let (u, v) = edges.swap_remove(b % edges.len());
                dc.delete_edge(u, v);
            }
            check_audit!(&dc, &edges);
        }
    }

}

property! {
    #![cases = 64]

    /// Node growth interleaved with churn: `add_node` keeps the audit
    /// green and new nodes participate in later cycles.
    fn dyncond_add_node_under_churn(case in arb_churn()) {
        let (n, ops) = case;
        let mut dc = DynCondensation::build(DiGraph::new(n));
        let mut nodes = n;
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (step, &(kind, a, b)) in ops.iter().enumerate() {
            if step % 5 == 4 {
                let fresh = dc.add_node();
                prop_assert_eq!(fresh, nodes);
                nodes += 1;
            }
            if kind < 6 || edges.is_empty() {
                let (u, v) = (a % nodes, b % nodes);
                dc.insert_edge(u, v);
                edges.push((u, v));
            } else {
                let (u, v) = edges.swap_remove(b % edges.len());
                dc.delete_edge(u, v);
            }
            check_audit!(&dc, &edges);
        }
    }

}

property! {
    #![cases = 64]

    /// The sparse early-cutoff sweep recomputes a subset of what the dense
    /// PR-5 sweep recomputes, and both reach the exact scratch fixpoint.
    fn cutoff_dirty_set_is_subset_of_dense_sweep(case in arb_cutoff_case()) {
        let (n, edges, old_seeds, new_seeds, extra) = case;
        let g = DiGraph::from_edges(n, edges.iter().copied());
        let old_vals = scratch_fixpoint(n, &g, &old_seeds);
        let want = scratch_fixpoint(n, &g, &new_seeds);

        // Dense PR-5 sweep: visits every component, seeded with the true
        // changes *plus* arbitrary over-approximate extras.
        let mut dense_vals = old_vals.clone();
        let mut dense = DirtySweep::new(&g);
        let mut dense_dirty = vec![false; n];
        for c in 0..n {
            if old_seeds[c] != new_seeds[c] {
                dense.seed(c);
            }
        }
        for &c in &extra {
            dense.seed(c);
        }
        for c in 0..n {
            if dense.is_dirty(c) {
                dense_dirty[c] = true;
                let mut v = new_seeds[c];
                for d in g.successor_nodes(c) {
                    v |= dense_vals[d];
                }
                let changed = v != dense_vals[c];
                dense_vals[c] = v;
                dense.update(c, changed);
            } else {
                dense.skip(c);
            }
        }
        prop_assert_eq!(&dense_vals, &want, "dense sweep missed the fixpoint");

        // Sparse sweep: frontier only, seeded with the true changes only.
        let mut preds: Vec<Vec<SccId>> = vec![Vec::new(); n];
        for e in g.edges() {
            preds[e.to].push(e.from);
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }
        let levels = Levels::compute(&g);
        let mut sparse_vals = old_vals.clone();
        let mut sparse = SparseSweep::new(&preds, levels.level_map());
        let mut sparse_dirty = vec![false; n];
        for c in 0..n {
            if old_seeds[c] != new_seeds[c] {
                sparse.seed(c);
            }
        }
        let mut batch = Vec::new();
        while sparse.next_batch(&mut batch) {
            for &c in &batch {
                sparse_dirty[c] = true;
                let mut v = new_seeds[c];
                for d in g.successor_nodes(c) {
                    v |= sparse_vals[d];
                }
                let changed = v != sparse_vals[c];
                sparse_vals[c] = v;
                sparse.update(c, changed);
            }
        }
        prop_assert_eq!(&sparse_vals, &want, "sparse sweep missed the fixpoint");
        prop_assert!(sparse.recomputed() <= n);

        // Cutoff dirty set ⊆ dense dirty set.
        for c in 0..n {
            prop_assert!(
                !sparse_dirty[c] || dense_dirty[c],
                "component {} recomputed sparsely but not densely",
                c
            );
        }
    }
}
