#![warn(missing_docs)]

//! The **binding multi-graph** `β = (N_β, E_β)` and the linear-time `RMOD`
//! solver — §3 of Cooper & Kennedy, PLDI 1988.
//!
//! The reference-formal-parameter subproblem asks: which formal parameters
//! of each procedure may be modified by an invocation of that procedure?
//! The paper's insight is to change graphs: instead of propagating sets
//! over the call graph, build a graph whose *nodes are formal parameters*
//! and whose edges are individual *binding events* (formal of the caller —
//! or of a lexical ancestor of the caller, §3.3 — passed as an actual to a
//! formal of the callee). On that graph the problem degenerates to one
//! boolean per node, solvable by SCC condensation plus one
//! reverse-topological sweep: `O(N_β + E_β)` *simple logical steps*
//! (Figure 1), versus the swift algorithm's `O(E_C α(E_C, N_C))`
//! *bit-vector* steps.
//!
//! # Examples
//!
//! A binding chain `main ─g→ p(x) ─x→ q(y)` where `q` writes `y`:
//!
//! ```
//! use modref_binding::{solve_rmod, BindingGraph};
//! use modref_ir::{Expr, LocalEffects, ProgramBuilder};
//!
//! # fn main() -> Result<(), modref_ir::ValidationError> {
//! let mut b = ProgramBuilder::new();
//! let g = b.global("g");
//! let q = b.proc_("q", &["y"]);
//! b.assign(q, b.formal(q, 0), Expr::constant(1)); // y := 1
//! let p = b.proc_("p", &["x"]);
//! b.call(p, q, &[b.formal(p, 0)]);                // q(x)
//! let main = b.main();
//! b.call(main, p, &[g]);                          // p(g)
//! let program = b.finish()?;
//!
//! let effects = LocalEffects::compute(&program);
//! let beta = BindingGraph::build(&program);
//! assert_eq!(beta.num_nodes(), 2); // x and y participate
//! assert_eq!(beta.num_edges(), 1); // the x→y binding
//!
//! let rmod = solve_rmod(&program, effects.imod_all(), &beta);
//! assert!(rmod.is_modified(b.formal(q, 0))); // directly
//! assert!(rmod.is_modified(b.formal(p, 0))); // through the chain
//! # Ok(())
//! # }
//! ```

mod multigraph;
mod rmod;

pub use multigraph::{BindingGraph, SizeReport};
pub use rmod::{
    solve_rmod, solve_rmod_guarded, solve_rmod_pooled, solve_rmod_traced, RmodSolution,
    RmodSolutionIn,
};
