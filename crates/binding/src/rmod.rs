//! The Figure 1 `RMOD` solver.

use modref_bitset::{BitSet, EffectSet, OpCounter};
use modref_graph::{tarjan, Condensation};
use modref_guard::{Guard, Interrupt, Strided};
use modref_ir::{ProcId, Program, VarId};

use crate::multigraph::BindingGraph;

/// Charges the counter delta since `last` against the guard and advances
/// the snapshot — budget enforcement in exactly the units the stats report.
fn settle(guard: &Guard, stats: &OpCounter, last: &mut OpCounter) {
    let d = stats.delta_since(last);
    guard.charge(d.bitvec_steps, d.bool_steps);
    *last = *stats;
}

/// The solution of the reference-formal-parameter problem: for each
/// procedure `p`, `RMOD(p)` — the formals of `p` that may be modified by
/// an invocation of `p` (§3.2).
#[derive(Debug, Clone)]
pub struct RmodSolutionIn<S: EffectSet> {
    rmod: Vec<S>,
    modified: S,
    stats: OpCounter,
}

/// [`RmodSolutionIn`] over the paper's dense bit vectors — the default
/// representation of the public API.
pub type RmodSolution = RmodSolutionIn<BitSet>;

impl<S: EffectSet> RmodSolutionIn<S> {
    /// `RMOD(p)` as a set over the program's variable universe; only bits
    /// of `p`'s formals can be set.
    pub fn rmod(&self, p: ProcId) -> &S {
        &self.rmod[p.index()]
    }

    /// All `RMOD` sets, indexed by procedure.
    pub fn rmod_all(&self) -> &[S] {
        &self.rmod
    }

    /// `true` if the formal parameter `formal` may be modified by an
    /// invocation of its owner. `false` for non-formals.
    pub fn is_modified(&self, formal: VarId) -> bool {
        self.modified.contains(formal.index())
    }

    /// The sound over-approximation used when the Figure 1 solver is cut
    /// short: every reference formal of every procedure is assumed
    /// modified. `RMOD` ranges over formals only, so this is the top of
    /// its lattice.
    pub fn conservative(program: &Program) -> Self {
        let nv = program.num_vars();
        let mut rmod = vec![S::empty(nv); program.num_procs()];
        let mut modified = S::empty(nv);
        for p in program.procs() {
            for &f in program.proc_(p).formals() {
                rmod[p.index()].insert(f.index());
                modified.insert(f.index());
            }
        }
        RmodSolutionIn {
            rmod,
            modified,
            stats: OpCounter::new(),
        }
    }

    /// Work performed, in the paper's cost model (§3.2 counts *simple
    /// logical steps*, reported as `bool_steps`).
    pub fn stats(&self) -> OpCounter {
        self.stats
    }
}

/// Solves equation (6) by the four steps of Figure 1:
///
/// 1. find the strongly connected components of `β`;
/// 2. give each SCC a representer whose `IMOD` is the OR of its members';
/// 3. sweep the condensation from leaves to roots applying
///    `RMOD(m) = IMOD(m) ∨ ⋁_{(m,n)∈E_β} RMOD(n)`;
/// 4. broadcast each representer's value back to its members.
///
/// Every step is `O(N_β + E_β)`; the counter in the result records the
/// actual boolean-step totals so experiments can verify linearity.
///
/// `initial` holds one seed set per procedure: for the `MOD` problem the
/// (§3.3-extended) `IMOD(p)` sets, for the analogous `USE` problem the
/// `IUSE(p)` sets. Only the bits of each procedure's own formals are read.
///
/// # Panics
///
/// Panics if `initial.len() != program.num_procs()`.
///
/// # Examples
///
/// See the crate-level example in [`crate`].
pub fn solve_rmod<S: EffectSet>(
    program: &Program,
    initial: &[S],
    beta: &BindingGraph,
) -> RmodSolutionIn<S> {
    solve_rmod_pooled(program, initial, beta, &modref_par::ThreadPool::new(1))
}

/// [`solve_rmod`] with step (4) — the per-formal broadcast that
/// materialises the `RMOD(p)` sets — fanned out over `pool`, one task per
/// procedure. Steps (1)–(3) are a single `O(N_β + E_β)` boolean sweep and
/// stay sequential. A procedure's set depends only on the (by then final)
/// representer values, so the output is identical to [`solve_rmod`] at
/// any thread count; a sequential pool takes the exact sequential path.
pub fn solve_rmod_pooled<S: EffectSet>(
    program: &Program,
    initial: &[S],
    beta: &BindingGraph,
    pool: &modref_par::ThreadPool,
) -> RmodSolutionIn<S> {
    solve_rmod_guarded(program, initial, beta, pool, &Guard::unlimited())
        .expect("an unlimited guard cannot interrupt the solver")
}

/// [`solve_rmod_pooled`] under a cooperative [`Guard`]: the solver polls at
/// its entry checkpoint (`"rmod"`), at inner-loop strides, and between pool
/// chunks, charging its boolean steps against the budget as it goes. On a
/// trip it abandons the remaining work and reports the interrupt; partial
/// results are discarded (the caller substitutes the conservative summary).
pub fn solve_rmod_guarded<S: EffectSet>(
    program: &Program,
    initial: &[S],
    beta: &BindingGraph,
    pool: &modref_par::ThreadPool,
    guard: &Guard,
) -> Result<RmodSolutionIn<S>, Interrupt> {
    solve_rmod_traced(
        program,
        initial,
        beta,
        pool,
        guard,
        &modref_trace::Trace::disabled(),
    )
}

/// [`solve_rmod_guarded`] recording one span per Figure 1 stage into
/// `trace` — `rmod.seed` (per-node `IMOD` bits), `rmod.sccs` (step 1),
/// `rmod.sweep` (steps 2–3 over the condensation), and `rmod.broadcast`
/// (step 4) — each annotated with its share of the solver's boolean
/// steps. Identical output at any thread count; tracing only observes.
///
/// # Errors
///
/// As for [`solve_rmod_guarded`].
pub fn solve_rmod_traced<S: EffectSet>(
    program: &Program,
    initial: &[S],
    beta: &BindingGraph,
    pool: &modref_par::ThreadPool,
    guard: &Guard,
    trace: &modref_trace::Trace,
) -> Result<RmodSolutionIn<S>, Interrupt> {
    assert_eq!(
        initial.len(),
        program.num_procs(),
        "one initial set per procedure"
    );
    guard.checkpoint("rmod")?;
    let mut stats = OpCounter::new();
    let mut last = OpCounter::new();
    let mut stride = Strided::new(512);
    let n = beta.num_nodes();

    // IMOD(fp) per β node: is the formal modified locally in its owner
    // (with the §3.3 nesting extension already folded into `effects`)?
    let mut imod_bit = Vec::with_capacity(n);
    {
        let mut span = trace.span("rmod.seed");
        for node in 0..n {
            stride.tick(guard)?;
            let formal = beta.formal_of_node(node);
            let (owner, _) = program
                .formal_position(formal)
                .expect("β nodes are formals");
            stats.bool_steps += 1;
            stats.nodes_visited += 1;
            imod_bit.push(initial[owner.index()].contains(formal.index()));
        }
        span.arg("beta_nodes", n as u64);
        span.arg("bool_steps", stats.bool_steps);
    }
    settle(guard, &stats, &mut last);

    // Step (1): SCCs.
    let sccs = {
        let mut span = trace.span("rmod.sccs");
        let sccs = tarjan(beta.graph());
        span.arg("components", sccs.len() as u64);
        span.arg("beta_edges", beta.num_edges() as u64);
        sccs
    };
    stats.nodes_visited += n as u64;
    stats.edges_visited += beta.num_edges() as u64;
    settle(guard, &stats, &mut last);
    guard.check()?;

    // Steps (2)-(3) over the condensation.
    let before_sweep = stats.bool_steps;
    let mut sweep_span = trace.span("rmod.sweep");

    // Step (2): representer IMOD = OR over members.
    let mut rep_value = vec![false; sccs.len()];
    for (c, members) in sccs.iter().enumerate() {
        for &m in members {
            stride.tick(guard)?;
            rep_value[c] |= imod_bit[m];
            stats.bool_steps += 1;
        }
    }

    // Step (3): leaves-to-roots sweep of equation (6). Tarjan numbers
    // components in reverse topological order, so ascending id order *is*
    // leaves first, and every successor is already final.
    let cond = Condensation::build(beta.graph(), &sccs);
    for c in 0..sccs.len() {
        stride.tick(guard)?;
        for d in cond.graph().successor_nodes(c) {
            rep_value[c] |= rep_value[d];
            stats.bool_steps += 1;
            stats.edges_visited += 1;
        }
    }
    sweep_span.arg("bool_steps", stats.bool_steps - before_sweep);
    drop(sweep_span);
    settle(guard, &stats, &mut last);

    // Step (4): broadcast to members, materialising per-procedure sets.
    // Formals never bound at any site have no β node; their RMOD bit is
    // just their IMOD bit.
    let before_broadcast = stats.bool_steps;
    let mut broadcast_span = trace.span("rmod.broadcast");
    broadcast_span.arg("pooled", u64::from(!pool.is_sequential()));
    let mut rmod;
    let mut modified = S::empty(program.num_vars());
    if pool.is_sequential() {
        rmod = vec![S::empty(program.num_vars()); program.num_procs()];
        for node in 0..n {
            stride.tick(guard)?;
            stats.bool_steps += 1;
            if rep_value[sccs.component_of(node)] {
                let formal = beta.formal_of_node(node);
                let (owner, _) = program.formal_position(formal).expect("formal");
                rmod[owner.index()].insert(formal.index());
                modified.insert(formal.index());
            }
        }
        for p in program.procs() {
            stride.tick(guard)?;
            for &f in program.proc_(p).formals() {
                stats.bool_steps += 1;
                if beta.node_of_formal(f).is_none() && initial[p.index()].contains(f.index()) {
                    rmod[p.index()].insert(f.index());
                    modified.insert(f.index());
                }
            }
        }
    } else {
        // One task per procedure: each writes only its own set, reading
        // the final representer values, so the sets (though not the order
        // in which they are produced) match the sequential sweep exactly.
        // Workers drop out between chunks once the guard trips; an
        // occasional direct poll inside the body converts a passed
        // deadline or cancellation into a trip even while every thread is
        // busy in here.
        let results: Vec<Option<(S, u64)>> = pool.par_map_while(
            program.num_procs(),
            || !guard.should_stop(),
            |pi| {
                if pi % 64 == 0 {
                    let _ = guard.check();
                }
                let p = ProcId::new(pi);
                let mut set = S::empty(program.num_vars());
                let mut steps = 0u64;
                for &f in program.proc_(p).formals() {
                    steps += 1;
                    let in_rmod = match beta.node_of_formal(f) {
                        Some(node) => rep_value[sccs.component_of(node)],
                        None => initial[pi].contains(f.index()),
                    };
                    if in_rmod {
                        set.insert(f.index());
                    }
                }
                (set, steps)
            },
        );
        rmod = Vec::with_capacity(program.num_procs());
        for slot in results {
            let Some((set, steps)) = slot else {
                guard.check()?;
                return Err(guard.interrupt().unwrap_or(Interrupt::Halted));
            };
            stats.bool_steps += steps;
            modified.union_with(&set);
            rmod.push(set);
        }
        settle(guard, &stats, &mut last);
        guard.check()?;
    }

    broadcast_span.arg("bool_steps", stats.bool_steps - before_broadcast);
    drop(broadcast_span);

    Ok(RmodSolutionIn {
        rmod,
        modified,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{Expr, LocalEffects, ProgramBuilder};

    fn analyse(b: &ProgramBuilder) -> (Program, RmodSolution) {
        let program = b.finish().expect("valid");
        let effects = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);
        let solution = solve_rmod(&program, effects.imod_all(), &beta);
        (program, solution)
    }

    #[test]
    fn direct_modification_without_bindings() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x", "y"]);
        b.assign(p, b.formal(p, 0), Expr::constant(1));
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g, g]);
        let (_, sol) = analyse(&b);
        assert!(sol.is_modified(b.formal(p, 0)));
        assert!(!sol.is_modified(b.formal(p, 1)));
    }

    #[test]
    fn chain_propagates_backwards() {
        // main → a(x) → b(y) → c(z); only c writes z.
        let mut b = ProgramBuilder::new();
        let c = b.proc_("c", &["z"]);
        b.assign(c, b.formal(c, 0), Expr::constant(1));
        let bb = b.proc_("b", &["y"]);
        b.call(bb, c, &[b.formal(bb, 0)]);
        let a = b.proc_("a", &["x"]);
        b.call(a, bb, &[b.formal(a, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, a, &[g]);
        let (_, sol) = analyse(&b);
        assert!(sol.is_modified(b.formal(a, 0)));
        assert!(sol.is_modified(b.formal(bb, 0)));
        assert!(sol.is_modified(b.formal(c, 0)));
    }

    #[test]
    fn chain_stops_where_nothing_is_modified() {
        // a(x) → b(y); b never writes y.
        let mut b = ProgramBuilder::new();
        let bb = b.proc_("b", &["y"]);
        b.print(bb, Expr::load(b.formal(bb, 0)));
        let a = b.proc_("a", &["x"]);
        b.call(a, bb, &[b.formal(a, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, a, &[g]);
        let (_, sol) = analyse(&b);
        assert!(!sol.is_modified(b.formal(a, 0)));
        assert!(!sol.is_modified(b.formal(bb, 0)));
    }

    #[test]
    fn cycle_shares_one_answer() {
        // Mutual recursion p(x) ⇄ q(y); only q writes.
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.call(q, p, &[b.formal(q, 0)]);
        b.assign(q, b.formal(q, 0), Expr::constant(7));
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let (_, sol) = analyse(&b);
        assert!(sol.is_modified(b.formal(p, 0)));
        assert!(sol.is_modified(b.formal(q, 0)));
    }

    #[test]
    fn clean_cycle_stays_unmodified() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.call(q, p, &[b.formal(q, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let (_, sol) = analyse(&b);
        assert!(!sol.is_modified(b.formal(p, 0)));
        assert!(!sol.is_modified(b.formal(q, 0)));
    }

    #[test]
    fn rmod_contains_only_own_formals() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.assign(q, b.formal(q, 0), Expr::constant(1));
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let (program, sol) = analyse(&b);
        for proc_ in program.procs() {
            for v in sol.rmod(proc_).iter() {
                let (owner, _) = program
                    .formal_position(modref_ir::VarId::new(v))
                    .expect("rmod holds formals only");
                assert_eq!(owner, proc_);
            }
        }
        assert_eq!(sol.rmod(main).len(), 0);
    }

    #[test]
    fn modification_via_nested_procedure_counts() {
        // §3.3 point 1: p's formal written inside a procedure nested in p.
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let inner = b.nested_proc(p, "inner", &[]);
        b.assign(inner, b.formal(p, 0), Expr::constant(3));
        b.call(p, inner, &[]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let (_, sol) = analyse(&b);
        assert!(sol.is_modified(b.formal(p, 0)));
    }

    #[test]
    fn guarded_solver_matches_unguarded_and_trips_on_zero_budget() {
        let mut b = ProgramBuilder::new();
        let c = b.proc_("c", &["z"]);
        b.assign(c, b.formal(c, 0), Expr::constant(1));
        let a = b.proc_("a", &["x"]);
        b.call(a, c, &[b.formal(a, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, a, &[g]);
        let program = b.finish().expect("valid");
        let effects = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);
        let pool = modref_par::ThreadPool::new(1);

        let plain = solve_rmod(&program, effects.imod_all(), &beta);
        let guarded =
            solve_rmod_guarded(&program, effects.imod_all(), &beta, &pool, &Guard::unlimited())
                .expect("unlimited");
        for p in program.procs() {
            assert_eq!(plain.rmod(p), guarded.rmod(p));
        }
        assert_eq!(plain.stats(), guarded.stats());

        let tight = Guard::new(&modref_guard::Budget::unlimited().with_bool_steps(0));
        let err = solve_rmod_guarded(&program, effects.imod_all(), &beta, &pool, &tight)
            .expect_err("zero budget must trip");
        assert_eq!(err, Interrupt::BoolBudget);
    }

    #[test]
    fn pooled_broadcast_matches_sequential() {
        // Mixed shapes: a modified chain, a clean formal, an unbound
        // formal whose RMOD bit comes straight from IMOD.
        let mut b = ProgramBuilder::new();
        let c = b.proc_("c", &["z"]);
        b.assign(c, b.formal(c, 0), Expr::constant(1));
        let a = b.proc_("a", &["x", "y"]);
        b.call(a, c, &[b.formal(a, 0)]);
        let u = b.proc_("unbound", &["w"]);
        b.assign(u, b.formal(u, 0), Expr::constant(2));
        let g = b.global("g");
        let main = b.main();
        b.call(main, a, &[g, g]);
        let program = b.finish().expect("valid");
        let effects = LocalEffects::compute(&program);
        let beta = BindingGraph::build(&program);

        let seq = solve_rmod(&program, effects.imod_all(), &beta);
        for threads in [2, 4] {
            let pool = modref_par::ThreadPool::new(threads);
            let par = solve_rmod_pooled(&program, effects.imod_all(), &beta, &pool);
            for p in program.procs() {
                assert_eq!(seq.rmod(p), par.rmod(p), "rmod({p}) differs");
            }
            assert!(par.is_modified(b.formal(u, 0)));
            assert!(par.is_modified(b.formal(a, 0)));
            assert!(!par.is_modified(b.formal(a, 1)));
        }
    }

    #[test]
    fn work_is_linear_in_beta() {
        // A long chain: bool steps should grow linearly with its length.
        fn chain(len: usize) -> u64 {
            let mut b = ProgramBuilder::new();
            let mut procs = Vec::new();
            for i in 0..len {
                procs.push(b.proc_(&format!("p{i}"), &["x"]));
            }
            b.assign(
                procs[len - 1],
                b.formal(procs[len - 1], 0),
                Expr::constant(1),
            );
            for i in 0..len - 1 {
                b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
            }
            let g = b.global("g");
            let main = b.main();
            b.call(main, procs[0], &[g]);
            let program = b.finish().expect("valid");
            let effects = LocalEffects::compute(&program);
            let beta = BindingGraph::build(&program);
            solve_rmod(&program, effects.imod_all(), &beta)
                .stats()
                .bool_steps
        }
        let small = chain(50);
        let large = chain(500);
        let ratio = large as f64 / small as f64;
        assert!(
            (8.0..12.0).contains(&ratio),
            "expected ~10x work for 10x size, got {ratio:.2} ({small} → {large})"
        );
    }
}
