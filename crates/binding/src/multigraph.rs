//! Construction of the binding multi-graph (§3.1, §3.3).

use modref_graph::DiGraph;
use modref_ir::{Actual, CallSiteId, Program, VarId};

/// The binding multi-graph `β`.
///
/// Nodes represent formal parameters; following §3.1, a formal is given a
/// node **only if it is the endpoint of at least one edge** (so
/// `2·E_β ≥ N_β` always holds — an invariant the tests check). Each edge is
/// one binding event: at some call site, a formal of the calling context is
/// passed by reference to a formal of the callee. Parallel edges arise when
/// the same pair is bound at several sites.
///
/// The §3.3 nesting rule is applied during construction: an actual that is
/// a formal of a lexical *ancestor* of the procedure containing the call
/// site also generates an edge (from the ancestor's formal).
#[derive(Debug, Clone)]
pub struct BindingGraph {
    graph: DiGraph,
    formal_of_node: Vec<VarId>,
    node_of_var: Vec<Option<usize>>,
    site_of_edge: Vec<CallSiteId>,
}

impl BindingGraph {
    /// Builds `β` by visiting every call site once — linear in the size of
    /// the program, as §3.1 claims.
    pub fn build(program: &Program) -> Self {
        let mut builder = Builder {
            program,
            graph: BindingGraph {
                graph: DiGraph::new(0),
                formal_of_node: Vec::new(),
                node_of_var: vec![None; program.num_vars()],
                site_of_edge: Vec::new(),
            },
        };
        builder.run();
        builder.graph
    }

    /// `N_β`: formal parameters participating in at least one binding.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// `E_β`: binding events.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// The underlying multi-graph (node ids are `β`-internal).
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The formal parameter a `β` node stands for.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn formal_of_node(&self, node: usize) -> VarId {
        self.formal_of_node[node]
    }

    /// The `β` node of a formal, if it participates in any binding.
    pub fn node_of_formal(&self, formal: VarId) -> Option<usize> {
        self.node_of_var[formal.index()]
    }

    /// The call site that produced edge `e`.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    pub fn site_of_edge(&self, e: usize) -> CallSiteId {
        self.site_of_edge[e]
    }

    /// Size comparison against the call multi-graph, for checking the §3.1
    /// bounds `N_β ≤ μ_f·N_C` and `E_β ≤ μ_a·E_C`.
    pub fn size_report(&self, program: &Program) -> SizeReport {
        SizeReport {
            beta_nodes: self.num_nodes(),
            beta_edges: self.num_edges(),
            call_nodes: program.num_procs(),
            call_edges: program.num_sites(),
            mean_formals: program.mean_formals(),
            mean_actuals: program.mean_actuals(),
        }
    }

    fn node_for(&mut self, formal: VarId) -> usize {
        if let Some(n) = self.node_of_var[formal.index()] {
            return n;
        }
        let n = self.graph.add_node();
        self.formal_of_node.push(formal);
        self.node_of_var[formal.index()] = Some(n);
        n
    }
}

/// Measured sizes of `β` versus the call multi-graph `C` (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeReport {
    /// `N_β`.
    pub beta_nodes: usize,
    /// `E_β`.
    pub beta_edges: usize,
    /// `N_C`.
    pub call_nodes: usize,
    /// `E_C`.
    pub call_edges: usize,
    /// `μ_f`: mean formals per procedure.
    pub mean_formals: f64,
    /// `μ_a`: mean actuals per call site.
    pub mean_actuals: f64,
}

impl SizeReport {
    /// Checks the §3.1 inequalities on this instance.
    pub fn bounds_hold(&self) -> bool {
        let nodes_ok =
            (self.beta_nodes as f64) <= self.mean_formals * self.call_nodes as f64 + 1e-9;
        let edges_ok =
            (self.beta_edges as f64) <= self.mean_actuals * self.call_edges as f64 + 1e-9;
        let degenerate_ok = 2 * self.beta_edges >= self.beta_nodes;
        nodes_ok && edges_ok && degenerate_ok
    }
}

struct Builder<'a> {
    program: &'a Program,
    graph: BindingGraph,
}

impl Builder<'_> {
    fn run(&mut self) {
        for s in self.program.sites() {
            let site = self.program.site(s);
            let caller = site.caller();
            let callee = site.callee();
            for (pos, arg) in site.args().iter().enumerate() {
                let Actual::Ref(r) = arg else { continue };
                // Is the actual a formal of the caller or of one of its
                // lexical ancestors (§3.3)?
                let Some((owner, _)) = self.program.formal_position(r.var) else {
                    continue;
                };
                let in_context =
                    owner == caller || self.program.ancestors(caller).any(|a| a == owner);
                if !in_context {
                    continue;
                }
                let from = self.graph.node_for(r.var);
                let callee_formal = self.program.proc_(callee).formals()[pos];
                let to = self.graph.node_for(callee_formal);
                self.graph.graph.add_edge(from, to);
                self.graph.site_of_edge.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{Expr, ProgramBuilder, Ref, Subscript};

    #[test]
    fn locals_and_globals_generate_no_edges() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        let t = b.local(p, "t");
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[t]); // local actual: no edge
        let main = b.main();
        b.call(main, p, &[g]); // global actual: no edge
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        assert_eq!(beta.num_edges(), 0);
        assert_eq!(beta.num_nodes(), 0);
    }

    #[test]
    fn formal_to_formal_binding_makes_edge() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        assert_eq!(beta.num_nodes(), 2);
        assert_eq!(beta.num_edges(), 1);
        let e = beta.graph().edge(0);
        assert_eq!(beta.formal_of_node(e.from), b.formal(p, 0));
        assert_eq!(beta.formal_of_node(e.to), b.formal(q, 0));
        assert_eq!(beta.site_of_edge(0), modref_ir::CallSiteId::new(0));
    }

    #[test]
    fn repeated_binding_gives_parallel_edges() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call(p, q, &[b.formal(p, 0)]);
        b.call(p, q, &[b.formal(p, 0)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        assert_eq!(beta.num_nodes(), 2);
        assert_eq!(beta.num_edges(), 2); // β is a *multi*-graph
    }

    #[test]
    fn recursion_makes_cycle_in_beta() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        b.call(p, p, &[b.formal(p, 0)]); // p(x) calls p(x)
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        assert_eq!(beta.num_nodes(), 1);
        assert_eq!(beta.num_edges(), 1); // self-loop
        let e = beta.graph().edge(0);
        assert_eq!(e.from, e.to);
    }

    #[test]
    fn ancestor_formal_passed_in_nested_proc() {
        // §3.3 point 2: p's formal used as an actual inside a procedure
        // nested in p.
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        let inner = b.nested_proc(p, "inner", &[]);
        b.call(inner, q, &[b.formal(p, 0)]); // inner passes p's x to q
        b.call(p, inner, &[]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        assert_eq!(beta.num_edges(), 1);
        let e = beta.graph().edge(0);
        assert_eq!(beta.formal_of_node(e.from), b.formal(p, 0));
        assert_eq!(beta.formal_of_node(e.to), b.formal(q, 0));
    }

    #[test]
    fn array_section_of_formal_binds() {
        let mut b = ProgramBuilder::new();
        let p = b.nested_proc_ranked(b.main(), "p", &[("a", 2)]);
        let q = b.nested_proc_ranked(b.main(), "q", &[("row", 1)]);
        let i = b.local(p, "i");
        b.call_args(
            p,
            q,
            vec![Actual::Ref(Ref::indexed(
                b.formal(p, 0),
                [Subscript::Var(i), Subscript::All],
            ))],
        );
        let ga = b.global_array("ga", 2);
        let main = b.main();
        b.call_args(main, p, vec![Actual::Ref(Ref::scalar(ga))]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        // Passing a *section* of formal `a` is still a binding event.
        assert_eq!(beta.num_edges(), 1);
    }

    #[test]
    fn by_value_formal_generates_no_edge() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &["y"]);
        b.call_args(p, q, vec![Actual::Value(Expr::load(b.formal(p, 0)))]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        assert_eq!(BindingGraph::build(&program).num_edges(), 0);
    }

    #[test]
    fn size_report_bounds() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x", "y"]);
        let q = b.proc_("q", &["u"]);
        b.call(p, q, &[b.formal(p, 1)]);
        let g = b.global("g");
        let main = b.main();
        b.call(main, p, &[g, g]);
        let program = b.finish().expect("valid");
        let beta = BindingGraph::build(&program);
        let report = beta.size_report(&program);
        assert!(report.bounds_hold(), "{report:?}");
        assert_eq!(report.beta_nodes, 2);
        assert_eq!(report.beta_edges, 1);
        assert_eq!(report.call_edges, 2);
    }
}
