//! Generator configuration.

/// Tuning knobs for [`crate::generate`].
///
/// All ranges are inclusive. The defaults describe a mid-sized
/// FORTRAN-flavoured program; the constructors produce the families the
/// experiments sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// Number of procedures besides main.
    pub num_procs: usize,
    /// Global scalars (§1: expected to grow with program size).
    pub num_globals: usize,
    /// Global arrays (rank 1–2), participating as section actuals.
    pub num_global_arrays: usize,
    /// Formal parameters per procedure, `(min, max)` — controls `μ_f`.
    pub formals_per_proc: (usize, usize),
    /// Locals per procedure, `(min, max)`.
    pub locals_per_proc: (usize, usize),
    /// Call statements per procedure, `(min, max)` — controls `E_C`.
    pub calls_per_proc: (usize, usize),
    /// Assignments per procedure, `(min, max)`.
    pub writes_per_proc: (usize, usize),
    /// Maximum lexical nesting level of procedure declarations
    /// (`1` = flat FORTRAN-style, `> 1` = Pascal-style).
    pub max_level: u32,
    /// Probability that a new procedure nests inside the previous one
    /// instead of being declared at the top level (when `max_level > 1`).
    pub nesting_bias: f64,
    /// Probability that a by-reference actual is a formal of the calling
    /// context (creating a binding-graph edge) rather than a global or
    /// local.
    pub formal_actual_bias: f64,
    /// Probability that an actual is passed by value.
    pub value_actual_prob: f64,
    /// Probability that a generated call is wrapped in `if`/`while`.
    pub control_flow_prob: f64,
    /// If `true`, add calls from main so every procedure is reachable
    /// (§3.3's standing assumption).
    pub ensure_reachable: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_procs: 20,
            num_globals: 10,
            num_global_arrays: 2,
            formals_per_proc: (0, 4),
            locals_per_proc: (0, 3),
            calls_per_proc: (0, 4),
            writes_per_proc: (1, 4),
            max_level: 1,
            nesting_bias: 0.5,
            formal_actual_bias: 0.5,
            value_actual_prob: 0.15,
            control_flow_prob: 0.3,
            ensure_reachable: true,
        }
    }
}

impl GenConfig {
    /// Flat two-level program with globals growing linearly in size —
    /// the §1 cost-model assumption.
    pub fn fortran_like(num_procs: usize) -> Self {
        GenConfig {
            num_procs,
            num_globals: num_procs.max(4),
            max_level: 1,
            ..GenConfig::default()
        }
    }

    /// Pascal-style program with nesting up to `max_level`.
    pub fn pascal_like(num_procs: usize, max_level: u32) -> Self {
        GenConfig {
            num_procs,
            num_globals: (num_procs / 2).max(4),
            max_level: max_level.max(1),
            nesting_bias: 0.6,
            ..GenConfig::default()
        }
    }

    /// Parameter-heavy program for binding-graph experiments: most
    /// actuals are formals, so `β` approaches its `μ_a · E_C` bound.
    pub fn binding_heavy(num_procs: usize, params: usize) -> Self {
        GenConfig {
            num_procs,
            num_globals: 4,
            formals_per_proc: (params, params),
            formal_actual_bias: 0.9,
            value_actual_prob: 0.02,
            ..GenConfig::default()
        }
    }

    /// Small configs for property tests (fast to generate and to oracle).
    pub fn tiny(num_procs: usize, max_level: u32) -> Self {
        GenConfig {
            num_procs,
            num_globals: 3,
            num_global_arrays: 1,
            formals_per_proc: (0, 2),
            locals_per_proc: (0, 2),
            calls_per_proc: (0, 3),
            writes_per_proc: (0, 2),
            max_level,
            ..GenConfig::default()
        }
    }
}
