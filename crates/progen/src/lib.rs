#![warn(missing_docs)]

//! Synthetic program generation for the `modref` workspace.
//!
//! The 1988 paper predates shared benchmark suites; its claims are
//! asymptotic. This crate supplies the workloads that exercise them:
//!
//! * [`GenConfig`] + [`generate`] — seeded random programs with
//!   configurable size, call fan-out, parameter counts (`μ_a`, `μ_f` of
//!   §3.1), recursion probability, nesting depth, and global-variable
//!   density ("it is reasonable to assume that the number of global
//!   variables will grow linearly with the size of the program", §1).
//!   Every generated program passes `Program::validate`.
//! * [`workloads`] — the named parameter families the benchmark harness
//!   sweeps (binding chains for Figure 1, call-graph families for
//!   Figure 2, nesting ladders for the multi-level algorithm, and the
//!   back-edge ladder that is adversarial for iterative baselines).
//!
//! # Examples
//!
//! ```
//! use modref_progen::{generate, GenConfig};
//!
//! let program = generate(&GenConfig::fortran_like(40), 0xC0FFEE);
//! assert_eq!(program.num_procs(), 41); // + main
//! assert!(program.validate().is_ok());
//! // Same seed, same program.
//! let again = generate(&GenConfig::fortran_like(40), 0xC0FFEE);
//! assert_eq!(program.to_source(), again.to_source());
//! ```

mod config;
mod gen;
pub mod workloads;

pub use config::GenConfig;
pub use gen::generate;
