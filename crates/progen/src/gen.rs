//! The seeded program generator.

use modref_ir::{
    Actual, BinOp, Expr, ProcId, Program, ProgramBuilder, Ref, Stmt, Subscript, VarId,
};
use modref_check::Rng;

use crate::config::GenConfig;

/// Generates a random, *valid* program from `config`, deterministically in
/// `seed`.
///
/// # Panics
///
/// Panics only if the generated program fails validation — which would be
/// a generator bug, not an input condition.
pub fn generate(config: &GenConfig, seed: u64) -> Program {
    let mut rng = Rng::seed_from_u64(seed);
    let mut b = ProgramBuilder::new();
    let mut gen = Gen {
        config,
        rng: &mut rng,
        globals: Vec::new(),
        global_arrays: Vec::new(),
        procs: Vec::new(),
        call_edges: Vec::new(),
    };
    gen.run(&mut b);
    b.finish().expect("generator produced an invalid program")
}

struct Gen<'a> {
    config: &'a GenConfig,
    rng: &'a mut Rng,
    globals: Vec<VarId>,
    /// `(var, rank)`.
    global_arrays: Vec<(VarId, usize)>,
    procs: Vec<ProcId>,
    call_edges: Vec<(ProcId, ProcId)>,
}

impl Gen<'_> {
    fn run(&mut self, b: &mut ProgramBuilder) {
        let cfg = self.config;

        for i in 0..cfg.num_globals {
            self.globals.push(b.global(&format!("g{i}")));
        }
        for i in 0..cfg.num_global_arrays {
            let rank = 1 + (i % 2);
            self.global_arrays
                .push((b.global_array(&format!("arr{i}"), rank), rank));
        }

        // Procedure tree.
        for i in 0..cfg.num_procs {
            let parent = self.pick_parent(b);
            let n_formals = self.range(cfg.formals_per_proc);
            let formals: Vec<(String, usize)> = (0..n_formals)
                .map(|j| {
                    let is_array = !self.global_arrays.is_empty() && self.rng.gen_bool(0.15);
                    (format!("f{j}_{i}"), usize::from(is_array))
                })
                .collect();
            let ranked: Vec<(&str, usize)> =
                formals.iter().map(|(n, r)| (n.as_str(), *r)).collect();
            let p = b.nested_proc_ranked(parent, &format!("proc{i}"), &ranked);
            for j in 0..self.range(cfg.locals_per_proc) {
                b.local(p, &format!("t{j}_{i}"));
            }
            self.procs.push(p);
        }

        // Bodies: writes, reads, and calls.
        let all_procs: Vec<ProcId> = std::iter::once(ProcId::MAIN)
            .chain(self.procs.iter().copied())
            .collect();
        for &p in &all_procs {
            self.gen_writes(b, p);
            self.gen_calls(b, p);
        }

        if cfg.ensure_reachable {
            self.connect_unreachable(b);
        }
    }

    fn pick_parent(&mut self, b: &ProgramBuilder) -> ProcId {
        let cfg = self.config;
        if cfg.max_level > 1 && !self.procs.is_empty() && self.rng.gen_bool(cfg.nesting_bias) {
            // Try a few times to find a proc shallow enough to nest in.
            for _ in 0..4 {
                let candidate = self.procs[self.rng.gen_range(0..self.procs.len())];
                if level_of(b, candidate) < cfg.max_level {
                    return candidate;
                }
            }
        }
        ProcId::MAIN
    }

    fn gen_writes(&mut self, b: &mut ProgramBuilder, p: ProcId) {
        for _ in 0..self.range(self.config.writes_per_proc) {
            let scalars = self.visible_scalars(b, p);
            if scalars.is_empty() {
                continue;
            }
            let target = scalars[self.rng.gen_range(0..scalars.len())];
            let value = self.gen_expr(&scalars);
            // Occasionally write an array element instead.
            if !self.global_arrays.is_empty() && self.rng.gen_bool(0.2) {
                let (arr, rank) =
                    self.global_arrays[self.rng.gen_range(0..self.global_arrays.len())];
                let subs = (0..rank)
                    .map(|_| self.gen_subscript(&scalars))
                    .collect::<Vec<_>>();
                b.assign_indexed(p, arr, subs, value);
            } else {
                b.assign(p, target, value);
            }
        }
        // A read and a print for USE-side variety.
        let scalars = self.visible_scalars(b, p);
        if !scalars.is_empty() && self.rng.gen_bool(0.5) {
            let v = scalars[self.rng.gen_range(0..scalars.len())];
            b.read(p, v);
        }
        if !scalars.is_empty() && self.rng.gen_bool(0.5) {
            let e = self.gen_expr(&scalars);
            b.print(p, e);
        }
    }

    fn gen_calls(&mut self, b: &mut ProgramBuilder, p: ProcId) {
        for _ in 0..self.range(self.config.calls_per_proc) {
            let callees = self.visible_callees(b, p);
            if callees.is_empty() {
                continue;
            }
            let callee = callees[self.rng.gen_range(0..callees.len())];
            self.emit_call(b, p, callee);
        }
    }

    fn emit_call(&mut self, b: &mut ProgramBuilder, p: ProcId, callee: ProcId) {
        let args = self.gen_actuals(b, p, callee);
        let call = b.call_stmt(p, callee, args);
        self.call_edges.push((p, callee));
        let scalars = self.visible_scalars(b, p);
        if self.rng.gen_bool(self.config.control_flow_prob) && !scalars.is_empty() {
            let cond = Expr::binary(
                BinOp::Lt,
                self.gen_expr(&scalars),
                Expr::constant(self.rng.gen_range(0..100)),
            );
            let wrapped = if self.rng.gen_bool(0.5) {
                Stmt::If {
                    cond,
                    then_branch: vec![call],
                    else_branch: vec![],
                }
            } else {
                Stmt::While {
                    cond,
                    body: vec![call],
                }
            };
            b.stmt(p, wrapped);
        } else {
            b.stmt(p, call);
        }
    }

    fn gen_actuals(&mut self, b: &ProgramBuilder, p: ProcId, callee: ProcId) -> Vec<Actual> {
        let cfg = self.config;
        let callee_formals = formals_with_rank(b, callee);
        let scalars = self.visible_scalars(b, p);
        let context_formals = self.context_scalar_formals(b, p);
        callee_formals
            .iter()
            .map(|&(_, rank)| {
                if rank > 0 {
                    // Array formal: pass a whole rank-matching array or a
                    // section of a rank-2 global.
                    if let Some(&(arr, _)) =
                        self.global_arrays.iter().find(|&&(_, r)| r == rank)
                    {
                        return Actual::Ref(Ref::scalar(arr));
                    }
                    if let Some(&(big, 2)) = self.global_arrays.iter().find(|&&(_, r)| r == 2) {
                        if rank == 1 {
                            let sub = self.gen_subscript(&scalars);
                            return Actual::Ref(Ref::indexed(big, [sub, Subscript::All]));
                        }
                    }
                    return Actual::Value(Expr::constant(0));
                }
                if self.rng.gen_bool(cfg.value_actual_prob) || scalars.is_empty() {
                    return Actual::Value(self.gen_expr(&scalars));
                }
                if !context_formals.is_empty() && self.rng.gen_bool(cfg.formal_actual_bias) {
                    let f = context_formals[self.rng.gen_range(0..context_formals.len())];
                    return Actual::Ref(Ref::scalar(f));
                }
                Actual::Ref(Ref::scalar(scalars[self.rng.gen_range(0..scalars.len())]))
            })
            .collect()
    }

    /// Adds `parent → p` calls until every procedure is reachable from
    /// main. Processing in creation order keeps the induction simple:
    /// parents are created (and therefore fixed up) before children, so
    /// the added caller is always reachable already. Linear overall.
    fn connect_unreachable(&mut self, b: &mut ProgramBuilder) {
        let n_total = self.procs.len() + 1;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n_total];
        for &(from, to) in &self.call_edges {
            adj[from.index()].push(to.index());
        }
        let mut reach = vec![false; n_total];
        let mut stack = vec![ProcId::MAIN.index()];
        reach[ProcId::MAIN.index()] = true;
        while let Some(v) = stack.pop() {
            #[allow(clippy::needless_range_loop)] // `adj` grows during the pass
            for i in 0..adj[v].len() {
                let w = adj[v][i];
                if !reach[w] {
                    reach[w] = true;
                    stack.push(w);
                }
            }
        }
        for p in self.procs.clone() {
            if reach[p.index()] {
                continue;
            }
            let parent = parent_of(b, p);
            self.emit_call(b, parent, p);
            adj[parent.index()].push(p.index());
            // Propagate the newly reachable region.
            reach[p.index()] = true;
            let mut stack = vec![p.index()];
            while let Some(v) = stack.pop() {
                #[allow(clippy::needless_range_loop)] // `adj` grows during the pass
                for i in 0..adj[v].len() {
                    let w = adj[v][i];
                    if !reach[w] {
                        reach[w] = true;
                        stack.push(w);
                    }
                }
            }
        }
    }

    fn gen_expr(&mut self, scalars: &[VarId]) -> Expr {
        match self.rng.gen_range(0..4) {
            0 => Expr::constant(self.rng.gen_range(-5..100)),
            1 | 2 if !scalars.is_empty() => {
                Expr::load(scalars[self.rng.gen_range(0..scalars.len())])
            }
            _ if !scalars.is_empty() => Expr::binary(
                match self.rng.gen_range(0..3) {
                    0 => BinOp::Add,
                    1 => BinOp::Sub,
                    _ => BinOp::Mul,
                },
                Expr::load(scalars[self.rng.gen_range(0..scalars.len())]),
                Expr::constant(self.rng.gen_range(0..10)),
            ),
            _ => Expr::constant(self.rng.gen_range(0..10)),
        }
    }

    fn gen_subscript(&mut self, scalars: &[VarId]) -> Subscript {
        if !scalars.is_empty() && self.rng.gen_bool(0.5) {
            Subscript::Var(scalars[self.rng.gen_range(0..scalars.len())])
        } else {
            Subscript::Const(self.rng.gen_range(0..16))
        }
    }

    fn range(&mut self, (lo, hi): (usize, usize)) -> usize {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// Scalar variables visible in `p`: globals plus the scalars of `p`
    /// and its lexical ancestors.
    fn visible_scalars(&self, b: &ProgramBuilder, p: ProcId) -> Vec<VarId> {
        let mut vars = self.globals.clone();
        let mut cursor = Some(p);
        while let Some(cur) = cursor {
            for (f, rank) in formals_with_rank(b, cur) {
                if rank == 0 {
                    vars.push(f);
                }
            }
            vars.extend(b.locals_of(cur).iter().copied());
            cursor = parent_opt(b, cur);
        }
        vars
    }

    /// Scalar formals of `p` and its ancestors (the binding-edge sources).
    fn context_scalar_formals(&self, b: &ProgramBuilder, p: ProcId) -> Vec<VarId> {
        let mut vars = Vec::new();
        let mut cursor = Some(p);
        while let Some(cur) = cursor {
            for (f, rank) in formals_with_rank(b, cur) {
                if rank == 0 {
                    vars.push(f);
                }
            }
            cursor = parent_opt(b, cur);
        }
        vars
    }

    /// Procedures callable from `p` (children, ancestors, and children of
    /// ancestors), excluding main.
    fn visible_callees(&self, b: &ProgramBuilder, p: ProcId) -> Vec<ProcId> {
        let mut out: Vec<ProcId> = Vec::new();
        let push = |q: ProcId, out: &mut Vec<ProcId>| {
            if q != ProcId::MAIN && !out.contains(&q) {
                out.push(q);
            }
        };
        for &c in children_of(b, p) {
            push(c, &mut out);
        }
        let mut cursor = parent_opt(b, p);
        while let Some(a) = cursor {
            push(a, &mut out);
            for &c in children_of(b, a) {
                push(c, &mut out);
            }
            cursor = parent_opt(b, a);
        }
        out
    }
}

// --- small builder probes (keep the builder API surface honest) --------

fn level_of(b: &ProgramBuilder, p: ProcId) -> u32 {
    b.level_of(p)
}

fn parent_of(b: &ProgramBuilder, p: ProcId) -> ProcId {
    b.parent_of(p).expect("non-main procedures have parents")
}

fn parent_opt(b: &ProgramBuilder, p: ProcId) -> Option<ProcId> {
    b.parent_of(p)
}

fn children_of(b: &ProgramBuilder, p: ProcId) -> &[ProcId] {
    b.children_of(p)
}

fn formals_with_rank(b: &ProgramBuilder, p: ProcId) -> Vec<(VarId, usize)> {
    b.formals_of(p).iter().map(|&f| (f, b.rank_of(f))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_validate_across_seeds_and_shapes() {
        for seed in 0..30u64 {
            for cfg in [
                GenConfig::tiny(3, 1),
                GenConfig::tiny(8, 3),
                GenConfig::fortran_like(15),
                GenConfig::pascal_like(15, 4),
                GenConfig::binding_heavy(10, 3),
            ] {
                let program = generate(&cfg, seed);
                program
                    .validate()
                    .unwrap_or_else(|e| panic!("seed {seed} cfg {cfg:?}: {e}"));
            }
        }
    }

    #[test]
    fn degenerate_configs_still_generate_valid_programs() {
        for cfg in [
            GenConfig {
                num_procs: 0,
                ..GenConfig::default()
            },
            GenConfig {
                num_globals: 0,
                num_global_arrays: 0,
                ..GenConfig::tiny(3, 1)
            },
            GenConfig {
                calls_per_proc: (0, 0),
                ..GenConfig::tiny(4, 2)
            },
            GenConfig {
                formals_per_proc: (0, 0),
                ..GenConfig::binding_heavy(4, 1)
            },
        ] {
            for seed in 0..5 {
                let program = generate(&cfg, seed);
                assert!(program.validate().is_ok(), "cfg {cfg:?} seed {seed}");
            }
        }
    }

    #[test]
    fn determinism() {
        let cfg = GenConfig::pascal_like(25, 3);
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a.to_source(), b.to_source());
        let c = generate(&cfg, 43);
        assert_ne!(a.to_source(), c.to_source());
    }

    #[test]
    fn reachability_holds_when_requested() {
        for seed in 0..20u64 {
            let cfg = GenConfig {
                ensure_reachable: true,
                ..GenConfig::pascal_like(20, 3)
            };
            let program = generate(&cfg, seed);
            let cg = modref_ir::CallGraph::build(&program);
            let reach = cg.reachable_from_main();
            assert!(
                reach.iter().all(|&r| r),
                "seed {seed}: unreachable procedure"
            );
        }
    }

    #[test]
    fn nesting_respects_max_level() {
        let cfg = GenConfig::pascal_like(40, 3);
        let program = generate(&cfg, 7);
        assert!(program.max_level() <= 3);
        // And with enough procs it actually nests.
        assert!(program.max_level() >= 2, "expected some nesting");
    }

    #[test]
    fn parameter_averages_respond_to_config() {
        let skinny = generate(&GenConfig::binding_heavy(20, 1), 1);
        let wide = generate(&GenConfig::binding_heavy(20, 6), 1);
        assert!(wide.mean_formals() > skinny.mean_formals());
    }

    #[test]
    fn generated_source_reparses() {
        // Full loop: generate → pretty-print → parse → validate.
        let program = generate(&GenConfig::pascal_like(12, 3), 99);
        let text = program.to_source();
        let reparsed = modref_frontend::parse_program(&text)
            .unwrap_or_else(|e| panic!("generated source must reparse: {e}\n{text}"));
        assert_eq!(reparsed.num_procs(), program.num_procs());
        assert_eq!(reparsed.num_sites(), program.num_sites());
    }
}
