//! Named workload families used by the experiments and benches.
//!
//! Each function builds a deterministic program family parameterised by
//! size, matching one experiment of `EXPERIMENTS.md`:
//!
//! | family | exercises |
//! |---|---|
//! | [`binding_chain`] | Figure 1 / E1 — linear `RMOD` in `E_β` |
//! | [`binding_chain_all_writers`] | E1 — the per-parameter baseline's quadratic case |
//! | [`call_ring`] | Figure 2 / E2 — one big SCC |
//! | [`back_edge_ladder`] | E2 — adversarial for round-robin iteration |
//! | [`call_dag`] | E2 — cycle-free control, cross edges |
//! | [`nested_ladder`] | §4 multi-level / E3 — deep lexical nesting |
//! | [`alias_heavy`] | §5 / E7 — many alias pairs |

use modref_ir::{Expr, ProcId, Program, ProgramBuilder};

/// A chain `main → p0(x) → p1(x) → … → p{n-1}(x)` passing one formal all
/// the way down; only the last procedure writes it. `β` is a path of
/// `n - 1` edges.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binding_chain(n: usize) -> Program {
    assert!(n > 0, "need at least one procedure");
    let mut b = ProgramBuilder::new();
    let procs: Vec<ProcId> = (0..n).map(|i| b.proc_(&format!("p{i}"), &["x"])).collect();
    b.assign(procs[n - 1], b.formal(procs[n - 1], 0), Expr::constant(1));
    for i in 0..n - 1 {
        b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
    }
    let g = b.global("g");
    let main = b.main();
    b.call(main, procs[0], &[g]);
    b.finish().expect("binding_chain is valid")
}

/// Like [`binding_chain`] but *every* procedure writes its formal — every
/// `β` node is a seed, which drives the per-parameter baseline to its
/// quadratic worst case while Figure 1 stays linear.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn binding_chain_all_writers(n: usize) -> Program {
    assert!(n > 0, "need at least one procedure");
    let mut b = ProgramBuilder::new();
    let procs: Vec<ProcId> = (0..n)
        .map(|i| {
            let p = b.proc_(&format!("p{i}"), &["x"]);
            b.assign(p, b.formal(p, 0), Expr::constant(1));
            p
        })
        .collect();
    for i in 0..n - 1 {
        b.call(procs[i], procs[i + 1], &[b.formal(procs[i], 0)]);
    }
    let g = b.global("g");
    let main = b.main();
    b.call(main, procs[0], &[g]);
    b.finish().expect("binding_chain_all_writers is valid")
}

/// `n` procedures in one call ring (a single SCC); one writes a global.
/// With `globals ∝ n` the §1 assumption "bit vectors grow with program
/// size" holds.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn call_ring(n: usize, globals: usize) -> Program {
    assert!(n > 0, "need at least one procedure");
    let mut b = ProgramBuilder::new();
    let gs: Vec<_> = (0..globals.max(1))
        .map(|i| b.global(&format!("g{i}")))
        .collect();
    let procs: Vec<ProcId> = (0..n).map(|i| b.proc_(&format!("p{i}"), &[])).collect();
    for (i, &p) in procs.iter().enumerate() {
        b.call(p, procs[(i + 1) % n], &[]);
        // Spread writes so different globals originate in different ring
        // positions.
        b.assign(p, gs[i % gs.len()], Expr::constant(1));
    }
    let main = b.main();
    b.call(main, procs[0], &[]);
    b.finish().expect("call_ring is valid")
}

/// The adversarial family for round-robin iterative data-flow: a tree
/// chain `main → x1 → … → xn` where every `x_{i+1}` also calls its
/// ancestor `x_i`. The global written by `x1` takes one back edge per
/// round, forcing `Θ(n)` rounds; Figure 2 closes the single SCC in one
/// pass.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn back_edge_ladder(n: usize) -> Program {
    assert!(n >= 2, "need at least two procedures");
    let mut b = ProgramBuilder::new();
    let g = b.global("g");
    let procs: Vec<ProcId> = (0..n).map(|i| b.proc_(&format!("x{i}"), &[])).collect();
    for i in 0..n - 1 {
        b.call(procs[i], procs[i + 1], &[]);
        b.call(procs[i + 1], procs[i], &[]);
    }
    b.assign(procs[0], g, Expr::constant(1));
    let main = b.main();
    b.call(main, procs[0], &[]);
    b.finish().expect("back_edge_ladder is valid")
}

/// A layered DAG: `layers` layers of `width` procedures, each calling
/// `fanout` procedures of the next layer; the bottom layer writes
/// globals. Exercises cross/forward edges without cycles.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn call_dag(layers: usize, width: usize, fanout: usize) -> Program {
    assert!(
        layers > 0 && width > 0 && fanout > 0,
        "dimensions must be positive"
    );
    let mut b = ProgramBuilder::new();
    let gs: Vec<_> = (0..width).map(|i| b.global(&format!("g{i}"))).collect();
    let grid: Vec<Vec<ProcId>> = (0..layers)
        .map(|l| {
            (0..width)
                .map(|w| b.proc_(&format!("l{l}w{w}"), &[]))
                .collect()
        })
        .collect();
    for l in 0..layers - 1 {
        for w in 0..width {
            for f in 0..fanout {
                let target = grid[l + 1][(w + f) % width];
                b.call(grid[l][w], target, &[]);
            }
        }
    }
    for (w, &g) in gs.iter().enumerate() {
        b.assign(grid[layers - 1][w], g, Expr::constant(1));
    }
    let main = b.main();
    for &top in &grid[0] {
        b.call(main, top, &[]);
    }
    b.finish().expect("call_dag is valid")
}

/// A nesting ladder of the given `depth`: each level declares one nested
/// procedure (with a local the next level writes) plus `width` leaf
/// procedures. Exercises the multi-level `GMOD` algorithms with
/// `d_P = depth`.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn nested_ladder(depth: usize, width: usize) -> Program {
    assert!(depth > 0, "need at least one level");
    let mut b = ProgramBuilder::new();
    let g = b.global("g");
    let main = b.main();
    let mut parent = main;
    let mut prev_local = g;
    for d in 0..depth {
        let p = b.nested_proc(parent, &format!("n{d}"), &[]);
        let local = b.local(p, &format!("loc{d}"));
        // Write the *enclosing* level's local (global for d == 0): the
        // effect must climb exactly one level.
        b.assign(p, prev_local, Expr::constant(1));
        b.call(parent, p, &[]);
        for w in 0..width {
            let leaf = b.nested_proc(p, &format!("leaf{d}_{w}"), &[]);
            b.assign(leaf, local, Expr::constant(2));
            b.assign(leaf, g, Expr::constant(3));
            b.call(p, leaf, &[]);
        }
        parent = p;
        prev_local = local;
    }
    b.finish().expect("nested_ladder is valid")
}

/// Alias-heavy programs: `n` procedures each taking `params` reference
/// formals, all bound to the *same* global at every site — `ALIAS(p)`
/// grows quadratically in `params`.
///
/// # Panics
///
/// Panics if `n == 0` or `params == 0`.
pub fn alias_heavy(n: usize, params: usize) -> Program {
    assert!(n > 0 && params > 0, "dimensions must be positive");
    let mut b = ProgramBuilder::new();
    let g = b.global("g");
    let names: Vec<String> = (0..params).map(|i| format!("f{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let procs: Vec<ProcId> = (0..n)
        .map(|i| {
            let p = b.nested_proc(ProcId::MAIN, &format!("p{i}"), &name_refs);
            b.assign(p, b.formal(p, 0), Expr::constant(1));
            p
        })
        .collect();
    // Chain them, forwarding all formals.
    for i in 0..n - 1 {
        let args: Vec<_> = (0..params).map(|j| b.formal(procs[i], j)).collect();
        b.call(procs[i], procs[i + 1], &args);
    }
    let main = b.main();
    let args = vec![g; params];
    b.call(main, procs[0], &args);
    b.finish().expect("alias_heavy is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_validate_and_have_expected_shapes() {
        let chain = binding_chain(10);
        assert_eq!(chain.num_procs(), 11);
        assert_eq!(chain.num_sites(), 10);

        let ring = call_ring(8, 8);
        assert_eq!(ring.num_sites(), 9);

        let ladder = back_edge_ladder(6);
        assert_eq!(ladder.num_sites(), 2 * 5 + 1);

        let dag = call_dag(3, 4, 2);
        assert_eq!(dag.num_procs(), 13);

        let nested = nested_ladder(4, 2);
        assert_eq!(nested.max_level(), 5); // ladder levels sit below main

        let alias = alias_heavy(3, 4);
        assert!((alias.mean_formals() - 3.0).abs() < 1e-9); // 12 formals / 4 procs
    }

    #[test]
    fn nested_ladder_levels_carry_locals() {
        let p = nested_ladder(3, 1);
        // One local per ladder level.
        let locals: Vec<_> = p
            .vars()
            .filter(|&v| p.var_name(v).starts_with("loc"))
            .collect();
        assert_eq!(locals.len(), 3);
    }
}
