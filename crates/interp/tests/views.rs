//! Interpreter semantics edge cases: composed array-section views,
//! element bindings through views, and scope chains under recursion —
//! plus the dynamic oracle for the *parallel* pipeline: what a call was
//! observed to do must be covered by the multi-threaded solver's
//! summaries.

use modref_check::prelude::*;
use modref_core::Analyzer;
use modref_interp::Interpreter;
use modref_progen::{generate, GenConfig};

fn run(src: &str) -> Vec<i64> {
    let program = modref_frontend::parse_program(src).expect("parses");
    let result = Interpreter::new(&program, 0).run();
    assert!(!result.truncated, "run must finish");
    result.printed
}

#[test]
fn section_of_a_section_composes() {
    // main passes row 2 of a 2-D array; the callee forwards its whole
    // rank-1 view to a grandchild which writes element 5 — landing in
    // a[2, 5].
    let printed = run("var a[*, *];
         proc write5(v[*]) { v[5] = 99; }
         proc forward(row[*]) { call write5(row); }
         main {
           call forward(a[2, *]);
           print a[2, 5];
           print a[5, 5];
         }");
    assert_eq!(printed, vec![99, 0]);
}

#[test]
fn element_binding_through_a_view() {
    // Pass row 1, then bind a scalar formal to element [4] of the view:
    // writes reach a[1, 4].
    let printed = run("var a[*, *];
         proc set(x) { x = 7; }
         proc receive(row[*]) { call set(row[4]); }
         main {
           call receive(a[1, *]);
           print a[1, 4];
         }");
    assert_eq!(printed, vec![7]);
}

#[test]
fn two_views_of_the_same_row_alias() {
    let printed = run("var a[*, *];
         proc writer(v[*]) { v[0] = 3; }
         proc reader(w[*]) { print w[0]; }
         main {
           call writer(a[6, *]);
           call reader(a[6, *]);
         }");
    assert_eq!(printed, vec![3]);
}

#[test]
fn distinct_rows_do_not_alias() {
    let printed = run("var a[*, *];
         proc writer(v[*]) { v[0] = 3; }
         proc reader(w[*]) { print w[0]; }
         main {
           call writer(a[6, *]);
           call reader(a[7, *]);
         }");
    assert_eq!(printed, vec![0]);
}

#[test]
fn view_index_variable_captured_at_call_time() {
    // The row index is read when the binding happens; changing it later
    // must not retarget the view.
    let printed = run("var a[*, *], i;
         proc write_then_move(v[*]) { i = 9; v[0] = 5; }
         main {
           i = 2;
           call write_then_move(a[i, *]);
           print a[2, 0];
           print a[9, 0];
         }");
    assert_eq!(printed, vec![5, 0]);
}

#[test]
fn recursion_keeps_separate_locals_but_shared_statics() {
    let printed = run("var depth;
         proc rec(n) {
           var mine;
           mine = n * 10;
           if (n < 3) { call rec(value n + 1); }
           print mine;       # printed on the way out: 30, 20, 10
           depth = depth + 1;
         }
         main { call rec(value 1); print depth; }");
    assert_eq!(printed, vec![30, 20, 10, 3]);
}

#[test]
fn sibling_calls_through_uncle_scope() {
    // A nested procedure calls its parent's sibling; the sibling's view
    // of globals is consistent.
    let printed = run("var g;
         proc helper() { g = g + 100; }
         proc outer() {
           proc inner() { call helper(); }
           call inner();
         }
         main { g = 1; call outer(); print g; }");
    assert_eq!(printed, vec![101]);
}

#[test]
fn whole_array_value_semantics_for_scalars_only() {
    // `value` copies the scalar result of an expression; the original
    // variable is untouched by callee writes.
    let printed = run("var g;
         proc clobber(x) { x = 1000; }
         main {
           g = 5;
           call clobber(value g * 2);
           print g;
         }");
    assert_eq!(printed, vec![5]);
}

property! {
    #![cases = 48]

    fn parallel_solver_covers_observed_effects(
        seed in any_u64(),
        input_seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..4u32),
    ) {
        // The dynamic oracle run against the *parallel* pipeline: every
        // variable a call site was concretely observed to write or read
        // must be in the 4-thread solver's MOD(s)/USE(s). Combined with
        // the differential tests (threads=1 ≡ threads=N bit-for-bit),
        // this pins the parallel solver to ground truth, not merely to
        // the sequential implementation.
        let program = generate(&GenConfig::tiny(n, depth), seed);
        let summary = Analyzer::new().threads(4).analyze(&program);
        let run = Interpreter::new(&program, input_seed).with_fuel(20_000).run();

        for s in program.sites() {
            let obs = run.observation(s);
            if obs.invocations == 0 {
                continue;
            }
            prop_assert!(
                obs.modified.is_subset(summary.mod_site(s)),
                "seed {seed}/{input_seed}: site {s} observed MOD {:?} ⊄ parallel MOD {:?}\n{}",
                obs.modified,
                summary.mod_site(s),
                program.to_source()
            );
            prop_assert!(
                obs.used.is_subset(summary.use_site(s)),
                "seed {seed}/{input_seed}: site {s} observed USE {:?} ⊄ parallel USE {:?}\n{}",
                obs.used,
                summary.use_site(s),
                program.to_source()
            );
        }
    }
}

#[test]
fn observed_sets_accumulate_across_invocations() {
    let program = modref_frontend::parse_program(
        "var a, b, toggle;
         proc flip() {
           if (toggle == 0) { a = 1; } else { b = 1; }
           toggle = 1 - toggle;
         }
         main { var i; i = 0; while (i < 2) { call flip(); i = i + 1; } }",
    )
    .expect("parses");
    let result = Interpreter::new(&program, 0).run();
    let site = program.sites().next().expect("site");
    let obs = result.observation(site);
    assert_eq!(obs.invocations, 2);
    // Both branches ran across the two invocations.
    let by_name = |n: &str| program.vars().find(|&v| program.var_name(v) == n).unwrap();
    assert!(obs.modified.contains(by_name("a").index()));
    assert!(obs.modified.contains(by_name("b").index()));
}
