//! Dynamic oracle for *degraded* analyses: even when budgets trip or
//! injected faults cut phases out of the pipeline, every variable a call
//! site is concretely observed to write or read must still appear in the
//! reported MOD/USE sets. This is the ground-truth half of the soundness
//! argument in `docs/ROBUSTNESS.md` — the superset-of-exact half lives
//! in `modref-core/tests/guarded.rs`.

use modref_check::prelude::*;
use modref_core::{Analyzer, Budget, FaultPlan, Guard};
use modref_interp::Interpreter;
use modref_progen::{generate, GenConfig};

property! {
    #![cases = 48]

    fn degraded_summaries_cover_observed_effects(
        seed in any_u64(),
        input_seed in any_u64(),
        fault_seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..4u32),
    ) {
        // Arm both degradation triggers at once — a seeded fault pattern
        // and a tight op budget (derived from the fault seed to stay
        // within the harness's five-parameter strategies) — and interpret
        // the same program. The observation must be covered whether the
        // run came back clean or widened.
        let budget = fault_seed % 1_500;
        let program = generate(&GenConfig::tiny(n, depth), seed);
        let guard = Guard::new(&Budget::unlimited().with_ops(budget))
            .with_faults(FaultPlan::seeded(fault_seed));
        let outcome = Analyzer::new().threads(4).analyze_guarded(&program, &guard);
        let degraded = outcome.is_degraded();
        let summary = outcome.into_summary();
        let run = Interpreter::new(&program, input_seed).with_fuel(20_000).run();

        for s in program.sites() {
            let obs = run.observation(s);
            if obs.invocations == 0 {
                continue;
            }
            prop_assert!(
                obs.modified.is_subset(summary.mod_site(s)),
                "seed {seed}/{input_seed}/{fault_seed} budget {budget} \
                 (degraded: {degraded}): site {s} observed MOD {:?} ⊄ {:?}\n{}",
                obs.modified,
                summary.mod_site(s),
                program.to_source()
            );
            prop_assert!(
                obs.used.is_subset(summary.use_site(s)),
                "seed {seed}/{input_seed}/{fault_seed} budget {budget} \
                 (degraded: {degraded}): site {s} observed USE {:?} ⊄ {:?}\n{}",
                obs.used,
                summary.use_site(s),
                program.to_source()
            );
        }
    }

    fn fully_conservative_fallback_covers_observed_effects(
        seed in any_u64(),
        input_seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..4u32),
    ) {
        // The deepest rung of the degradation ladder: alias factoring
        // panics, so the final sets are the widened per-caller fallback.
        // Ground truth must still be covered.
        let program = generate(&GenConfig::tiny(n, depth), seed);
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at("alias"));
        let outcome = Analyzer::new().analyze_guarded(&program, &guard);
        prop_assert!(outcome.is_degraded(), "seed {seed}: alias panic must degrade");
        let summary = outcome.into_summary();
        let run = Interpreter::new(&program, input_seed).with_fuel(20_000).run();
        for s in program.sites() {
            let obs = run.observation(s);
            if obs.invocations == 0 {
                continue;
            }
            prop_assert!(
                obs.modified.is_subset(summary.mod_site(s)),
                "seed {seed}/{input_seed}: site {s} observed MOD {:?} ⊄ widened {:?}",
                obs.modified,
                summary.mod_site(s)
            );
            prop_assert!(
                obs.used.is_subset(summary.use_site(s)),
                "seed {seed}/{input_seed}: site {s} observed USE {:?} ⊄ widened {:?}",
                obs.used,
                summary.use_site(s)
            );
        }
    }
}
