#![warn(missing_docs)]

//! A concrete interpreter for MiniProc programs, with full
//! reference-parameter semantics (aliasing, array-section views, static
//! scoping with access links), used to validate the *static* side-effect
//! analysis *dynamically*: run a program on concrete inputs, record which
//! caller-visible variables each call actually modified and read, and
//! check the observations against the analyzed `MOD`/`USE` sets.
//!
//! A flow-insensitive summary is sound iff **observed ⊆ analyzed** on
//! every execution; the property suite in `tests/` asserts exactly that
//! over random programs and random inputs.
//!
//! # Semantics
//!
//! * Scalars are wrapping `i64`; uninitialised variables read as `0`;
//!   `x / 0 = 0` (total semantics keep random programs runnable).
//! * Arrays are sparse maps from index vectors to `i64`; any index is
//!   valid.
//! * `read x` pulls the next value from a deterministic input stream
//!   seeded at [`Interpreter::new`]; `print e` appends to
//!   [`RunResult::printed`].
//! * Reference formals alias the actual's storage; array formals bound to
//!   sections (`a[i, *]`) become *views* that translate coordinates.
//! * Execution is bounded by *fuel*; loops and recursion stop when it
//!   runs out (the run is still a valid — truncated — execution, so
//!   soundness checks remain meaningful).
//!
//! # Examples
//!
//! ```
//! use modref_interp::Interpreter;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = modref_frontend::parse_program("
//!     var g;
//!     proc double(x) { x = x * 2; }
//!     main { g = 21; call double(g); print g; }
//! ")?;
//! let result = Interpreter::new(&program, 7).run();
//! assert_eq!(result.printed, vec![42]);
//! let site = program.sites().next().expect("one site");
//! let g = program.vars().next().expect("g");
//! assert!(result.observation(site).modified.contains(g.index()));
//! # Ok(())
//! # }
//! ```

mod machine;
mod observe;

pub use machine::{Interpreter, RunResult};
pub use observe::SiteObservation;
