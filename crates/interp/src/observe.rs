//! Dynamic side-effect observations.

use std::collections::HashSet;

use modref_bitset::BitSet;
use modref_ir::VarId;

/// What one call site was *observed* to do, accumulated over every
/// execution of the site during a run.
#[derive(Debug, Clone)]
pub struct SiteObservation {
    /// How many times the site executed.
    pub invocations: u64,
    /// Caller-visible variables whose storage was written during the
    /// callee's execution (the dynamic counterpart of `MOD(s)`).
    pub modified: BitSet,
    /// Caller-visible variables whose storage was read (`USE(s)`).
    pub used: BitSet,
    /// Concrete element coordinates written per caller-visible array
    /// (capped; used to validate regular sections).
    pub array_writes: Vec<(VarId, Vec<i64>)>,
}

impl SiteObservation {
    pub(crate) fn new(num_vars: usize) -> Self {
        SiteObservation {
            invocations: 0,
            modified: BitSet::new(num_vars),
            used: BitSet::new(num_vars),
            array_writes: Vec::new(),
        }
    }
}

/// Address of a storage slot.
pub(crate) type Addr = usize;

/// One active call-site log: every address written/read while the callee
/// runs, plus element-level write coordinates.
#[derive(Debug, Default)]
pub(crate) struct EffectLog {
    pub writes: HashSet<Addr>,
    pub reads: HashSet<Addr>,
    pub element_writes: Vec<(Addr, Vec<i64>)>,
}

pub(crate) const MAX_ELEMENT_WRITES: usize = 512;

/// The stack of logs for the dynamically-active call sites. A write deep
/// in the call tree belongs to every enclosing call.
#[derive(Debug, Default)]
pub(crate) struct LogStack {
    logs: Vec<EffectLog>,
}

impl LogStack {
    pub fn push(&mut self) {
        self.logs.push(EffectLog::default());
    }

    pub fn pop(&mut self) -> EffectLog {
        self.logs.pop().expect("log stack underflow")
    }

    pub fn record_write(&mut self, addr: Addr) {
        for log in &mut self.logs {
            log.writes.insert(addr);
        }
    }

    pub fn record_read(&mut self, addr: Addr) {
        for log in &mut self.logs {
            log.reads.insert(addr);
        }
    }

    pub fn record_element_write(&mut self, addr: Addr, coords: &[i64]) {
        for log in &mut self.logs {
            if log.element_writes.len() < MAX_ELEMENT_WRITES {
                log.element_writes.push((addr, coords.to_vec()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_propagate_to_all_active_logs() {
        let mut stack = LogStack::default();
        stack.push();
        stack.record_write(1);
        stack.push();
        stack.record_write(2);
        stack.record_read(3);
        let inner = stack.pop();
        assert!(inner.writes.contains(&2));
        assert!(!inner.writes.contains(&1));
        assert!(inner.reads.contains(&3));
        let outer = stack.pop();
        assert!(outer.writes.contains(&1));
        assert!(outer.writes.contains(&2));
        assert!(outer.reads.contains(&3));
    }

    #[test]
    fn element_writes_are_capped() {
        let mut stack = LogStack::default();
        stack.push();
        for i in 0..(MAX_ELEMENT_WRITES + 10) {
            stack.record_element_write(0, &[i as i64]);
        }
        assert_eq!(stack.pop().element_writes.len(), MAX_ELEMENT_WRITES);
    }
}
