//! The interpreter proper.

use std::collections::HashMap;

use modref_ir::{
    Actual, BinOp, CallSiteId, Expr, ProcId, Program, Ref, Stmt, Subscript, UnOp, VarId,
};

use crate::observe::{Addr, LogStack, SiteObservation};

/// Maximum dynamic call depth before a run is truncated.
const MAX_DEPTH: usize = 256;

/// One storage slot.
#[derive(Debug, Clone)]
enum Slot {
    Scalar(i64),
    Array(HashMap<Vec<i64>, i64>),
}

/// How a variable name maps to storage inside one activation.
#[derive(Debug, Clone)]
enum Binding {
    /// The whole slot (scalars and whole arrays).
    Direct(Addr),
    /// One array element (a scalar formal bound to `a[i, j]`).
    Element(Addr, Vec<i64>),
    /// An array section: coordinates translate through `axes`.
    View(Addr, Vec<AxisBind>),
}

impl Binding {
    fn base(&self) -> Addr {
        match self {
            Binding::Direct(a) | Binding::Element(a, _) | Binding::View(a, _) => *a,
        }
    }
}

/// One axis of a [`Binding::View`].
#[derive(Debug, Clone, Copy)]
enum AxisBind {
    Fixed(i64),
    Carried,
}

#[derive(Debug)]
struct Activation {
    proc_: ProcId,
    bindings: HashMap<VarId, Binding>,
    /// Index of the lexical parent's activation (static access link).
    access: Option<usize>,
}

/// Execution stopped early (not an error — the prefix is still a valid
/// observation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    OutOfFuel,
}

/// The result of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values printed, in order.
    pub printed: Vec<i64>,
    /// `true` if the run was truncated by fuel or depth limits.
    pub truncated: bool,
    observations: Vec<SiteObservation>,
}

impl RunResult {
    /// What call site `s` was observed to do over the whole run.
    pub fn observation(&self, s: CallSiteId) -> &SiteObservation {
        &self.observations[s.index()]
    }

    /// All per-site observations, indexed by call site.
    pub fn observations(&self) -> &[SiteObservation] {
        &self.observations
    }
}

/// A configured interpreter. See the crate docs for the semantics.
#[derive(Debug)]
pub struct Interpreter<'a> {
    program: &'a Program,
    fuel: u64,
    input_state: u64,
}

impl<'a> Interpreter<'a> {
    /// Prepares a run with the default fuel (100 000 statements) and the
    /// given input seed (drives the `read` statement).
    pub fn new(program: &'a Program, input_seed: u64) -> Self {
        Interpreter {
            program,
            fuel: 100_000,
            input_state: input_seed,
        }
    }

    /// Overrides the statement budget.
    pub fn with_fuel(mut self, fuel: u64) -> Self {
        self.fuel = fuel;
        self
    }

    /// Executes `main` to completion (or until the fuel/depth bound).
    pub fn run(self) -> RunResult {
        let mut machine = Machine {
            program: self.program,
            store: Vec::new(),
            globals: HashMap::new(),
            acts: Vec::new(),
            logs: LogStack::default(),
            observations: (0..self.program.num_sites())
                .map(|_| SiteObservation::new(self.program.num_vars()))
                .collect(),
            printed: Vec::new(),
            fuel: self.fuel,
            input_state: self.input_state,
        };
        machine.init_globals();
        let main = self.program.main();
        let root = Activation {
            proc_: main,
            bindings: machine.fresh_locals(main),
            access: None,
        };
        machine.acts.push(root);
        let stopped = machine.exec_block(self.program.proc_(main).body().to_vec(), 0);
        RunResult {
            printed: machine.printed,
            truncated: stopped.is_err(),
            observations: machine.observations,
        }
    }
}

struct Machine<'a> {
    program: &'a Program,
    store: Vec<Slot>,
    globals: HashMap<VarId, Binding>,
    acts: Vec<Activation>,
    logs: LogStack,
    observations: Vec<SiteObservation>,
    printed: Vec<i64>,
    fuel: u64,
    input_state: u64,
}

impl Machine<'_> {
    fn init_globals(&mut self) {
        for v in self.program.vars() {
            let info = self.program.var(v);
            if info.is_global() {
                let addr = self.alloc(info.rank());
                self.globals.insert(v, Binding::Direct(addr));
            }
        }
    }

    fn alloc(&mut self, rank: usize) -> Addr {
        let slot = if rank == 0 {
            Slot::Scalar(0)
        } else {
            Slot::Array(HashMap::new())
        };
        self.store.push(slot);
        self.store.len() - 1
    }

    fn fresh_locals(&mut self, p: ProcId) -> HashMap<VarId, Binding> {
        let locals: Vec<VarId> = self.program.proc_(p).locals().to_vec();
        locals
            .into_iter()
            .map(|v| {
                let addr = self.alloc(self.program.var(v).rank());
                (v, Binding::Direct(addr))
            })
            .collect()
    }

    /// SplitMix64 step, mapped into a small interesting range.
    fn next_input(&mut self) -> i64 {
        self.input_state = self.input_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.input_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 24) as i64 - 4
    }

    // --- name resolution ---------------------------------------------

    fn binding_of(&self, act: usize, v: VarId) -> Binding {
        if let Some(b) = self.globals.get(&v) {
            return b.clone();
        }
        let owner = self.program.var(v).owner().expect("non-global has owner");
        let mut a = act;
        loop {
            if self.acts[a].proc_ == owner {
                return self.acts[a]
                    .bindings
                    .get(&v)
                    .cloned()
                    .expect("variable bound in its owner's activation");
            }
            a = self.acts[a].access.expect("static chain reaches the owner");
        }
    }

    /// Translates element coordinates through a binding into the
    /// underlying array's coordinate space (total: missing positions read
    /// as 0, extras are dropped).
    fn translate(binding: &Binding, coords: &[i64]) -> (Addr, Vec<i64>) {
        match binding {
            Binding::Direct(a) => (*a, coords.to_vec()),
            Binding::Element(a, fixed) => (*a, fixed.clone()),
            Binding::View(a, axes) => {
                let mut it = coords.iter().copied();
                let out = axes
                    .iter()
                    .map(|ax| match ax {
                        AxisBind::Fixed(c) => *c,
                        AxisBind::Carried => it.next().unwrap_or(0),
                    })
                    .collect();
                (*a, out)
            }
        }
    }

    // --- reads and writes ---------------------------------------------

    fn read_scalar_slot(&mut self, addr: Addr) -> i64 {
        self.logs.record_read(addr);
        match &self.store[addr] {
            Slot::Scalar(v) => *v,
            Slot::Array(map) => map.get(&Vec::new()).copied().unwrap_or(0),
        }
    }

    fn read_element(&mut self, addr: Addr, coords: &[i64]) -> i64 {
        self.logs.record_read(addr);
        match &self.store[addr] {
            Slot::Scalar(v) => *v,
            Slot::Array(map) => map.get(coords).copied().unwrap_or(0),
        }
    }

    fn write_scalar_slot(&mut self, addr: Addr, value: i64) {
        self.logs.record_write(addr);
        match &mut self.store[addr] {
            Slot::Scalar(v) => *v = value,
            Slot::Array(map) => {
                map.insert(Vec::new(), value);
            }
        }
    }

    fn write_element(&mut self, addr: Addr, coords: &[i64], value: i64) {
        self.logs.record_write(addr);
        match &mut self.store[addr] {
            Slot::Scalar(v) => *v = value,
            Slot::Array(map) => {
                self.logs.record_element_write(addr, coords);
                map.insert(coords.to_vec(), value);
            }
        }
    }

    fn read_ref(&mut self, act: usize, r: &Ref) -> Result<i64, Stop> {
        let binding = self.binding_of(act, r.var);
        if r.subs.is_empty() {
            Ok(match binding {
                Binding::Direct(a) => self.read_scalar_slot(a),
                Binding::Element(a, coords) => self.read_element(a, &coords),
                Binding::View(a, _) => self.read_scalar_slot(a),
            })
        } else {
            let coords = self.eval_subs(act, &r.subs)?;
            let (addr, full) = Self::translate(&binding, &coords);
            Ok(self.read_element(addr, &full))
        }
    }

    fn write_ref(&mut self, act: usize, r: &Ref, value: i64) -> Result<(), Stop> {
        let binding = self.binding_of(act, r.var);
        if r.subs.is_empty() {
            match binding {
                Binding::Direct(a) => self.write_scalar_slot(a, value),
                Binding::Element(a, coords) => self.write_element(a, &coords, value),
                Binding::View(a, _) => self.write_scalar_slot(a, value),
            }
        } else {
            let coords = self.eval_subs(act, &r.subs)?;
            let (addr, full) = Self::translate(&binding, &coords);
            self.write_element(addr, &full, value);
        }
        Ok(())
    }

    fn eval_subs(&mut self, act: usize, subs: &[Subscript]) -> Result<Vec<i64>, Stop> {
        subs.iter()
            .map(|s| {
                Ok(match s {
                    Subscript::Const(c) => *c,
                    Subscript::Var(v) => self.read_ref(act, &Ref::scalar(*v))?,
                    // `*` in element position: total semantics pick 0.
                    Subscript::All => 0,
                })
            })
            .collect()
    }

    fn eval(&mut self, act: usize, e: &Expr) -> Result<i64, Stop> {
        Ok(match e {
            Expr::Const(c) => *c,
            Expr::Load(r) => self.read_ref(act, r)?,
            Expr::Unary(UnOp::Neg, inner) => self.eval(act, inner)?.wrapping_neg(),
            Expr::Unary(UnOp::Not, inner) => i64::from(self.eval(act, inner)? == 0),
            Expr::Binary(op, l, rr) => {
                let (a, b) = (self.eval(act, l)?, self.eval(act, rr)?);
                match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    BinOp::Div => {
                        if b == 0 {
                            0
                        } else {
                            a.wrapping_div(b)
                        }
                    }
                    BinOp::Lt => i64::from(a < b),
                    BinOp::Le => i64::from(a <= b),
                    BinOp::Eq => i64::from(a == b),
                    BinOp::Ne => i64::from(a != b),
                }
            }
        })
    }

    // --- statements -----------------------------------------------------

    fn exec_block(&mut self, stmts: Vec<Stmt>, act: usize) -> Result<(), Stop> {
        for s in &stmts {
            self.exec_stmt(s, act)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, s: &Stmt, act: usize) -> Result<(), Stop> {
        if self.fuel == 0 {
            return Err(Stop::OutOfFuel);
        }
        self.fuel -= 1;
        match s {
            Stmt::Assign { target, value } => {
                let v = self.eval(act, value)?;
                self.write_ref(act, target, v)
            }
            Stmt::Read { target } => {
                let v = self.next_input();
                self.write_ref(act, target, v)
            }
            Stmt::Print { value } => {
                let v = self.eval(act, value)?;
                self.printed.push(v);
                Ok(())
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(act, cond)? != 0 {
                    self.exec_block(then_branch.clone(), act)
                } else {
                    self.exec_block(else_branch.clone(), act)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(act, cond)? != 0 {
                    if self.fuel == 0 {
                        return Err(Stop::OutOfFuel);
                    }
                    self.exec_block(body.clone(), act)?;
                }
                Ok(())
            }
            Stmt::Call { site } => self.exec_call(*site, act),
        }
    }

    fn exec_call(&mut self, site_id: CallSiteId, act: usize) -> Result<(), Stop> {
        let site = self.program.site(site_id).clone();
        let callee = site.callee();
        let formals: Vec<VarId> = self.program.proc_(callee).formals().to_vec();

        // Evaluate arguments in the caller (outside the observation
        // window: argument evaluation is a *local* effect of the call
        // statement, covered by LUSE, not by USE(s) = b_e(GUSE)).
        let mut bindings = self.fresh_locals(callee);
        for (pos, arg) in site.args().iter().enumerate() {
            let binding = match arg {
                Actual::Value(e) => {
                    let value = self.eval(act, e)?;
                    let addr = self.alloc(0);
                    self.store[addr] = Slot::Scalar(value);
                    Binding::Direct(addr)
                }
                Actual::Ref(r) => self.bind_reference(act, r)?,
            };
            bindings.insert(formals[pos], binding);
        }

        if self.acts.len() >= MAX_DEPTH {
            return Err(Stop::OutOfFuel);
        }

        // Static access link: the activation of the callee's lexical
        // parent, found on the caller's static chain.
        let parent = self
            .program
            .proc_(callee)
            .parent()
            .expect("callees are never main");
        let mut link = act;
        while self.acts[link].proc_ != parent {
            link = self.acts[link]
                .access
                .expect("callee's parent is on the caller's static chain");
        }

        self.acts.push(Activation {
            proc_: callee,
            bindings,
            access: Some(link),
        });
        let callee_act = self.acts.len() - 1;

        // Observation window.
        self.logs.push();
        let body = self.program.proc_(callee).body().to_vec();
        let outcome = self.exec_block(body, callee_act);
        let log = self.logs.pop();
        self.acts.pop();

        // Translate addresses back to caller-visible names.
        let visible = self.caller_visible_vars(act);
        let bindings: Vec<(VarId, Binding)> = visible
            .into_iter()
            .map(|v| (v, self.binding_of(act, v)))
            .collect();
        let obs = &mut self.observations[site_id.index()];
        obs.invocations += 1;
        for (v, binding) in bindings {
            let base = binding.base();
            if log.writes.contains(&base) {
                obs.modified.insert(v.index());
            }
            if log.reads.contains(&base) {
                obs.used.insert(v.index());
            }
            if self.program.var(v).rank() > 0 {
                if let Binding::Direct(a) = binding {
                    for (wa, coords) in &log.element_writes {
                        if *wa == a {
                            obs.array_writes.push((v, coords.clone()));
                        }
                    }
                }
            }
        }

        outcome
    }

    /// Builds the binding for a by-reference actual.
    fn bind_reference(&mut self, act: usize, r: &Ref) -> Result<Binding, Stop> {
        let base = self.binding_of(act, r.var);
        if r.subs.is_empty() {
            return Ok(base);
        }
        let rank = self.program.var(r.var).rank();
        if rank == 0 {
            return Ok(base);
        }
        // Does the reference select an element or a section?
        let has_all = r.subs.iter().any(|s| matches!(s, Subscript::All));
        if has_all {
            // Section: build a view, composing with an existing view.
            let mut fixed_axes = Vec::with_capacity(r.subs.len());
            for s in &r.subs {
                fixed_axes.push(match s {
                    Subscript::All => None,
                    Subscript::Const(c) => Some(*c),
                    Subscript::Var(v) => Some(self.read_ref(act, &Ref::scalar(*v))?),
                });
            }
            Ok(match base {
                Binding::Direct(a) => Binding::View(
                    a,
                    fixed_axes
                        .into_iter()
                        .map(|f| f.map_or(AxisBind::Carried, AxisBind::Fixed))
                        .collect(),
                ),
                Binding::View(a, outer) => {
                    // The subscripts index the *view's* carried axes.
                    let mut it = fixed_axes.into_iter();
                    let composed = outer
                        .iter()
                        .map(|ax| match ax {
                            AxisBind::Fixed(c) => AxisBind::Fixed(*c),
                            AxisBind::Carried => match it.next().flatten() {
                                Some(c) => AxisBind::Fixed(c),
                                None => AxisBind::Carried,
                            },
                        })
                        .collect();
                    Binding::View(a, composed)
                }
                Binding::Element(a, coords) => Binding::Element(a, coords),
            })
        } else {
            // Element: evaluate the coordinates now (Fortran semantics).
            let coords = self.eval_subs(act, &r.subs)?;
            let (addr, full) = Self::translate(&base, &coords);
            Ok(Binding::Element(addr, full))
        }
    }

    /// Every variable the caller can name: globals plus the variables of
    /// each procedure on its static chain.
    fn caller_visible_vars(&self, act: usize) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self.globals.keys().copied().collect();
        let mut a = Some(act);
        while let Some(idx) = a {
            let p = self.acts[idx].proc_;
            let proc_ = self.program.proc_(p);
            vars.extend(proc_.formals().iter().copied());
            vars.extend(proc_.locals().iter().copied());
            a = self.acts[idx].access;
        }
        vars
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::ProgramBuilder;

    fn run_src(src: &str, seed: u64) -> (modref_ir::Program, RunResult) {
        let program = modref_frontend::parse_program(src).expect("parses");
        let result = Interpreter::new(&program, seed).run();
        (program, result)
    }

    #[test]
    fn arithmetic_and_print() {
        let (_, r) = run_src("main { print 2 + 3 * 4; print 10 / 3; print 1 / 0; }", 0);
        assert_eq!(r.printed, vec![14, 3, 0]);
        assert!(!r.truncated);
    }

    #[test]
    fn reference_parameters_write_through() {
        let (_, r) = run_src(
            "var g;
             proc set(x) { x = 9; }
             main { call set(g); print g; }",
            0,
        );
        assert_eq!(r.printed, vec![9]);
    }

    #[test]
    fn aliased_formals_share_storage() {
        let (_, r) = run_src(
            "var g;
             proc both(x, y) { x = 5; print y; }
             main { call both(g, g); }",
            0,
        );
        assert_eq!(r.printed, vec![5]);
    }

    #[test]
    fn value_arguments_are_copies() {
        let (_, r) = run_src(
            "var g;
             proc try(x) { x = 99; }
             main { g = 1; call try(value g); print g; }",
            0,
        );
        assert_eq!(r.printed, vec![1]);
    }

    #[test]
    fn array_sections_alias_rows() {
        let (_, r) = run_src(
            "var a[*, *];
             proc zero(row[*]) { row[2] = 7; }
             main { call zero(a[4, *]); print a[4, 2]; print a[0, 2]; }",
            0,
        );
        assert_eq!(r.printed, vec![7, 0]);
    }

    #[test]
    fn element_binding_is_evaluated_at_call_time() {
        let (_, r) = run_src(
            "var a[*], i;
             proc set(x) { i = 99; x = 5; }    # changing i must not move x
             main { i = 3; call set(a[i]); print a[3]; print a[99]; }",
            0,
        );
        assert_eq!(r.printed, vec![5, 0]);
    }

    #[test]
    fn nested_procedures_see_enclosing_activation() {
        let (_, r) = run_src(
            "proc outer(x) {
               var t;
               proc inner() { t = t + x; }
               t = 10;
               call inner();
               print t;
             }
             main { var m; m = 5; call outer(m); }",
            0,
        );
        assert_eq!(r.printed, vec![15]);
    }

    #[test]
    fn recursion_with_access_links() {
        // Factorial via a global accumulator.
        let (_, r) = run_src(
            "var acc;
             proc fact(n) {
               if (n < 2) { acc = 1; } else {
                 call fact(value n - 1);
                 acc = acc * n;
               }
             }
             main { call fact(value 5); print acc; }",
            0,
        );
        assert_eq!(r.printed, vec![120]);
    }

    #[test]
    fn fuel_truncates_infinite_loops() {
        let (_, r) = run_src("var g; main { while (0 == 0) { g = g + 1; } }", 0);
        assert!(r.truncated);
    }

    #[test]
    fn depth_limit_truncates_infinite_recursion() {
        let (_, r) = run_src(
            "proc spin() { call spin(); }
             main { call spin(); }",
            0,
        );
        assert!(r.truncated);
    }

    #[test]
    fn read_is_deterministic_in_the_seed() {
        let src = "var g; main { read g; print g; read g; print g; }";
        let (_, r1) = run_src(src, 11);
        let (_, r2) = run_src(src, 11);
        let (_, r3) = run_src(src, 12);
        assert_eq!(r1.printed, r2.printed);
        assert_ne!(r1.printed, r3.printed);
    }

    #[test]
    fn observations_capture_mod_and_use() {
        let (program, r) = run_src(
            "var g, h, k;
             proc work() { g = h; }
             main { call work(); }",
            0,
        );
        let site = program.sites().next().expect("site");
        let by_name = |n: &str| program.vars().find(|&v| program.var_name(v) == n).unwrap();
        let obs = r.observation(site);
        assert_eq!(obs.invocations, 1);
        assert!(obs.modified.contains(by_name("g").index()));
        assert!(!obs.modified.contains(by_name("h").index()));
        assert!(obs.used.contains(by_name("h").index()));
        assert!(!obs.used.contains(by_name("k").index()));
    }

    #[test]
    fn observation_translates_formals_to_actuals() {
        let (program, r) = run_src(
            "var g;
             proc set(x) { x = 1; }
             main { call set(g); }",
            0,
        );
        let site = program.sites().next().expect("site");
        let g = program
            .vars()
            .find(|&v| program.var_name(v) == "g")
            .unwrap();
        assert!(r.observation(site).modified.contains(g.index()));
    }

    #[test]
    fn element_writes_recorded_for_global_arrays() {
        let (program, r) = run_src(
            "var a[*, *];
             proc w(row[*]) { row[3] = 1; }
             main { call w(a[5, *]); }",
            0,
        );
        let site = program.sites().next().expect("site");
        let a = program
            .vars()
            .find(|&v| program.var_name(v) == "a")
            .unwrap();
        let obs = r.observation(site);
        assert!(obs.modified.contains(a.index()));
        assert!(obs
            .array_writes
            .iter()
            .any(|(v, coords)| *v == a && coords == &vec![5, 3]));
    }

    #[test]
    fn builder_programs_run_too() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::constant(3));
        let main = b.main();
        b.call(main, p, &[g]);
        b.print(main, Expr::load(g));
        let program = b.finish().expect("valid");
        let r = Interpreter::new(&program, 0).run();
        assert_eq!(r.printed, vec![3]);
    }
}
