#![warn(missing_docs)]

//! A procedural intermediate representation for interprocedural
//! side-effect analysis.
//!
//! This crate models the class of programs Cooper & Kennedy's PLDI 1988
//! paper analyses: a program is a set of procedures with
//!
//! * **reference formal parameters** (FORTRAN/Pascal `var` parameters) —
//!   binding an actual to a formal at a call site makes the callee's writes
//!   visible to the caller;
//! * **global and local scalar/array variables**, with optional **lexical
//!   nesting** of procedure declarations (Pascal style, §3.3 and §4 of the
//!   paper) — a local of `p` is global to procedures declared inside `p`;
//! * **call sites** that pass variables (or array sections) by reference
//!   and arbitrary expressions by value.
//!
//! The representation is deliberately *flow-insensitive-friendly*: the
//! analyses never look at intraprocedural control flow beyond collecting,
//! per statement, which variables it locally modifies ([`LMOD`]) and uses.
//!
//! Entry points:
//!
//! * [`Program`] — the immutable, validated program; built through
//!   [`ProgramBuilder`] or parsed from MiniProc source by the
//!   `modref-frontend` crate.
//! * [`LocalEffects`] — `LMOD`/`IMOD` and `LUSE`/`IUSE` sets (§2), with the
//!   nested-procedure `IMOD` extension of §3.3.
//! * [`CallGraph`] — the call multi-graph `C = (N_C, E_C)` of §2.
//!
//! [`LMOD`]: LocalEffects
//!
//! # Examples
//!
//! Build the paper's running-example shape — a procedure that modifies a
//! global and one of its reference formals — and inspect its local sets:
//!
//! ```
//! use modref_ir::{Expr, ProgramBuilder};
//!
//! # fn main() -> Result<(), modref_ir::ValidationError> {
//! let mut b = ProgramBuilder::new();
//! let g = b.global("g");
//! let p = b.proc_("p", &["x", "y"]);
//! b.assign(p, b.formal(p, 0), Expr::constant(1)); // x := 1
//! b.assign(p, g, Expr::load(b.formal(p, 1)));     // g := y
//! let main = b.main();
//! b.call(main, p, &[g, g]);
//! let program = b.finish()?;
//!
//! let effects = modref_ir::LocalEffects::compute(&program);
//! assert!(effects.imod(p).contains(b.formal(p, 0).index()));
//! assert!(effects.imod(p).contains(g.index()));
//! assert!(effects.iuse(p).contains(b.formal(p, 1).index()));
//! # Ok(())
//! # }
//! ```

mod builder;
mod callgraph;
mod edit;
mod error;
mod ids;
mod localeffects;
mod pretty;
mod program;
mod prune;
mod stats;
mod stmt;
mod symbol;
mod visit;

pub use builder::ProgramBuilder;
pub use callgraph::CallGraph;
pub use edit::{Edit, EditDelta, EditError};
pub use error::ValidationError;
pub use ids::{CallSiteId, ProcId, VarId};
pub use localeffects::{flat_effects_of, lmod_of_stmt, luse_of_stmt, LocalEffects, LocalEffectsIn};
pub use program::{CallSite, Procedure, Program, VarInfo, VarKind};
pub use prune::PrunedProgram;
pub use stats::ProgramStats;
pub use stmt::{Actual, BinOp, Expr, Ref, Stmt, Subscript, UnOp};
pub use symbol::{Interner, Symbol};
pub use visit::{walk_exprs, walk_stmts};
