//! The call multi-graph `C = (N_C, E_C)`.

use modref_graph::{DiGraph, EdgeId};

use crate::ids::{CallSiteId, ProcId};
use crate::program::Program;

/// The program's call multi-graph: one node per procedure, one edge per
/// call site (§2 of the paper). Parallel edges are kept — each call site is
/// a distinct binding event.
///
/// # Examples
///
/// ```
/// use modref_ir::{CallGraph, Expr, ProgramBuilder};
///
/// # fn main() -> Result<(), modref_ir::ValidationError> {
/// let mut b = ProgramBuilder::new();
/// let p = b.proc_("p", &[]);
/// let main = b.main();
/// b.call(main, p, &[]);
/// b.call(main, p, &[]); // second site, second edge
/// let program = b.finish()?;
/// let cg = CallGraph::build(&program);
/// assert_eq!(cg.graph().num_edges(), 2);
/// assert_eq!(cg.graph().num_nodes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CallGraph {
    graph: DiGraph,
}

impl CallGraph {
    /// Builds the call multi-graph. Edge `e` corresponds to call site
    /// `CallSiteId::new(e)` — the edge and site id spaces coincide by
    /// construction.
    pub fn build(program: &Program) -> Self {
        let mut graph = DiGraph::new(program.num_procs());
        for s in program.sites() {
            let site = program.site(s);
            let e = graph.add_edge(site.caller().index(), site.callee().index());
            debug_assert_eq!(e, s.index());
        }
        CallGraph { graph }
    }

    /// The underlying graph; node `i` is procedure `i`.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The call site an edge came from.
    pub fn site_of_edge(&self, e: EdgeId) -> CallSiteId {
        CallSiteId::new(e)
    }

    /// The edge a call site produced.
    pub fn edge_of_site(&self, s: CallSiteId) -> EdgeId {
        s.index()
    }

    /// Which procedures are reachable from main by some call chain (§3.3's
    /// standing assumption; main itself is always reachable).
    pub fn reachable_from_main(&self) -> Vec<bool> {
        modref_graph::reach::reachable_from(&self.graph, [ProcId::MAIN.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::Expr;

    #[test]
    fn edges_match_sites() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        let q = b.proc_("q", &[]);
        b.assign(p, b.formal(p, 0), Expr::constant(1));
        b.call(p, q, &[]);
        let main = b.main();
        b.call(main, p, &[g]);
        let program = b.finish().expect("valid");
        let cg = CallGraph::build(&program);

        assert_eq!(cg.graph().num_edges(), 2);
        for s in program.sites() {
            let e = cg.edge_of_site(s);
            let edge = cg.graph().edge(e);
            assert_eq!(edge.from, program.site(s).caller().index());
            assert_eq!(edge.to, program.site(s).callee().index());
            assert_eq!(cg.site_of_edge(e), s);
        }
    }

    #[test]
    fn reachability_from_main() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let dead = b.proc_("dead", &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");
        let cg = CallGraph::build(&program);
        let r = cg.reachable_from_main();
        assert!(r[main.index()]);
        assert!(r[p.index()]);
        assert!(!r[dead.index()]);
    }

    #[test]
    fn recursion_makes_cycle() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        b.call(p, q, &[]);
        b.call(q, p, &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");
        let cg = CallGraph::build(&program);
        let sccs = modref_graph::tarjan(cg.graph());
        assert_eq!(sccs.component_of(p.index()), sccs.component_of(q.index()));
    }
}
