//! `LMOD`/`LUSE` per statement and `IMOD`/`IUSE` per procedure.
//!
//! These are the "initial information" sets of §2 of the paper, gathered by
//! purely local inspection:
//!
//! * `LMOD(s)` — variables a statement might modify, exclusive of any
//!   procedure calls in it;
//! * `IMOD(p) = ⋃_{s∈p} LMOD(s)` — the *initially modified* set;
//! * the §3.3 nesting extension — `IMOD(p)` additionally absorbs
//!   `IMOD(q) ∖ LOCAL(q)` for every procedure `q` declared in `p`, computed
//!   bottom-up, so that a modification of `p`'s local by a procedure nested
//!   in `p` is charged to `p` before the interprocedural phases run.
//!
//! The `USE` problem is "analogous" (§1); this module computes both sides.

use modref_bitset::{BitSet, EffectSet};

use crate::ids::ProcId;
use crate::program::Program;
use crate::stmt::{Actual, Expr, Ref, Stmt};
use crate::visit::{walk_exprs, walk_stmts};

/// The local (intraprocedural) effect sets of a program.
///
/// # Examples
///
/// ```
/// use modref_ir::{Expr, LocalEffects, ProgramBuilder};
///
/// # fn main() -> Result<(), modref_ir::ValidationError> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let p = b.proc_("p", &[]);
/// let inner = b.nested_proc(p, "inner", &[]);
/// let t = b.local(p, "t");
/// b.assign(inner, t, Expr::load(g)); // inner writes p's local, reads g
/// let program = b.finish()?;
///
/// let fx = LocalEffects::compute(&program);
/// // The §3.3 extension charges the write of t to p as well …
/// assert!(fx.imod(p).contains(t.index()));
/// // … but a plain (unextended) IMOD(p) would not see it.
/// assert!(!fx.imod_flat(p).contains(t.index()));
/// assert!(fx.iuse(p).contains(g.index()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LocalEffectsIn<S: EffectSet> {
    imod_flat: Vec<S>,
    iuse_flat: Vec<S>,
    imod: Vec<S>,
    iuse: Vec<S>,
}

/// [`LocalEffectsIn`] over the paper's dense bit vectors — the
/// representation every public API defaults to.
pub type LocalEffects = LocalEffectsIn<BitSet>;

impl<S: EffectSet> LocalEffectsIn<S> {
    /// Computes all local sets for `program` in one pass over every
    /// statement plus a bottom-up sweep of the nesting tree — linear in
    /// program size, as §3.3 requires.
    pub fn compute(program: &Program) -> Self {
        let nv = program.num_vars();
        let np = program.num_procs();
        let mut imod_flat = vec![S::empty(nv); np];
        let mut iuse_flat = vec![S::empty(nv); np];

        for p in program.procs() {
            let (m, u) = (&mut imod_flat[p.index()], &mut iuse_flat[p.index()]);
            walk_stmts(program.proc_(p).body(), &mut |s| {
                accumulate_stmt(program, s, m, u);
            });
        }

        Self::from_flat_sets(program, imod_flat, iuse_flat)
    }

    /// [`Self::compute`] with the per-procedure statement walks spread
    /// over `pool` — each procedure's flat sets depend only on its own
    /// body, so the scan is embarrassingly parallel. The §3.3 sweep stays
    /// sequential (it is a tiny tree fold), and the result is identical to
    /// the sequential path at any thread count.
    pub fn compute_pooled(program: &Program, pool: &modref_par::ThreadPool) -> Self {
        if pool.is_sequential() {
            return Self::compute(program);
        }
        let nv = program.num_vars();
        let np = program.num_procs();
        let flat: Vec<(S, S)> = pool.par_map(np, |i| {
            let mut m = S::empty(nv);
            let mut u = S::empty(nv);
            walk_stmts(program.proc_(ProcId::new(i)).body(), &mut |s| {
                accumulate_stmt(program, s, &mut m, &mut u);
            });
            (m, u)
        });
        let (imod_flat, iuse_flat) = flat.into_iter().unzip();
        Self::from_flat_sets(program, imod_flat, iuse_flat)
    }

    /// The §3.3 nesting extension on top of already-gathered flat sets.
    fn from_flat_sets(program: &Program, imod_flat: Vec<S>, iuse_flat: Vec<S>) -> Self {
        // §3.3 extension, children before parents. Builder and front end
        // both create children after their parent, but sort by level to be
        // independent of id order.
        let mut order: Vec<ProcId> = program.procs().collect();
        order.sort_by_key(|&p| std::cmp::Reverse(program.proc_(p).level()));

        let mut imod = imod_flat.clone();
        let mut iuse = iuse_flat.clone();
        for &p in &order {
            // Absorb each child's extended set, minus the child's locals.
            let children = program.proc_(p).children().to_vec();
            for q in children {
                let local_q = S::from_dense_owned(program.local_set(q));
                let (child_m, child_u) = (imod[q.index()].clone(), iuse[q.index()].clone());
                imod[p.index()].union_with_difference(&child_m, &local_q);
                iuse[p.index()].union_with_difference(&child_u, &local_q);
            }
        }

        LocalEffectsIn {
            imod_flat,
            iuse_flat,
            imod,
            iuse,
        }
    }

    /// The maximally conservative local effects: every set is `p`'s full
    /// visible set. Used as the sound fallback when a guarded analysis is
    /// cut short before (or during) the local phase — whatever a statement
    /// in `p` actually touches is visible in `p`, so these sets
    /// over-approximate any exactly computed ones.
    pub fn conservative(program: &Program) -> Self {
        let visible: Vec<S> = program
            .visible_sets()
            .into_iter()
            .map(S::from_dense_owned)
            .collect();
        LocalEffectsIn {
            imod_flat: visible.clone(),
            iuse_flat: visible.clone(),
            imod: visible.clone(),
            iuse: visible,
        }
    }

    /// Converts every set to the dense default representation. For the
    /// dense instantiation this is a field-by-field identity move.
    pub fn into_dense(self) -> LocalEffects {
        fn conv<S: EffectSet>(sets: Vec<S>) -> Vec<BitSet> {
            sets.into_iter().map(S::into_dense).collect()
        }
        LocalEffectsIn {
            imod_flat: conv(self.imod_flat),
            iuse_flat: conv(self.iuse_flat),
            imod: conv(self.imod),
            iuse: conv(self.iuse),
        }
    }

    /// `IMOD(p)` with the §3.3 nesting extension. This is the set the
    /// interprocedural phases consume.
    pub fn imod(&self, p: ProcId) -> &S {
        &self.imod[p.index()]
    }

    /// `IUSE(p)` with the nesting extension.
    pub fn iuse(&self, p: ProcId) -> &S {
        &self.iuse[p.index()]
    }

    /// Plain `IMOD(p) = ⋃ LMOD(s)` without the nesting extension.
    pub fn imod_flat(&self, p: ProcId) -> &S {
        &self.imod_flat[p.index()]
    }

    /// Plain `IUSE(p)` without the nesting extension.
    pub fn iuse_flat(&self, p: ProcId) -> &S {
        &self.iuse_flat[p.index()]
    }

    /// All extended `IMOD` sets, indexed by procedure.
    pub fn imod_all(&self) -> &[S] {
        &self.imod
    }

    /// All extended `IUSE` sets, indexed by procedure.
    pub fn iuse_all(&self) -> &[S] {
        &self.iuse
    }
}

/// The flat `(IMOD(p), IUSE(p))` of a single procedure — one walk over
/// `p`'s own body, no nesting extension. This is the per-procedure slice
/// of [`LocalEffects::compute`], exposed so demand-driven clients can pay
/// for exactly the procedures a query touches instead of the whole
/// program.
pub fn flat_effects_of(program: &Program, p: ProcId) -> (BitSet, BitSet) {
    let nv = program.num_vars();
    let mut m = BitSet::new(nv);
    let mut u = BitSet::new(nv);
    walk_stmts(program.proc_(p).body(), &mut |s| {
        accumulate_stmt(program, s, &mut m, &mut u);
    });
    (m, u)
}

/// `LMOD(s)`: the variables statement `s` (including statements nested in
/// it) might modify, exclusive of procedure calls.
///
/// # Examples
///
/// ```
/// use modref_ir::{lmod_of_stmt, Expr, ProgramBuilder, Ref, Stmt};
///
/// # fn main() -> Result<(), modref_ir::ValidationError> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let program = b.finish()?;
/// let s = Stmt::Assign { target: Ref::scalar(g), value: Expr::constant(1) };
/// assert!(lmod_of_stmt(&program, &s).contains(g.index()));
/// # Ok(())
/// # }
/// ```
pub fn lmod_of_stmt(program: &Program, stmt: &Stmt) -> BitSet {
    let mut m = BitSet::new(program.num_vars());
    let mut u = BitSet::new(program.num_vars());
    walk_stmts(std::slice::from_ref(stmt), &mut |s| {
        accumulate_stmt(program, s, &mut m, &mut u);
    });
    m
}

/// `LUSE(s)`: the variables statement `s` (including nested statements)
/// might read, exclusive of procedure calls. By-value actual expressions
/// *are* read locally (the caller evaluates them), as are subscript
/// variables of by-reference array sections.
pub fn luse_of_stmt(program: &Program, stmt: &Stmt) -> BitSet {
    let mut m = BitSet::new(program.num_vars());
    let mut u = BitSet::new(program.num_vars());
    walk_stmts(std::slice::from_ref(stmt), &mut |s| {
        accumulate_stmt(program, s, &mut m, &mut u);
    });
    u
}

fn accumulate_stmt<S: EffectSet>(program: &Program, s: &Stmt, m: &mut S, u: &mut S) {
    match s {
        Stmt::Assign { target, value } => {
            m.insert(target.var.index());
            use_subscripts(target, u);
            use_expr(value, u);
        }
        Stmt::Read { target } => {
            m.insert(target.var.index());
            use_subscripts(target, u);
        }
        Stmt::Print { value } => use_expr(value, u),
        Stmt::If { cond, .. } | Stmt::While { cond, .. } => use_expr(cond, u),
        Stmt::Call { site } => {
            for arg in program.site(*site).args() {
                match arg {
                    // Reference actuals are not locally used or modified —
                    // their effects come from the callee's summary.
                    Actual::Ref(r) => use_subscripts(r, u),
                    Actual::Value(e) => use_expr(e, u),
                }
            }
        }
    }
}

fn use_expr<S: EffectSet>(e: &Expr, u: &mut S) {
    walk_exprs(e, &mut |sub| {
        if let Expr::Load(r) = sub {
            u.insert(r.var.index());
            use_subscripts(r, u);
        }
    });
}

fn use_subscripts<S: EffectSet>(r: &Ref, u: &mut S) {
    for sub in &r.subs {
        if let crate::stmt::Subscript::Var(v) = sub {
            u.insert(v.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::{Actual, BinOp, Subscript};

    #[test]
    fn assign_and_read_modify() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let main = b.main();
        b.assign(main, g, Expr::load(h));
        b.read(main, h);
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        assert!(fx.imod(main).contains(g.index()));
        assert!(fx.imod(main).contains(h.index()));
        assert!(fx.iuse(main).contains(h.index()));
        assert!(!fx.iuse(main).contains(g.index()));
    }

    #[test]
    fn control_flow_conditions_are_uses() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let k = b.global("k");
        let main = b.main();
        b.stmt(
            main,
            Stmt::While {
                cond: Expr::binary(BinOp::Lt, Expr::load(g), Expr::constant(3)),
                body: vec![Stmt::If {
                    cond: Expr::load(k),
                    then_branch: vec![],
                    else_branch: vec![],
                }],
            },
        );
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        assert!(fx.iuse(main).contains(g.index()));
        assert!(fx.iuse(main).contains(k.index()));
        assert!(fx.imod(main).is_empty());
    }

    #[test]
    fn call_actuals_value_used_reference_not() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &["x", "y"]);
        b.assign(p, b.formal(p, 0), Expr::constant(0));
        let main = b.main();
        b.call_args(
            main,
            p,
            vec![
                Actual::Ref(crate::Ref::scalar(g)),
                Actual::Value(Expr::load(h)),
            ],
        );
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        // h is evaluated by the caller; g is only bound.
        assert!(fx.iuse(main).contains(h.index()));
        assert!(!fx.iuse(main).contains(g.index()));
        assert!(!fx.imod(main).contains(g.index()));
    }

    #[test]
    fn subscripts_are_uses_target_array_is_mod() {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", 2);
        let i = b.global("i");
        let main = b.main();
        b.assign_indexed(
            main,
            a,
            vec![Subscript::Var(i), Subscript::Const(0)],
            Expr::constant(9),
        );
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        assert!(fx.imod(main).contains(a.index()));
        assert!(fx.iuse(main).contains(i.index()));
        assert!(!fx.imod(main).contains(i.index()));
    }

    #[test]
    fn nesting_extension_is_transitive_and_filters_locals() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &[]);
        let tp = b.local(p, "tp");
        let q = b.nested_proc(p, "q", &[]);
        let tq = b.local(q, "tq");
        let r = b.nested_proc(q, "r", &[]);
        // r writes g (level 0), p's local, q's local.
        b.assign(r, g, Expr::constant(1));
        b.assign(r, tp, Expr::constant(2));
        b.assign(r, tq, Expr::constant(3));
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);

        // q absorbs r's writes except … r has no locals, so everything.
        assert!(fx.imod(q).contains(tq.index()));
        assert!(fx.imod(q).contains(tp.index()));
        assert!(fx.imod(q).contains(g.index()));
        // p absorbs q's extended set minus q's locals: tq filtered out.
        assert!(fx.imod(p).contains(tp.index()));
        assert!(fx.imod(p).contains(g.index()));
        assert!(!fx.imod(p).contains(tq.index()));
        // flat sets untouched.
        assert!(fx.imod_flat(p).is_empty());
        assert!(fx.imod_flat(q).is_empty());
    }

    #[test]
    fn formals_filtered_by_nesting_extension() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.nested_proc(p, "q", &["x"]);
        let xq = b.formal(q, 0);
        b.assign(q, xq, Expr::constant(1));
        let program = b.finish().expect("valid");
        let fx = LocalEffects::compute(&program);
        // q's formal is local to q; p must not inherit it.
        assert!(fx.imod(q).contains(xq.index()));
        assert!(!fx.imod(p).contains(xq.index()));
    }

    #[test]
    fn pooled_matches_sequential() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &[]);
        let tp = b.local(p, "tp");
        let q = b.nested_proc(p, "q", &[]);
        b.assign(q, tp, Expr::load(g));
        b.assign(p, g, Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");

        let seq = LocalEffects::compute(&program);
        for threads in [1, 2, 4] {
            let pool = modref_par::ThreadPool::new(threads);
            let par = LocalEffects::compute_pooled(&program, &pool);
            for pr in program.procs() {
                assert_eq!(seq.imod(pr), par.imod(pr));
                assert_eq!(seq.iuse(pr), par.iuse(pr));
                assert_eq!(seq.imod_flat(pr), par.imod_flat(pr));
                assert_eq!(seq.iuse_flat(pr), par.iuse_flat(pr));
            }
        }
    }

    #[test]
    fn per_statement_helpers() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let program = b.finish().expect("valid");
        let s = Stmt::If {
            cond: Expr::load(h),
            then_branch: vec![Stmt::Assign {
                target: crate::Ref::scalar(g),
                value: Expr::constant(1),
            }],
            else_branch: vec![],
        };
        let m = lmod_of_stmt(&program, &s);
        let u = luse_of_stmt(&program, &s);
        assert!(m.contains(g.index()));
        assert!(!m.contains(h.index()));
        assert!(u.contains(h.index()));
    }
}
