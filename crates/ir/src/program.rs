//! The validated [`Program`] and its component tables.

use modref_bitset::BitSet;

use crate::error::ValidationError;
use crate::ids::{CallSiteId, ProcId, VarId};
use crate::stmt::{Actual, Expr, Ref, Stmt, Subscript};
use crate::symbol::{Interner, Symbol};
use crate::visit::walk_stmts;

/// What role a variable plays in its scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Program-scope variable, visible in every procedure.
    Global,
    /// Declared in a procedure's `var` section.
    Local,
    /// A reference formal parameter, at the given zero-based position.
    Formal {
        /// Ordinal position in the owner's parameter list.
        position: usize,
    },
}

/// Everything known about one variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarInfo {
    pub(crate) name: Symbol,
    pub(crate) owner: Option<ProcId>,
    pub(crate) kind: VarKind,
    pub(crate) rank: usize,
}

impl VarInfo {
    /// The variable's identifier.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// The declaring procedure; `None` for globals.
    pub fn owner(&self) -> Option<ProcId> {
        self.owner
    }

    /// Global, local, or formal.
    pub fn kind(&self) -> VarKind {
        self.kind
    }

    /// Array rank; `0` for scalars.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// `true` for program-scope globals.
    pub fn is_global(&self) -> bool {
        self.owner.is_none()
    }

    /// `true` for reference formal parameters.
    pub fn is_formal(&self) -> bool {
        matches!(self.kind, VarKind::Formal { .. })
    }
}

/// One procedure (the main program is procedure [`ProcId::MAIN`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Procedure {
    pub(crate) name: Symbol,
    pub(crate) formals: Vec<VarId>,
    pub(crate) locals: Vec<VarId>,
    pub(crate) parent: Option<ProcId>,
    pub(crate) level: u32,
    pub(crate) children: Vec<ProcId>,
    pub(crate) body: Vec<Stmt>,
}

impl Procedure {
    /// The procedure's identifier.
    pub fn name(&self) -> Symbol {
        self.name
    }

    /// Reference formal parameters, in declaration order.
    pub fn formals(&self) -> &[VarId] {
        &self.formals
    }

    /// Locally declared variables (excluding formals).
    pub fn locals(&self) -> &[VarId] {
        &self.locals
    }

    /// The lexically enclosing procedure; `None` only for the main program.
    pub fn parent(&self) -> Option<ProcId> {
        self.parent
    }

    /// Lexical nesting depth: `0` for the main program, `1` for top-level
    /// procedures, and so on (the paper's `0..d_P` numbering, §4).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Procedures declared directly inside this one (`Nest(p)`, §3.3).
    pub fn children(&self) -> &[ProcId] {
        &self.children
    }

    /// The statement list.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }
}

/// One call site: a single textual `call` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub(crate) caller: ProcId,
    pub(crate) callee: ProcId,
    pub(crate) args: Vec<Actual>,
}

impl CallSite {
    /// The procedure containing the call statement.
    pub fn caller(&self) -> ProcId {
        self.caller
    }

    /// The invoked procedure.
    pub fn callee(&self) -> ProcId {
        self.callee
    }

    /// Actual arguments, one per callee formal.
    pub fn args(&self) -> &[Actual] {
        &self.args
    }
}

/// A complete, validated program.
///
/// Construct through [`crate::ProgramBuilder`] (or the MiniProc front end);
/// [`Program::validate`] has already accepted anything you can hold.
///
/// The variable table is program-wide: globals, locals, and formals of all
/// procedures share the dense [`VarId`] space, mirroring the paper's "bit
/// vectors for interprocedural analysis will be exceedingly long" universe.
#[derive(Debug, Clone)]
pub struct Program {
    pub(crate) symbols: Interner,
    pub(crate) vars: Vec<VarInfo>,
    pub(crate) procs: Vec<Procedure>,
    pub(crate) sites: Vec<CallSite>,
}

impl Program {
    /// Number of procedures, `N` in the paper (including main).
    pub fn num_procs(&self) -> usize {
        self.procs.len()
    }

    /// Number of call sites, `E` in the paper.
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Size of the variable universe (globals + locals + formals).
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The main program.
    pub fn main(&self) -> ProcId {
        ProcId::MAIN
    }

    /// Looks up a procedure.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn proc_(&self, p: ProcId) -> &Procedure {
        &self.procs[p.index()]
    }

    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&self, v: VarId) -> &VarInfo {
        &self.vars[v.index()]
    }

    /// Looks up a call site.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn site(&self, s: CallSiteId) -> &CallSite {
        &self.sites[s.index()]
    }

    /// Iterates over all procedure ids.
    pub fn procs(&self) -> impl ExactSizeIterator<Item = ProcId> {
        (0..self.procs.len()).map(ProcId::new)
    }

    /// Iterates over all variable ids.
    pub fn vars(&self) -> impl ExactSizeIterator<Item = VarId> {
        (0..self.vars.len()).map(VarId::new)
    }

    /// Iterates over all call-site ids.
    pub fn sites(&self) -> impl ExactSizeIterator<Item = CallSiteId> {
        (0..self.sites.len()).map(CallSiteId::new)
    }

    /// The symbol interner (to resolve names for display).
    pub fn symbols(&self) -> &Interner {
        &self.symbols
    }

    /// The name of procedure `p` as text.
    pub fn proc_name(&self, p: ProcId) -> &str {
        self.symbols.resolve(self.procs[p.index()].name)
    }

    /// The name of variable `v` as text.
    pub fn var_name(&self, v: VarId) -> &str {
        self.symbols.resolve(self.vars[v.index()].name)
    }

    /// The declaration level of `v`: the level of its owning procedure, or
    /// `0` for globals (the paper's convention that level 0 is the main
    /// program's scope).
    pub fn var_level(&self, v: VarId) -> u32 {
        match self.vars[v.index()].owner {
            None => 0,
            Some(p) => self.procs[p.index()].level,
        }
    }

    /// The deepest procedure nesting level, `d_P` in §4.
    pub fn max_level(&self) -> u32 {
        self.procs.iter().map(|p| p.level).max().unwrap_or(0)
    }

    /// `LOCAL(p)`: the variables declared in `p` — its locals *and* its
    /// formals (the paper's `LOCAL` contains "the names of all variables
    /// declared in `p`", which for the deallocation argument of §2 must
    /// include the formals).
    pub fn local_set(&self, p: ProcId) -> BitSet {
        let proc_ = &self.procs[p.index()];
        let mut set = BitSet::new(self.vars.len());
        for &v in proc_.formals.iter().chain(&proc_.locals) {
            set.insert(v.index());
        }
        set
    }

    /// All `LOCAL(p)` sets at once, indexed by procedure id.
    pub fn local_sets(&self) -> Vec<BitSet> {
        self.procs().map(|p| self.local_set(p)).collect()
    }

    /// The set of program-scope globals.
    pub fn global_set(&self) -> BitSet {
        let mut set = BitSet::new(self.vars.len());
        for (i, v) in self.vars.iter().enumerate() {
            if v.is_global() {
                set.insert(i);
            }
        }
        set
    }

    /// Lexical ancestors of `p`, nearest first, excluding `p` itself.
    pub fn ancestors(&self, p: ProcId) -> Ancestors<'_> {
        Ancestors {
            program: self,
            next: self.procs[p.index()].parent,
        }
    }

    /// `true` if variable `v` is in scope inside procedure `p`: it is a
    /// global, or declared by `p` or one of `p`'s lexical ancestors.
    pub fn visible_in(&self, v: VarId, p: ProcId) -> bool {
        match self.vars[v.index()].owner {
            None => true,
            Some(owner) => owner == p || self.ancestors(p).any(|a| a == owner),
        }
    }

    /// Every variable visible in `p`: the globals plus everything declared
    /// by `p` or its lexical ancestors. This is the coarsest sound `MOD`
    /// bound for `p` — no statement reachable from `p` can touch a
    /// variable outside it — and the guarded pipeline's conservative
    /// fallback (see `docs/ROBUSTNESS.md`).
    pub fn visible_set(&self, p: ProcId) -> BitSet {
        let mut set = self.global_set();
        let mut owner = Some(p);
        while let Some(q) = owner {
            set.union_with(&self.local_set(q));
            owner = self.procs[q.index()].parent;
        }
        set
    }

    /// All visible sets at once, indexed by procedure id.
    pub fn visible_sets(&self) -> Vec<BitSet> {
        self.procs().map(|p| self.visible_set(p)).collect()
    }

    /// If `v` is a formal parameter, its `(owner, position)` pair.
    pub fn formal_position(&self, v: VarId) -> Option<(ProcId, usize)> {
        let info = &self.vars[v.index()];
        match info.kind {
            VarKind::Formal { position } => {
                Some((info.owner.expect("formals have owners"), position))
            }
            _ => None,
        }
    }

    /// Average number of formal parameters per procedure (`μ_f`, §3.1).
    pub fn mean_formals(&self) -> f64 {
        if self.procs.is_empty() {
            return 0.0;
        }
        let total: usize = self.procs.iter().map(|p| p.formals.len()).sum();
        total as f64 / self.procs.len() as f64
    }

    /// Average number of actual parameters per call site (`μ_a`, §3.1).
    pub fn mean_actuals(&self) -> f64 {
        if self.sites.is_empty() {
            return 0.0;
        }
        let total: usize = self.sites.iter().map(|s| s.args.len()).sum();
        total as f64 / self.sites.len() as f64
    }

    /// Returns a copy of the program with every procedure's body replaced
    /// by `f(proc, old_body)` — the transformation hook optimizer passes
    /// use (e.g. dead-store elimination in `modref-opt`).
    ///
    /// # Errors
    ///
    /// The transformed program is re-validated; a transformation that
    /// breaks an invariant (say, dropping or duplicating a call
    /// statement) is rejected with the underlying [`ValidationError`].
    pub fn map_bodies(
        &self,
        mut f: impl FnMut(ProcId, &[Stmt]) -> Vec<Stmt>,
    ) -> Result<Program, ValidationError> {
        let mut out = self.clone();
        for (i, proc_) in out.procs.iter_mut().enumerate() {
            let p = ProcId::new(i);
            proc_.body = f(p, &self.procs[i].body);
        }
        out.validate()?;
        Ok(out)
    }

    /// Checks every structural invariant; builders call this before handing
    /// a `Program` out.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: dangling ids, ownership
    /// mismatches, arity mismatches, out-of-scope references, calls to an
    /// invisible procedure or to main, subscript/rank mismatches, or a
    /// malformed nesting tree.
    pub fn validate(&self) -> Result<(), ValidationError> {
        self.validate_vars()?;
        self.validate_nesting()?;
        for p in self.procs() {
            self.validate_body(p)?;
        }
        self.validate_sites()?;
        Ok(())
    }

    fn validate_vars(&self) -> Result<(), ValidationError> {
        for (i, info) in self.vars.iter().enumerate() {
            let v = VarId::new(i);
            match (info.owner, info.kind) {
                (None, VarKind::Global) => {}
                (None, _) => return Err(ValidationError::OwnerlessNonGlobal { var: v }),
                (Some(_), VarKind::Global) => return Err(ValidationError::OwnedGlobal { var: v }),
                (Some(p), VarKind::Local) => {
                    let proc_ = self
                        .procs
                        .get(p.index())
                        .ok_or(ValidationError::DanglingProc { proc_: p })?;
                    if !proc_.locals.contains(&v) {
                        return Err(ValidationError::OwnershipMismatch { var: v, proc_: p });
                    }
                }
                (Some(p), VarKind::Formal { position }) => {
                    let proc_ = self
                        .procs
                        .get(p.index())
                        .ok_or(ValidationError::DanglingProc { proc_: p })?;
                    if proc_.formals.get(position) != Some(&v) {
                        return Err(ValidationError::OwnershipMismatch { var: v, proc_: p });
                    }
                }
            }
        }
        for (i, proc_) in self.procs.iter().enumerate() {
            let p = ProcId::new(i);
            for (pos, &f) in proc_.formals.iter().enumerate() {
                let info = self
                    .vars
                    .get(f.index())
                    .ok_or(ValidationError::DanglingVar { var: f })?;
                if info.owner != Some(p) || info.kind != (VarKind::Formal { position: pos }) {
                    return Err(ValidationError::OwnershipMismatch { var: f, proc_: p });
                }
            }
            for &l in &proc_.locals {
                let info = self
                    .vars
                    .get(l.index())
                    .ok_or(ValidationError::DanglingVar { var: l })?;
                if info.owner != Some(p) || info.kind != VarKind::Local {
                    return Err(ValidationError::OwnershipMismatch { var: l, proc_: p });
                }
            }
        }
        Ok(())
    }

    fn validate_nesting(&self) -> Result<(), ValidationError> {
        if self.procs.is_empty() {
            return Err(ValidationError::NoMain);
        }
        let main = &self.procs[ProcId::MAIN.index()];
        if main.parent.is_some() || main.level != 0 {
            return Err(ValidationError::BadMain);
        }
        for (i, proc_) in self.procs.iter().enumerate() {
            let p = ProcId::new(i);
            match proc_.parent {
                None => {
                    if p != ProcId::MAIN {
                        return Err(ValidationError::OrphanProc { proc_: p });
                    }
                }
                Some(parent) => {
                    let pp = self
                        .procs
                        .get(parent.index())
                        .ok_or(ValidationError::DanglingProc { proc_: parent })?;
                    if proc_.level != pp.level + 1 {
                        return Err(ValidationError::BadLevel { proc_: p });
                    }
                    if !pp.children.contains(&p) {
                        return Err(ValidationError::BadLevel { proc_: p });
                    }
                }
            }
            for &c in &proc_.children {
                let cp = self
                    .procs
                    .get(c.index())
                    .ok_or(ValidationError::DanglingProc { proc_: c })?;
                if cp.parent != Some(p) {
                    return Err(ValidationError::BadLevel { proc_: c });
                }
            }
        }
        Ok(())
    }

    fn validate_ref(&self, p: ProcId, r: &Ref) -> Result<(), ValidationError> {
        let info = self
            .vars
            .get(r.var.index())
            .ok_or(ValidationError::DanglingVar { var: r.var })?;
        if !self.visible_in(r.var, p) {
            return Err(ValidationError::OutOfScope {
                var: r.var,
                proc_: p,
            });
        }
        if !r.subs.is_empty() && r.subs.len() != info.rank {
            return Err(ValidationError::RankMismatch {
                var: r.var,
                expected: info.rank,
                found: r.subs.len(),
            });
        }
        for sub in &r.subs {
            if let Subscript::Var(sv) = sub {
                if !self.visible_in(*sv, p) {
                    return Err(ValidationError::OutOfScope { var: *sv, proc_: p });
                }
            }
        }
        Ok(())
    }

    fn validate_expr(&self, p: ProcId, e: &Expr) -> Result<(), ValidationError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Load(r) => self.validate_ref(p, r),
            Expr::Unary(_, inner) => self.validate_expr(p, inner),
            Expr::Binary(_, l, r) => {
                self.validate_expr(p, l)?;
                self.validate_expr(p, r)
            }
        }
    }

    fn validate_body(&self, p: ProcId) -> Result<(), ValidationError> {
        let mut result = Ok(());
        walk_stmts(&self.procs[p.index()].body, &mut |s| {
            if result.is_err() {
                return;
            }
            result = match s {
                Stmt::Assign { target, value } => self
                    .validate_ref(p, target)
                    .and_then(|()| self.validate_expr(p, value)),
                Stmt::Read { target } => self.validate_ref(p, target),
                Stmt::Print { value } => self.validate_expr(p, value),
                Stmt::If { cond, .. } | Stmt::While { cond, .. } => self.validate_expr(p, cond),
                Stmt::Call { site } => {
                    let site_info = match self.sites.get(site.index()) {
                        Some(s) => s,
                        None => return result = Err(ValidationError::DanglingSite { site: *site }),
                    };
                    if site_info.caller != p {
                        Err(ValidationError::SiteCallerMismatch { site: *site })
                    } else {
                        Ok(())
                    }
                }
            };
        });
        result
    }

    fn validate_sites(&self) -> Result<(), ValidationError> {
        // Each site must be referenced by exactly one Call statement of its
        // caller.
        let mut seen = vec![0usize; self.sites.len()];
        for proc_ in &self.procs {
            walk_stmts(&proc_.body, &mut |s| {
                if let Stmt::Call { site } = s {
                    if let Some(c) = seen.get_mut(site.index()) {
                        *c += 1;
                    }
                }
            });
        }
        for (i, &count) in seen.iter().enumerate() {
            if count != 1 {
                return Err(ValidationError::SiteStatementCount {
                    site: CallSiteId::new(i),
                    count,
                });
            }
        }

        for (i, site) in self.sites.iter().enumerate() {
            let s = CallSiteId::new(i);
            let callee = self
                .procs
                .get(site.callee.index())
                .ok_or(ValidationError::DanglingProc { proc_: site.callee })?;
            if site.callee == ProcId::MAIN {
                return Err(ValidationError::CallToMain { site: s });
            }
            if !self.proc_visible_from(site.caller, site.callee) {
                return Err(ValidationError::CalleeNotVisible { site: s });
            }
            if site.args.len() != callee.formals.len() {
                return Err(ValidationError::ArityMismatch {
                    site: s,
                    expected: callee.formals.len(),
                    found: site.args.len(),
                });
            }
            for arg in &site.args {
                match arg {
                    Actual::Ref(r) => self.validate_ref(site.caller, r)?,
                    Actual::Value(e) => self.validate_expr(site.caller, e)?,
                }
            }
        }
        Ok(())
    }

    /// Pascal visibility: `callee` is callable from `caller` if it is a
    /// child of `caller` or of one of `caller`'s lexical ancestors
    /// (a sibling or "uncle"), or is itself a proper ancestor of `caller`.
    pub fn proc_visible_from(&self, caller: ProcId, callee: ProcId) -> bool {
        if self.procs[caller.index()].children.contains(&callee) {
            return true;
        }
        if self.ancestors(caller).any(|a| a == callee) {
            return true;
        }
        self.ancestors(caller)
            .any(|a| self.procs[a.index()].children.contains(&callee))
    }
}

/// Iterator over lexical ancestors, nearest first. See
/// [`Program::ancestors`].
#[derive(Debug, Clone)]
pub struct Ancestors<'a> {
    program: &'a Program,
    next: Option<ProcId>,
}

impl Iterator for Ancestors<'_> {
    type Item = ProcId;

    fn next(&mut self) -> Option<ProcId> {
        let current = self.next?;
        self.next = self.program.procs[current.index()].parent;
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::Expr;

    #[test]
    fn universe_and_scopes() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        let t = b.local(p, "t");
        b.assign(p, t, Expr::load(g));
        let program = b.finish().expect("valid");

        assert_eq!(program.num_procs(), 2); // main + p
        assert_eq!(program.num_vars(), 3);
        assert!(program.var(g).is_global());
        assert_eq!(program.var_level(g), 0);
        assert_eq!(program.proc_(p).level(), 1);
        assert!(program.visible_in(g, p));
        assert!(program.visible_in(t, p));
        assert!(!program.visible_in(t, ProcId::MAIN));
        let local = program.local_set(p);
        assert!(local.contains(t.index()));
        assert!(!local.contains(g.index()));
        assert_eq!(program.global_set().len(), 1);
    }

    #[test]
    fn nested_scope_visibility() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let t = b.local(p, "t");
        let q = b.nested_proc(p, "q", &[]);
        b.assign(q, t, Expr::constant(1)); // q writes p's local: legal
        let program = b.finish().expect("valid");
        assert_eq!(program.proc_(q).level(), 2);
        assert!(program.visible_in(t, q));
        assert_eq!(
            program.ancestors(q).collect::<Vec<_>>(),
            vec![p, ProcId::MAIN]
        );
        assert!(program.visible_in(b.formal(p, 0), q));
    }

    #[test]
    fn out_of_scope_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        let t = b.local(p, "t");
        b.assign(q, t, Expr::constant(0)); // q cannot see p's local
        assert!(matches!(
            b.finish(),
            Err(ValidationError::OutOfScope { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &["x"]);
        let g = b.global("g");
        let main = b.main();
        b.call_args(
            main,
            p,
            vec![Actual::Ref(Ref::scalar(g)), Actual::Ref(Ref::scalar(g))],
        );
        assert!(matches!(
            b.finish(),
            Err(ValidationError::ArityMismatch { .. })
        ));
        let _ = p;
    }

    #[test]
    fn call_to_main_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        b.call(p, ProcId::MAIN, &[]);
        assert!(matches!(
            b.finish(),
            Err(ValidationError::CallToMain { .. })
        ));
    }

    #[test]
    fn sibling_call_is_visible_nephew_is_not() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        let inner = b.nested_proc(p, "inner", &[]);
        b.call(p, q, &[]); // sibling: fine
        b.call(inner, q, &[]); // uncle: fine
        let program = b.finish().expect("valid");
        assert!(program.proc_visible_from(p, q));
        assert!(program.proc_visible_from(inner, q));
        assert!(program.proc_visible_from(p, inner));
        assert!(!program.proc_visible_from(q, inner)); // nephew: invisible
    }

    #[test]
    fn nephew_call_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        let inner = b.nested_proc(p, "inner", &[]);
        b.call(q, inner, &[]);
        assert!(matches!(
            b.finish(),
            Err(ValidationError::CalleeNotVisible { .. })
        ));
    }

    #[test]
    fn recursion_and_ancestor_calls_allowed() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let inner = b.nested_proc(p, "inner", &[]);
        b.call(p, p, &[]); // self-recursion (p is its own sibling-set member)
        b.call(inner, p, &[]); // ancestor call
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rank_mismatch_rejected() {
        let mut b = ProgramBuilder::new();
        let a = b.global_array("a", 2);
        let main = b.main();
        b.assign_indexed(main, a, vec![Subscript::Const(0)], Expr::constant(1));
        assert!(matches!(
            b.finish(),
            Err(ValidationError::RankMismatch { .. })
        ));
    }

    #[test]
    fn map_bodies_rejects_structural_damage() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");

        // Dropping the call statement orphans its site.
        let dropped = program.map_bodies(|q, body| {
            if q == program.main() {
                Vec::new()
            } else {
                body.to_vec()
            }
        });
        assert!(matches!(
            dropped,
            Err(ValidationError::SiteStatementCount { count: 0, .. })
        ));

        // Duplicating it is just as bad.
        let duplicated = program.map_bodies(|q, body| {
            let mut out = body.to_vec();
            if q == program.main() {
                out.extend_from_slice(body);
            }
            out
        });
        assert!(matches!(
            duplicated,
            Err(ValidationError::SiteStatementCount { count: 2, .. })
        ));

        // The identity transformation round-trips.
        let same = program
            .map_bodies(|_, body| body.to_vec())
            .expect("identity is valid");
        assert_eq!(same.to_source(), program.to_source());
    }

    #[test]
    fn mean_parameters() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x", "y"]);
        let q = b.proc_("q", &[]);
        let main = b.main();
        b.call(main, p, &[g, g]);
        b.call(main, q, &[]);
        let program = b.finish().expect("valid");
        // main(0) + p(2) + q(0) formals over 3 procs.
        assert!((program.mean_formals() - 2.0 / 3.0).abs() < 1e-9);
        assert!((program.mean_actuals() - 1.0).abs() < 1e-9);
    }
}
