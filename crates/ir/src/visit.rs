//! Statement and expression walkers.

use crate::stmt::{Expr, Stmt};

/// Calls `f` on every statement in `stmts`, recursing into `if`/`while`
/// bodies, in source order. Iterative (explicit work list), so arbitrarily
/// deep nesting is safe.
///
/// # Examples
///
/// ```
/// use modref_ir::{walk_stmts, Expr, Stmt};
///
/// let body = vec![Stmt::While {
///     cond: Expr::constant(1),
///     body: vec![Stmt::Print { value: Expr::constant(2) }],
/// }];
/// let mut count = 0;
/// walk_stmts(&body, &mut |_s| count += 1);
/// assert_eq!(count, 2);
/// ```
pub fn walk_stmts<'a, F: FnMut(&'a Stmt)>(stmts: &'a [Stmt], f: &mut F) {
    // Work stack of slices with a cursor, visiting in source order.
    let mut stack: Vec<std::slice::Iter<'a, Stmt>> = vec![stmts.iter()];
    while let Some(top) = stack.last_mut() {
        match top.next() {
            None => {
                stack.pop();
            }
            Some(s) => {
                f(s);
                match s {
                    Stmt::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        // Push else first so then is visited first.
                        stack.push(else_branch.iter());
                        stack.push(then_branch.iter());
                    }
                    Stmt::While { body, .. } => stack.push(body.iter()),
                    _ => {}
                }
            }
        }
    }
}

/// Calls `f` on `expr` and every sub-expression, outermost first.
pub fn walk_exprs<'a, F: FnMut(&'a Expr)>(expr: &'a Expr, f: &mut F) {
    let mut stack = vec![expr];
    while let Some(e) = stack.pop() {
        f(e);
        match e {
            Expr::Const(_) | Expr::Load(_) => {}
            Expr::Unary(_, inner) => stack.push(inner),
            Expr::Binary(_, l, r) => {
                stack.push(r);
                stack.push(l);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::stmt::{BinOp, Ref};

    #[test]
    fn walk_stmts_visits_nested_in_source_order() {
        let v = VarId::new(0);
        let body = vec![
            Stmt::Assign {
                target: Ref::scalar(v),
                value: Expr::constant(1),
            },
            Stmt::If {
                cond: Expr::constant(0),
                then_branch: vec![Stmt::Print {
                    value: Expr::constant(2),
                }],
                else_branch: vec![Stmt::Print {
                    value: Expr::constant(3),
                }],
            },
            Stmt::Print {
                value: Expr::constant(4),
            },
        ];
        let mut seen = Vec::new();
        walk_stmts(&body, &mut |s| {
            if let Stmt::Print {
                value: Expr::Const(c),
            } = s
            {
                seen.push(*c);
            } else if matches!(s, Stmt::Assign { .. }) {
                seen.push(1);
            } else {
                seen.push(0);
            }
        });
        assert_eq!(seen, vec![1, 0, 2, 3, 4]);
    }

    #[test]
    fn walk_exprs_counts_subexpressions() {
        let v = VarId::new(0);
        let e = Expr::binary(
            BinOp::Add,
            Expr::load(v),
            Expr::binary(BinOp::Mul, Expr::constant(2), Expr::load(v)),
        );
        let mut n = 0;
        walk_exprs(&e, &mut |_| n += 1);
        assert_eq!(n, 5);
    }

    #[test]
    fn deeply_nested_whiles_do_not_overflow() {
        let mut body = vec![Stmt::Print {
            value: Expr::constant(0),
        }];
        for _ in 0..100_000 {
            body = vec![Stmt::While {
                cond: Expr::constant(1),
                body,
            }];
        }
        let mut n = 0usize;
        walk_stmts(&body, &mut |_| n += 1);
        assert_eq!(n, 100_001);
        // Dropping 100k nested Vec<Stmt> recursively would also overflow;
        // unwind manually.
        let mut cur = body;
        while let Some(Stmt::While { body: inner, .. }) = cur.pop() {
            cur = inner;
        }
    }
}
