//! Programmatic construction of [`Program`]s.

use crate::error::ValidationError;
use crate::ids::{CallSiteId, ProcId, VarId};
use crate::program::{CallSite, Procedure, Program, VarInfo, VarKind};
use crate::stmt::{Actual, Expr, Ref, Stmt, Subscript};
use crate::symbol::Interner;

/// Incrementally builds a [`Program`].
///
/// The builder is *non-consuming*: [`ProgramBuilder::finish`] validates and
/// returns a snapshot, leaving the builder usable (handy in tests that
/// extend a base program). A fresh builder already contains the main
/// program as procedure [`ProcId::MAIN`].
///
/// # Examples
///
/// ```
/// use modref_ir::{Expr, ProgramBuilder};
///
/// # fn main() -> Result<(), modref_ir::ValidationError> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let p = b.proc_("p", &["x"]);
/// b.assign(p, b.formal(p, 0), Expr::constant(1));
/// let main = b.main();
/// b.call(main, p, &[g]);
/// let program = b.finish()?;
/// assert_eq!(program.num_procs(), 2);
/// assert_eq!(program.num_sites(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    symbols: Interner,
    vars: Vec<VarInfo>,
    procs: Vec<Procedure>,
    sites: Vec<CallSite>,
}

impl Default for ProgramBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgramBuilder {
    /// A builder holding only an empty main program.
    pub fn new() -> Self {
        let mut symbols = Interner::new();
        let main_name = symbols.intern("main");
        ProgramBuilder {
            symbols,
            vars: Vec::new(),
            procs: vec![Procedure {
                name: main_name,
                formals: Vec::new(),
                locals: Vec::new(),
                parent: None,
                level: 0,
                children: Vec::new(),
                body: Vec::new(),
            }],
            sites: Vec::new(),
        }
    }

    /// The main program's id.
    pub fn main(&self) -> ProcId {
        ProcId::MAIN
    }

    /// Declares a global scalar.
    pub fn global(&mut self, name: &str) -> VarId {
        self.add_var(name, None, VarKind::Global, 0)
    }

    /// Declares a global array of the given rank.
    pub fn global_array(&mut self, name: &str, rank: usize) -> VarId {
        self.add_var(name, None, VarKind::Global, rank)
    }

    /// Declares a top-level procedure (a child of main) with scalar
    /// reference formals named by `formals`.
    pub fn proc_(&mut self, name: &str, formals: &[&str]) -> ProcId {
        self.nested_proc(ProcId::MAIN, name, formals)
    }

    /// Declares a procedure nested inside `parent`, with scalar reference
    /// formals.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn nested_proc(&mut self, parent: ProcId, name: &str, formals: &[&str]) -> ProcId {
        let ranked: Vec<(&str, usize)> = formals.iter().map(|&f| (f, 0)).collect();
        self.nested_proc_ranked(parent, name, &ranked)
    }

    /// Declares a procedure whose formals may be arrays:
    /// `(name, rank)` pairs, rank `0` meaning scalar.
    ///
    /// # Panics
    ///
    /// Panics if `parent` is out of range.
    pub fn nested_proc_ranked(
        &mut self,
        parent: ProcId,
        name: &str,
        formals: &[(&str, usize)],
    ) -> ProcId {
        let level = self.procs[parent.index()].level + 1;
        let name_sym = self.symbols.intern(name);
        let p = ProcId::new(self.procs.len());
        self.procs.push(Procedure {
            name: name_sym,
            formals: Vec::new(),
            locals: Vec::new(),
            parent: Some(parent),
            level,
            children: Vec::new(),
            body: Vec::new(),
        });
        self.procs[parent.index()].children.push(p);
        for (pos, &(fname, rank)) in formals.iter().enumerate() {
            let v = self.add_var(fname, Some(p), VarKind::Formal { position: pos }, rank);
            self.procs[p.index()].formals.push(v);
        }
        p
    }

    /// Declares a local scalar in `p`.
    pub fn local(&mut self, p: ProcId, name: &str) -> VarId {
        let v = self.add_var(name, Some(p), VarKind::Local, 0);
        self.procs[p.index()].locals.push(v);
        v
    }

    /// Declares a local array of the given rank in `p`.
    pub fn local_array(&mut self, p: ProcId, name: &str, rank: usize) -> VarId {
        let v = self.add_var(name, Some(p), VarKind::Local, rank);
        self.procs[p.index()].locals.push(v);
        v
    }

    /// The `position`-th formal of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `position` is out of range.
    pub fn formal(&self, p: ProcId, position: usize) -> VarId {
        self.procs[p.index()].formals[position]
    }

    /// The locals declared so far in `p`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn locals_of(&self, p: ProcId) -> &[VarId] {
        &self.procs[p.index()].locals
    }

    /// The formals of `p`, in declaration order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn formals_of(&self, p: ProcId) -> &[VarId] {
        &self.procs[p.index()].formals
    }

    /// The lexical parent of `p` (`None` for main).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn parent_of(&self, p: ProcId) -> Option<ProcId> {
        self.procs[p.index()].parent
    }

    /// The procedures declared directly inside `p`, so far.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn children_of(&self, p: ProcId) -> &[ProcId] {
        &self.procs[p.index()].children
    }

    /// The nesting level of `p` (0 for main).
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn level_of(&self, p: ProcId) -> u32 {
        self.procs[p.index()].level
    }

    /// The array rank of variable `v` (0 for scalars).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn rank_of(&self, v: VarId) -> usize {
        self.vars[v.index()].rank
    }

    /// Appends an arbitrary statement to `p`'s body.
    pub fn stmt(&mut self, p: ProcId, stmt: Stmt) {
        self.procs[p.index()].body.push(stmt);
    }

    /// Appends `target := value`.
    pub fn assign(&mut self, p: ProcId, target: VarId, value: Expr) {
        self.stmt(
            p,
            Stmt::Assign {
                target: Ref::scalar(target),
                value,
            },
        );
    }

    /// Appends `target[subs] := value`.
    pub fn assign_indexed(&mut self, p: ProcId, target: VarId, subs: Vec<Subscript>, value: Expr) {
        self.stmt(
            p,
            Stmt::Assign {
                target: Ref::indexed(target, subs),
                value,
            },
        );
    }

    /// Appends `read target`.
    pub fn read(&mut self, p: ProcId, target: VarId) {
        self.stmt(
            p,
            Stmt::Read {
                target: Ref::scalar(target),
            },
        );
    }

    /// Appends `print value`.
    pub fn print(&mut self, p: ProcId, value: Expr) {
        self.stmt(p, Stmt::Print { value });
    }

    /// Registers a call site and appends its `call` statement to `caller`'s
    /// body. All `args` are passed by reference as scalars.
    pub fn call(&mut self, caller: ProcId, callee: ProcId, args: &[VarId]) -> CallSiteId {
        let actuals = args.iter().map(|&v| Actual::Ref(Ref::scalar(v))).collect();
        self.call_args(caller, callee, actuals)
    }

    /// Registers a call site with explicit actuals and appends its `call`
    /// statement.
    pub fn call_args(&mut self, caller: ProcId, callee: ProcId, args: Vec<Actual>) -> CallSiteId {
        let stmt = self.call_stmt(caller, callee, args);
        self.stmt(caller, stmt);
        self.last_site()
    }

    /// Registers a call site and returns its `call` statement *without*
    /// appending it — for placing calls inside `if`/`while` bodies via
    /// [`ProgramBuilder::stmt`].
    ///
    /// The returned statement must end up (exactly once) in `caller`'s
    /// body, or [`ProgramBuilder::finish`] will reject the program.
    pub fn call_stmt(&mut self, caller: ProcId, callee: ProcId, args: Vec<Actual>) -> Stmt {
        let site = CallSiteId::new(self.sites.len());
        self.sites.push(CallSite {
            caller,
            callee,
            args,
        });
        Stmt::Call { site }
    }

    /// The id of the most recently registered call site.
    ///
    /// # Panics
    ///
    /// Panics if no site has been registered.
    pub fn last_site(&self) -> CallSiteId {
        assert!(!self.sites.is_empty(), "no call sites registered yet");
        CallSiteId::new(self.sites.len() - 1)
    }

    /// Validates and returns the finished program. The builder remains
    /// usable afterwards.
    ///
    /// # Errors
    ///
    /// Any [`ValidationError`] detected by [`Program::validate`].
    pub fn finish(&self) -> Result<Program, ValidationError> {
        let program = Program {
            symbols: self.symbols.clone(),
            vars: self.vars.clone(),
            procs: self.procs.clone(),
            sites: self.sites.clone(),
        };
        program.validate()?;
        Ok(program)
    }

    fn add_var(&mut self, name: &str, owner: Option<ProcId>, kind: VarKind, rank: usize) -> VarId {
        let sym = self.symbols.intern(name);
        let v = VarId::new(self.vars.len());
        self.vars.push(VarInfo {
            name: sym,
            owner,
            kind,
            rank,
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::BinOp;

    #[test]
    fn builder_is_reusable_after_finish() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let first = b.finish().expect("valid");
        assert_eq!(first.num_vars(), 1);
        let p = b.proc_("p", &[]);
        b.assign(p, g, Expr::constant(0));
        let second = b.finish().expect("valid");
        assert_eq!(second.num_procs(), 2);
        // The first snapshot is unaffected.
        assert_eq!(first.num_procs(), 1);
    }

    #[test]
    fn call_stmt_inside_control_flow() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::constant(2));
        let main = b.main();
        let call = b.call_stmt(main, p, vec![Actual::Ref(Ref::scalar(g))]);
        b.stmt(
            main,
            Stmt::If {
                cond: Expr::binary(BinOp::Lt, Expr::load(g), Expr::constant(10)),
                then_branch: vec![call],
                else_branch: vec![],
            },
        );
        let program = b.finish().expect("valid");
        assert_eq!(program.num_sites(), 1);
    }

    #[test]
    fn dangling_call_stmt_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        // Registered but never placed in a body.
        let _ = b.call_stmt(p, p, vec![]);
        assert!(matches!(
            b.finish(),
            Err(ValidationError::SiteStatementCount { count: 0, .. })
        ));
    }

    #[test]
    fn duplicated_call_stmt_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let call = b.call_stmt(p, p, vec![]);
        b.stmt(p, call.clone());
        b.stmt(p, call);
        assert!(matches!(
            b.finish(),
            Err(ValidationError::SiteStatementCount { count: 2, .. })
        ));
    }

    #[test]
    fn site_in_wrong_procedure_rejected() {
        let mut b = ProgramBuilder::new();
        let p = b.proc_("p", &[]);
        let q = b.proc_("q", &[]);
        let call = b.call_stmt(p, q, vec![]);
        b.stmt(q, call); // placed in q, recorded for p
        assert!(matches!(
            b.finish(),
            Err(ValidationError::SiteCallerMismatch { .. })
        ));
    }
}
