//! Unreachable-procedure elimination.
//!
//! §3.3 of the paper assumes "every procedure in the program is reachable
//! by some call chain. If this is not the case, a linear-time algorithm
//! that eliminates unreachable procedures can be invoked." This module is
//! that algorithm. It matters for precision, not soundness: the §3.3
//! conventions (nested bodies extend the parent's body; binding edges from
//! call sites in nested procedures) deliberately assume a nested procedure
//! runs whenever its parent does, so leaving *unreachable* nested
//! procedures in place makes the fast pipeline a conservative superset of
//! the defining equations. Pruning first restores exact agreement.
//!
//! Reachability is subtree-closed in both directions: an unreachable
//! procedure's descendants are unreachable (their callers all live in its
//! subtree), and a reachable procedure's lexical ancestors are reachable
//! (a call chain can only enter a procedure's subtree through the
//! procedure itself). Pruning therefore removes whole subtrees and never
//! orphans a survivor.

use crate::ids::{CallSiteId, ProcId, VarId};
use crate::program::{CallSite, Procedure, Program, VarInfo};
use crate::stmt::{Actual, Expr, Ref, Stmt, Subscript};

/// The result of [`Program::without_unreachable`].
#[derive(Debug, Clone)]
pub struct PrunedProgram {
    /// The pruned, revalidated program.
    pub program: Program,
    /// `proc_map[old] = Some(new)` for kept procedures.
    pub proc_map: Vec<Option<ProcId>>,
    /// `var_map[old] = Some(new)` for kept variables (globals and
    /// variables of kept procedures).
    pub var_map: Vec<Option<VarId>>,
    /// `site_map[old] = Some(new)` for kept call sites.
    pub site_map: Vec<Option<CallSiteId>>,
}

impl Program {
    /// Removes every procedure unreachable from main by a call chain,
    /// together with its variables and call sites, renumbering all ids
    /// densely. Linear in program size.
    ///
    /// # Examples
    ///
    /// ```
    /// use modref_ir::{Expr, ProgramBuilder};
    ///
    /// # fn main() -> Result<(), modref_ir::ValidationError> {
    /// let mut b = ProgramBuilder::new();
    /// let live = b.proc_("live", &[]);
    /// let _dead = b.proc_("dead", &[]);
    /// let main = b.main();
    /// b.call(main, live, &[]);
    /// let program = b.finish()?;
    /// let pruned = program.without_unreachable();
    /// assert_eq!(pruned.program.num_procs(), 2);
    /// assert!(pruned.program.validate().is_ok());
    /// # Ok(())
    /// # }
    /// ```
    pub fn without_unreachable(&self) -> PrunedProgram {
        self.without_unreachable_traced(&modref_trace::Trace::disabled())
    }

    /// [`Program::without_unreachable`] recording a `prune` span (with the
    /// before/after procedure, variable, and site counts) into `trace`.
    /// Identical output; tracing only observes.
    pub fn without_unreachable_traced(&self, trace: &modref_trace::Trace) -> PrunedProgram {
        let mut span = trace.span("prune");
        span.arg("procs_before", self.num_procs() as u64);
        span.arg("vars_before", self.num_vars() as u64);
        span.arg("sites_before", self.num_sites() as u64);
        let pruned = self.without_unreachable_impl();
        span.arg("procs_after", pruned.program.num_procs() as u64);
        span.arg("vars_after", pruned.program.num_vars() as u64);
        span.arg("sites_after", pruned.program.num_sites() as u64);
        pruned
    }

    fn without_unreachable_impl(&self) -> PrunedProgram {
        // Reachability over the call edges.
        let mut reach = vec![false; self.num_procs()];
        reach[ProcId::MAIN.index()] = true;
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); self.num_procs()];
        for s in self.sites() {
            let site = self.site(s);
            succ[site.caller().index()].push(site.callee().index());
        }
        let mut stack = vec![ProcId::MAIN.index()];
        while let Some(v) = stack.pop() {
            #[allow(clippy::needless_range_loop)] // `succ` is mutated elsewhere in scope
            for i in 0..succ[v].len() {
                let w = succ[v][i];
                if !reach[w] {
                    reach[w] = true;
                    stack.push(w);
                }
            }
        }

        // Dense renumberings.
        let mut proc_map: Vec<Option<ProcId>> = vec![None; self.num_procs()];
        let mut kept_procs = Vec::new();
        for p in self.procs() {
            if reach[p.index()] {
                proc_map[p.index()] = Some(ProcId::new(kept_procs.len()));
                kept_procs.push(p);
            }
        }
        let mut var_map: Vec<Option<VarId>> = vec![None; self.num_vars()];
        let mut kept_vars = Vec::new();
        for v in self.vars() {
            let keep = match self.var(v).owner() {
                None => true,
                Some(owner) => reach[owner.index()],
            };
            if keep {
                var_map[v.index()] = Some(VarId::new(kept_vars.len()));
                kept_vars.push(v);
            }
        }
        let mut site_map: Vec<Option<CallSiteId>> = vec![None; self.num_sites()];
        let mut kept_sites = Vec::new();
        for s in self.sites() {
            let site = self.site(s);
            if reach[site.caller().index()] {
                debug_assert!(
                    reach[site.callee().index()],
                    "a reachable caller cannot invoke an unreachable callee"
                );
                site_map[s.index()] = Some(CallSiteId::new(kept_sites.len()));
                kept_sites.push(s);
            }
        }

        let remap = Remap {
            proc_map: &proc_map,
            var_map: &var_map,
            site_map: &site_map,
        };

        let vars: Vec<VarInfo> = kept_vars
            .iter()
            .map(|&v| {
                let info = self.var(v);
                VarInfo {
                    name: info.name(),
                    owner: info.owner().map(|p| remap.proc(p)),
                    kind: info.kind(),
                    rank: info.rank(),
                }
            })
            .collect();
        let procs: Vec<Procedure> = kept_procs
            .iter()
            .map(|&p| {
                let proc_ = self.proc_(p);
                Procedure {
                    name: proc_.name(),
                    formals: proc_.formals().iter().map(|&f| remap.var(f)).collect(),
                    locals: proc_.locals().iter().map(|&l| remap.var(l)).collect(),
                    parent: proc_.parent().map(|q| remap.proc(q)),
                    level: proc_.level(),
                    children: proc_
                        .children()
                        .iter()
                        .filter(|c| proc_map[c.index()].is_some())
                        .map(|&c| remap.proc(c))
                        .collect(),
                    body: proc_.body().iter().map(|s| remap.stmt(s)).collect(),
                }
            })
            .collect();
        let sites: Vec<CallSite> = kept_sites
            .iter()
            .map(|&s| {
                let site = self.site(s);
                CallSite {
                    caller: remap.proc(site.caller()),
                    callee: remap.proc(site.callee()),
                    args: site.args().iter().map(|a| remap.actual(a)).collect(),
                }
            })
            .collect();

        let program = Program {
            symbols: self.symbols.clone(),
            vars,
            procs,
            sites,
        };
        // A real check, not a debug_assert: a pruning bug that produces an
        // invalid program must not ship silently in release builds — every
        // downstream solver assumes validated invariants.
        if let Err(e) = program.validate() {
            panic!("pruning produced an invalid program: {e}");
        }
        PrunedProgram {
            program,
            proc_map,
            var_map,
            site_map,
        }
    }
}

struct Remap<'a> {
    proc_map: &'a [Option<ProcId>],
    var_map: &'a [Option<VarId>],
    site_map: &'a [Option<CallSiteId>],
}

impl Remap<'_> {
    fn proc(&self, p: ProcId) -> ProcId {
        self.proc_map[p.index()].expect("kept procedure")
    }

    fn var(&self, v: VarId) -> VarId {
        self.var_map[v.index()].expect("kept variable")
    }

    fn site(&self, s: CallSiteId) -> CallSiteId {
        self.site_map[s.index()].expect("kept site")
    }

    fn stmt(&self, s: &Stmt) -> Stmt {
        match s {
            Stmt::Assign { target, value } => Stmt::Assign {
                target: self.ref_(target),
                value: self.expr(value),
            },
            Stmt::Read { target } => Stmt::Read {
                target: self.ref_(target),
            },
            Stmt::Print { value } => Stmt::Print {
                value: self.expr(value),
            },
            Stmt::Call { site } => Stmt::Call {
                site: self.site(*site),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: self.expr(cond),
                then_branch: then_branch.iter().map(|x| self.stmt(x)).collect(),
                else_branch: else_branch.iter().map(|x| self.stmt(x)).collect(),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: self.expr(cond),
                body: body.iter().map(|x| self.stmt(x)).collect(),
            },
        }
    }

    fn actual(&self, a: &Actual) -> Actual {
        match a {
            Actual::Ref(r) => Actual::Ref(self.ref_(r)),
            Actual::Value(e) => Actual::Value(self.expr(e)),
        }
    }

    fn ref_(&self, r: &Ref) -> Ref {
        Ref {
            var: self.var(r.var),
            subs: r.subs.iter().map(|s| self.subscript(s)).collect(),
        }
    }

    fn subscript(&self, s: &Subscript) -> Subscript {
        match s {
            Subscript::Var(v) => Subscript::Var(self.var(*v)),
            other => *other,
        }
    }

    fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Const(c) => Expr::Const(*c),
            Expr::Load(r) => Expr::Load(self.ref_(r)),
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(self.expr(inner))),
            Expr::Binary(op, l, r) => {
                Expr::Binary(*op, Box::new(self.expr(l)), Box::new(self.expr(r)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ProgramBuilder;
    use crate::stmt::Expr;

    #[test]
    fn drops_dead_subtree_and_its_vars() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let live = b.proc_("live", &["x"]);
        b.assign(live, b.formal(live, 0), Expr::constant(1));
        let dead = b.proc_("dead", &["y"]);
        let dead_child = b.nested_proc(dead, "dead_child", &[]);
        let dl = b.local(dead_child, "dl");
        b.assign(dead_child, dl, Expr::constant(2));
        b.call(dead, dead_child, &[]);
        let main = b.main();
        b.call(main, live, &[g]);
        let program = b.finish().expect("valid");

        let pruned = program.without_unreachable();
        assert_eq!(pruned.program.num_procs(), 2);
        assert_eq!(pruned.program.num_sites(), 1);
        // g and live's formal survive; dead's formal and dl do not.
        assert_eq!(pruned.program.num_vars(), 2);
        assert!(pruned.proc_map[dead.index()].is_none());
        assert!(pruned.proc_map[dead_child.index()].is_none());
        assert!(pruned.var_map[dl.index()].is_none());
        assert!(pruned.program.validate().is_ok());
        // Name lookups survive the renumbering.
        let new_live = pruned.proc_map[live.index()].unwrap();
        assert_eq!(pruned.program.proc_name(new_live), "live");
    }

    #[test]
    fn fully_reachable_program_is_identity_shaped() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &[]);
        b.assign(p, g, Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[]);
        let program = b.finish().expect("valid");
        let pruned = program.without_unreachable();
        assert_eq!(pruned.program.num_procs(), program.num_procs());
        assert_eq!(pruned.program.num_vars(), program.num_vars());
        assert_eq!(pruned.program.num_sites(), program.num_sites());
        assert_eq!(pruned.program.to_source(), program.to_source());
    }

    #[test]
    fn recursive_dead_cluster_removed() {
        // Two dead procedures calling each other: still unreachable.
        let mut b = ProgramBuilder::new();
        let a = b.proc_("a", &[]);
        let c = b.proc_("c", &[]);
        b.call(a, c, &[]);
        b.call(c, a, &[]);
        let program = b.finish().expect("valid");
        let pruned = program.without_unreachable();
        assert_eq!(pruned.program.num_procs(), 1); // just main
        assert_eq!(pruned.program.num_sites(), 0);
    }

    #[test]
    fn control_flow_bodies_are_remapped() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let _dead = b.proc_("dead", &[]);
        let p = b.proc_("p", &[]);
        let main = b.main();
        let call = b.call_stmt(main, p, vec![]);
        b.stmt(
            main,
            crate::Stmt::While {
                cond: Expr::load(g),
                body: vec![call],
            },
        );
        let program = b.finish().expect("valid");
        let pruned = program.without_unreachable();
        assert_eq!(pruned.program.num_procs(), 2);
        assert!(pruned.program.validate().is_ok());
    }
}
