//! Typed program edits and their application.
//!
//! The paper motivates the linear-time algorithm partly by the
//! *programming-environment* setting, where summary information must be
//! kept current while the program is edited. This module defines the edit
//! vocabulary an incremental client (the `modref-incr` crate) consumes: a
//! small closed set of structural operations, each of which produces a
//! **new validated [`Program`]** plus an [`EditDelta`] describing exactly
//! what moved — which procedures' local effects changed, whether the call
//! or binding structure changed, and how every id is renumbered.
//!
//! Edits are applied functionally ([`Program::apply_edit`] clones); the
//! result is re-validated with the same [`Program::validate`] the builders
//! use, so no edit can produce a program the analyses would misread.
//!
//! Id stability rules, which the delta's remap tables make explicit:
//!
//! * [`Edit::SetLocalEffects`] and [`Edit::RebindActual`] renumber
//!   nothing;
//! * [`Edit::AddCallSite`] and [`Edit::AddProcedure`] append new ids at
//!   the end (old ids are stable);
//! * [`Edit::RemoveCallSite`] shifts the site ids above the removed one
//!   down by one;
//! * [`Edit::RemoveProcedure`] shifts procedure ids above the removed one
//!   and the ids of every variable declared later than the removed
//!   procedure's variables.

use crate::error::ValidationError;
use crate::ids::{CallSiteId, ProcId, VarId};
use crate::program::{CallSite, Procedure, Program, VarInfo, VarKind};
use crate::stmt::{Actual, Expr, Ref, Stmt, Subscript};
use crate::visit::walk_stmts;

/// One program edit.
///
/// Variables named in an edit are checked against the *edited* program's
/// scope rules during revalidation; an edit that would reference an
/// out-of-scope variable or break an arity is rejected wholesale.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Replace the non-call statements of `proc_`'s body with a canonical
    /// sequence writing every variable in `mods` and reading every
    /// variable in `uses` (the analyses are flow-insensitive, so local
    /// effects *are* the body as far as they are concerned). Call
    /// statements are retained in source order — the call structure is
    /// edited through the site edits, not this one.
    SetLocalEffects {
        /// The procedure whose local effects change.
        proc_: ProcId,
        /// Variables the new body modifies.
        mods: Vec<VarId>,
        /// Variables the new body reads.
        uses: Vec<VarId>,
    },
    /// Append a call statement `callee(args…)` at the end of `caller`'s
    /// body. The new site gets the next free [`CallSiteId`].
    AddCallSite {
        /// The procedure gaining the call statement.
        caller: ProcId,
        /// The procedure being invoked.
        callee: ProcId,
        /// Actual arguments, one per callee formal.
        args: Vec<Actual>,
    },
    /// Remove call site `site` (and its call statement). Site ids above
    /// `site` shift down by one.
    RemoveCallSite {
        /// The site to remove.
        site: CallSiteId,
    },
    /// Declare a new, empty procedure nested in `parent`, with the given
    /// reference formal parameters. The procedure and its formals get the
    /// next free ids.
    AddProcedure {
        /// Name of the new procedure.
        name: String,
        /// The lexically enclosing procedure ([`ProcId::MAIN`] for a
        /// top-level procedure).
        parent: ProcId,
        /// Names of the formal parameters, in order.
        formals: Vec<String>,
    },
    /// Remove procedure `proc_` and every variable it declares. The
    /// procedure must be call-free on both sides: no call site may target
    /// it or live in it, and it must have no nested procedures (a script
    /// removes those first). Procedure and variable ids above the removed
    /// ones shift down.
    RemoveProcedure {
        /// The procedure to remove.
        proc_: ProcId,
    },
    /// Replace the actual at `position` of `site` with `actual`.
    RebindActual {
        /// The call site being rebound.
        site: CallSiteId,
        /// Zero-based argument position.
        position: usize,
        /// The new actual argument.
        actual: Actual,
    },
}

impl Edit {
    /// A stable lowercase name for reports and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Edit::SetLocalEffects { .. } => "set-local",
            Edit::AddCallSite { .. } => "add-call",
            Edit::RemoveCallSite { .. } => "remove-call",
            Edit::AddProcedure { .. } => "add-proc",
            Edit::RemoveProcedure { .. } => "remove-proc",
            Edit::RebindActual { .. } => "rebind",
        }
    }
}

/// Why an edit was rejected. The program is unchanged on error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EditError {
    /// A procedure id in the edit is out of range.
    UnknownProc(ProcId),
    /// A call-site id in the edit is out of range.
    UnknownSite(CallSiteId),
    /// [`Edit::RebindActual`] names a position past the site's arity.
    BadPosition {
        /// The site being rebound.
        site: CallSiteId,
        /// The out-of-range position.
        position: usize,
        /// The site's actual arity.
        arity: usize,
    },
    /// [`Edit::RemoveProcedure`] targets the main program.
    RemoveMain,
    /// [`Edit::RemoveProcedure`] targets a procedure with nested
    /// procedures still declared in it.
    HasChildren(ProcId),
    /// [`Edit::RemoveProcedure`] targets a procedure that still
    /// participates in a call site, as caller or callee.
    ProcedureInUse(ProcId, CallSiteId),
    /// The edited program failed revalidation (out-of-scope variable,
    /// arity mismatch, invisible callee, …).
    Invalid(ValidationError),
}

impl std::fmt::Display for EditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditError::UnknownProc(p) => write!(f, "procedure id {p} is out of range"),
            EditError::UnknownSite(s) => write!(f, "call-site id {s} is out of range"),
            EditError::BadPosition {
                site,
                position,
                arity,
            } => write!(
                f,
                "site {site} has {arity} arguments; position {position} does not exist"
            ),
            EditError::RemoveMain => write!(f, "the main program cannot be removed"),
            EditError::HasChildren(p) => write!(
                f,
                "procedure {p} still declares nested procedures; remove them first"
            ),
            EditError::ProcedureInUse(p, s) => write!(
                f,
                "procedure {p} still participates in call site {s}; remove the site first"
            ),
            EditError::Invalid(e) => write!(f, "edit produced an invalid program: {e}"),
        }
    }
}

impl std::error::Error for EditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EditError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for EditError {
    fn from(e: ValidationError) -> Self {
        EditError::Invalid(e)
    }
}

/// What an applied [`Edit`] moved — the invalidation interface the
/// incremental engine consumes.
///
/// The remap tables translate *old* ids to *new* ids; `None` marks a
/// removed id. For edits that renumber nothing they are identities, so a
/// consumer can always remap unconditionally.
#[derive(Debug, Clone)]
pub struct EditDelta {
    /// The edit's [`Edit::kind`].
    pub kind: &'static str,
    /// Procedures (new ids) whose own body or directly declared
    /// procedures changed — the places whose flat `LMOD`/`LUSE` or §3.3
    /// extension *input* moved. Ancestors affected transitively through
    /// the nesting extension are the consumer's business.
    pub touched_procs: Vec<ProcId>,
    /// `true` if the call multi-graph or binding multi-graph may differ:
    /// any edit except [`Edit::SetLocalEffects`].
    pub structure_changed: bool,
    /// `true` if the variable universe changed (variables added or
    /// removed), so every cached bit vector needs re-domaining.
    pub universe_changed: bool,
    /// Old procedure id → new procedure id.
    pub proc_map: Vec<Option<ProcId>>,
    /// Old variable id → new variable id.
    pub var_map: Vec<Option<VarId>>,
    /// Old call-site id → new call-site id.
    pub site_map: Vec<Option<CallSiteId>>,
}

impl EditDelta {
    fn identity(program: &Program, kind: &'static str) -> Self {
        EditDelta {
            kind,
            touched_procs: Vec::new(),
            structure_changed: false,
            universe_changed: false,
            proc_map: (0..program.num_procs()).map(|i| Some(ProcId::new(i))).collect(),
            var_map: (0..program.num_vars()).map(|i| Some(VarId::new(i))).collect(),
            site_map: (0..program.num_sites())
                .map(|i| Some(CallSiteId::new(i)))
                .collect(),
        }
    }
}

impl Program {
    /// Applies `edit`, returning the edited program and its delta.
    ///
    /// The receiver is untouched; the result has been revalidated.
    ///
    /// # Errors
    ///
    /// See [`EditError`]. No partial application: any error leaves
    /// nothing changed.
    pub fn apply_edit(&self, edit: &Edit) -> Result<(Program, EditDelta), EditError> {
        match edit {
            Edit::SetLocalEffects { proc_, mods, uses } => {
                self.edit_set_local_effects(*proc_, mods, uses)
            }
            Edit::AddCallSite {
                caller,
                callee,
                args,
            } => self.edit_add_call_site(*caller, *callee, args),
            Edit::RemoveCallSite { site } => self.edit_remove_call_site(*site),
            Edit::AddProcedure {
                name,
                parent,
                formals,
            } => self.edit_add_procedure(name, *parent, formals),
            Edit::RemoveProcedure { proc_ } => self.edit_remove_procedure(*proc_),
            Edit::RebindActual {
                site,
                position,
                actual,
            } => self.edit_rebind_actual(*site, *position, actual),
        }
    }

    fn check_proc(&self, p: ProcId) -> Result<(), EditError> {
        if p.index() >= self.num_procs() {
            return Err(EditError::UnknownProc(p));
        }
        Ok(())
    }

    fn check_site(&self, s: CallSiteId) -> Result<(), EditError> {
        if s.index() >= self.num_sites() {
            return Err(EditError::UnknownSite(s));
        }
        Ok(())
    }

    fn edit_set_local_effects(
        &self,
        p: ProcId,
        mods: &[VarId],
        uses: &[VarId],
    ) -> Result<(Program, EditDelta), EditError> {
        self.check_proc(p)?;
        let mut out = self.clone();
        let mut body: Vec<Stmt> = Vec::with_capacity(mods.len() + uses.len());
        for &v in mods {
            body.push(Stmt::Assign {
                target: Ref::scalar(v),
                value: Expr::Const(0),
            });
        }
        for &v in uses {
            body.push(Stmt::Print {
                value: Expr::Load(Ref::scalar(v)),
            });
        }
        // Calls survive the rewrite, in source order: the call structure
        // has its own edits.
        walk_stmts(&self.procs[p.index()].body, &mut |s| {
            if let Stmt::Call { site } = s {
                body.push(Stmt::Call { site: *site });
            }
        });
        out.procs[p.index()].body = body;
        out.validate()?;
        let mut delta = EditDelta::identity(self, "set-local");
        delta.touched_procs.push(p);
        Ok((out, delta))
    }

    fn edit_add_call_site(
        &self,
        caller: ProcId,
        callee: ProcId,
        args: &[Actual],
    ) -> Result<(Program, EditDelta), EditError> {
        self.check_proc(caller)?;
        self.check_proc(callee)?;
        let mut out = self.clone();
        let site = CallSiteId::new(out.sites.len());
        out.sites.push(CallSite {
            caller,
            callee,
            args: args.to_vec(),
        });
        out.procs[caller.index()].body.push(Stmt::Call { site });
        out.validate()?;
        let mut delta = EditDelta::identity(self, "add-call");
        delta.touched_procs.push(caller);
        delta.structure_changed = true;
        Ok((out, delta))
    }

    fn edit_remove_call_site(&self, s: CallSiteId) -> Result<(Program, EditDelta), EditError> {
        self.check_site(s)?;
        let caller = self.sites[s.index()].caller;
        let mut out = self.clone();
        out.sites.remove(s.index());
        // Drop the call statement and shift the ids above the hole.
        for proc_ in &mut out.procs {
            proc_.body = strip_and_shift_site(std::mem::take(&mut proc_.body), s);
        }
        out.validate()?;
        let mut delta = EditDelta::identity(self, "remove-call");
        delta.touched_procs.push(caller);
        delta.structure_changed = true;
        delta.site_map = (0..self.num_sites())
            .map(|i| match i.cmp(&s.index()) {
                std::cmp::Ordering::Less => Some(CallSiteId::new(i)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(CallSiteId::new(i - 1)),
            })
            .collect();
        Ok((out, delta))
    }

    fn edit_add_procedure(
        &self,
        name: &str,
        parent: ProcId,
        formals: &[String],
    ) -> Result<(Program, EditDelta), EditError> {
        self.check_proc(parent)?;
        let mut out = self.clone();
        let p = ProcId::new(out.procs.len());
        let level = out.procs[parent.index()].level + 1;
        let mut formal_ids = Vec::with_capacity(formals.len());
        for (position, fname) in formals.iter().enumerate() {
            let v = VarId::new(out.vars.len());
            let sym = out.symbols.intern(fname);
            out.vars.push(VarInfo {
                name: sym,
                owner: Some(p),
                kind: VarKind::Formal { position },
                rank: 0,
            });
            formal_ids.push(v);
        }
        let name_sym = out.symbols.intern(name);
        out.procs[parent.index()].children.push(p);
        out.procs.push(Procedure {
            name: name_sym,
            formals: formal_ids,
            locals: Vec::new(),
            parent: Some(parent),
            level,
            children: Vec::new(),
            body: Vec::new(),
        });
        out.validate()?;
        let mut delta = EditDelta::identity(self, "add-proc");
        // The new procedure's (empty) body is "touched", and so is the
        // parent: its declared-procedures list changed, which feeds the
        // §3.3 nesting extension.
        delta.touched_procs.push(p);
        delta.touched_procs.push(parent);
        delta.structure_changed = true;
        delta.universe_changed = !formals.is_empty();
        Ok((out, delta))
    }

    fn edit_remove_procedure(&self, p: ProcId) -> Result<(Program, EditDelta), EditError> {
        self.check_proc(p)?;
        if p == ProcId::MAIN {
            return Err(EditError::RemoveMain);
        }
        if !self.procs[p.index()].children.is_empty() {
            return Err(EditError::HasChildren(p));
        }
        for (i, site) in self.sites.iter().enumerate() {
            if site.caller == p || site.callee == p {
                return Err(EditError::ProcedureInUse(p, CallSiteId::new(i)));
            }
        }

        // Renumber: procedures above p shift down; the removed
        // procedure's variables (its formals and locals, wherever they
        // sit in the table) disappear and later variables shift down.
        let proc_map: Vec<Option<ProcId>> = (0..self.num_procs())
            .map(|i| match i.cmp(&p.index()) {
                std::cmp::Ordering::Less => Some(ProcId::new(i)),
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Greater => Some(ProcId::new(i - 1)),
            })
            .collect();
        let mut var_map: Vec<Option<VarId>> = Vec::with_capacity(self.num_vars());
        let mut next = 0usize;
        for info in &self.vars {
            if info.owner == Some(p) {
                var_map.push(None);
            } else {
                var_map.push(Some(VarId::new(next)));
                next += 1;
            }
        }
        let map_proc = |q: ProcId| proc_map[q.index()].expect("renumbered procedure survives");
        let map_var = |v: VarId| var_map[v.index()].expect("renumbered variable survives");

        let vars: Vec<VarInfo> = self
            .vars
            .iter()
            .filter(|info| info.owner != Some(p))
            .map(|info| VarInfo {
                name: info.name,
                owner: info.owner.map(map_proc),
                kind: info.kind,
                rank: info.rank,
            })
            .collect();
        let procs: Vec<Procedure> = self
            .procs
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != p.index())
            .map(|(_, proc_)| Procedure {
                name: proc_.name,
                formals: proc_.formals.iter().map(|&v| map_var(v)).collect(),
                locals: proc_.locals.iter().map(|&v| map_var(v)).collect(),
                parent: proc_.parent.map(map_proc),
                level: proc_.level,
                children: proc_
                    .children
                    .iter()
                    .filter(|&&c| c != p)
                    .map(|&c| map_proc(c))
                    .collect(),
                body: map_vars_in_stmts(&proc_.body, &map_var),
            })
            .collect();
        let sites: Vec<CallSite> = self
            .sites
            .iter()
            .map(|site| CallSite {
                caller: map_proc(site.caller),
                callee: map_proc(site.callee),
                args: site.args.iter().map(|a| map_actual(a, &map_var)).collect(),
            })
            .collect();

        let out = Program {
            symbols: self.symbols.clone(),
            vars,
            procs,
            sites,
        };
        out.validate()?;
        let parent_new = self.procs[p.index()]
            .parent
            .map(|q| proc_map[q.index()].expect("an ancestor survives removal"));
        let delta = EditDelta {
            kind: "remove-proc",
            // The parent (new id) lost a declared procedure — its §3.3
            // extension input changed even though its own body did not.
            touched_procs: parent_new.into_iter().collect(),
            structure_changed: true,
            universe_changed: var_map.iter().any(Option::is_none),
            proc_map,
            var_map,
            site_map: (0..self.num_sites())
                .map(|i| Some(CallSiteId::new(i)))
                .collect(),
        };
        Ok((out, delta))
    }

    fn edit_rebind_actual(
        &self,
        s: CallSiteId,
        position: usize,
        actual: &Actual,
    ) -> Result<(Program, EditDelta), EditError> {
        self.check_site(s)?;
        let arity = self.sites[s.index()].args.len();
        if position >= arity {
            return Err(EditError::BadPosition {
                site: s,
                position,
                arity,
            });
        }
        let mut out = self.clone();
        out.sites[s.index()].args[position] = actual.clone();
        out.validate()?;
        let mut delta = EditDelta::identity(self, "rebind");
        delta.touched_procs.push(self.sites[s.index()].caller);
        delta.structure_changed = true;
        Ok((out, delta))
    }
}

/// Removes the (unique) call statement for `removed` and decrements every
/// site id above it. Recursion depth equals the statement nesting depth.
fn strip_and_shift_site(stmts: Vec<Stmt>, removed: CallSiteId) -> Vec<Stmt> {
    stmts
        .into_iter()
        .filter_map(|s| match s {
            Stmt::Call { site } => match site.cmp(&removed) {
                std::cmp::Ordering::Equal => None,
                std::cmp::Ordering::Less => Some(Stmt::Call { site }),
                std::cmp::Ordering::Greater => Some(Stmt::Call {
                    site: CallSiteId::new(site.index() - 1),
                }),
            },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Some(Stmt::If {
                cond,
                then_branch: strip_and_shift_site(then_branch, removed),
                else_branch: strip_and_shift_site(else_branch, removed),
            }),
            Stmt::While { cond, body } => Some(Stmt::While {
                cond,
                body: strip_and_shift_site(body, removed),
            }),
            other => Some(other),
        })
        .collect()
}

/// Rewrites every variable id in a statement tree. Recursion depth equals
/// the statement nesting depth.
fn map_vars_in_stmts(stmts: &[Stmt], f: &impl Fn(VarId) -> VarId) -> Vec<Stmt> {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::Assign { target, value } => Stmt::Assign {
                target: map_ref(target, f),
                value: map_expr(value, f),
            },
            Stmt::Read { target } => Stmt::Read {
                target: map_ref(target, f),
            },
            Stmt::Print { value } => Stmt::Print {
                value: map_expr(value, f),
            },
            Stmt::Call { site } => Stmt::Call { site: *site },
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => Stmt::If {
                cond: map_expr(cond, f),
                then_branch: map_vars_in_stmts(then_branch, f),
                else_branch: map_vars_in_stmts(else_branch, f),
            },
            Stmt::While { cond, body } => Stmt::While {
                cond: map_expr(cond, f),
                body: map_vars_in_stmts(body, f),
            },
        })
        .collect()
}

fn map_ref(r: &Ref, f: &impl Fn(VarId) -> VarId) -> Ref {
    Ref {
        var: f(r.var),
        subs: r
            .subs
            .iter()
            .map(|s| match s {
                Subscript::Var(v) => Subscript::Var(f(*v)),
                other => *other,
            })
            .collect(),
    }
}

fn map_expr(e: &Expr, f: &impl Fn(VarId) -> VarId) -> Expr {
    match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Load(r) => Expr::Load(map_ref(r, f)),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(map_expr(inner, f))),
        Expr::Binary(op, l, r) => {
            Expr::Binary(*op, Box::new(map_expr(l, f)), Box::new(map_expr(r, f)))
        }
    }
}

fn map_actual(a: &Actual, f: &impl Fn(VarId) -> VarId) -> Actual {
    match a {
        Actual::Ref(r) => Actual::Ref(map_ref(r, f)),
        Actual::Value(e) => Actual::Value(map_expr(e, f)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::localeffects::LocalEffects;

    fn base() -> (Program, ProcId, ProcId, VarId, VarId) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::load(g));
        let q = b.proc_("q", &[]);
        b.assign(q, h, Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[g]);
        b.call(main, q, &[]);
        let program = b.finish().expect("valid");
        (program, p, q, g, h)
    }

    #[test]
    fn set_local_effects_rewrites_body_keeps_calls() {
        let (program, p, _q, g, h) = base();
        let main = ProcId::MAIN;
        let (edited, delta) = program
            .apply_edit(&Edit::SetLocalEffects {
                proc_: main,
                mods: vec![h],
                uses: vec![g],
            })
            .expect("valid edit");
        assert_eq!(delta.touched_procs, vec![main]);
        assert!(!delta.structure_changed);
        assert_eq!(edited.num_sites(), program.num_sites());
        let fx = LocalEffects::compute(&edited);
        assert!(fx.imod_flat(main).contains(h.index()));
        assert!(fx.iuse_flat(main).contains(g.index()));
        // Calls survived in order.
        let calls: Vec<_> = edited
            .proc_(main)
            .body()
            .iter()
            .filter(|s| matches!(s, Stmt::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 2);
        let _ = p;
    }

    #[test]
    fn add_and_remove_call_site_roundtrip() {
        let (program, p, _q, g, _h) = base();
        let (with_call, delta) = program
            .apply_edit(&Edit::AddCallSite {
                caller: ProcId::MAIN,
                callee: p,
                args: vec![Actual::Ref(Ref::scalar(g))],
            })
            .expect("valid edit");
        assert!(delta.structure_changed);
        assert_eq!(with_call.num_sites(), program.num_sites() + 1);
        let new_site = CallSiteId::new(program.num_sites());
        assert_eq!(with_call.site(new_site).callee(), p);

        // Remove the first site: ids above shift down, statement count
        // drops by one, and the program stays valid.
        let (shrunk, delta) = with_call
            .apply_edit(&Edit::RemoveCallSite {
                site: CallSiteId::new(0),
            })
            .expect("valid edit");
        assert_eq!(shrunk.num_sites(), program.num_sites());
        assert_eq!(delta.site_map[0], None);
        assert_eq!(delta.site_map[1], Some(CallSiteId::new(0)));
        assert_eq!(shrunk.site(CallSiteId::new(1)).callee(), p);
    }

    #[test]
    fn add_procedure_appends_ids() {
        let (program, _p, _q, _g, _h) = base();
        let (grown, delta) = program
            .apply_edit(&Edit::AddProcedure {
                name: "fresh".into(),
                parent: ProcId::MAIN,
                formals: vec!["a".into(), "b".into()],
            })
            .expect("valid edit");
        assert!(delta.universe_changed);
        let new_proc = ProcId::new(program.num_procs());
        assert_eq!(grown.num_procs(), program.num_procs() + 1);
        assert_eq!(grown.proc_name(new_proc), "fresh");
        assert_eq!(grown.proc_(new_proc).formals().len(), 2);
        assert_eq!(grown.proc_(new_proc).level(), 1);
        assert_eq!(grown.num_vars(), program.num_vars() + 2);
        // Old ids are untouched.
        for v in program.vars() {
            assert_eq!(delta.var_map[v.index()], Some(v));
        }
    }

    #[test]
    fn remove_procedure_renumbers() {
        let (program, p, q, g, h) = base();
        // p is still called; removal must be refused.
        assert!(matches!(
            program.apply_edit(&Edit::RemoveProcedure { proc_: p }),
            Err(EditError::ProcedureInUse(..))
        ));
        // Remove p's call site first, then p itself.
        let (no_call, _) = program
            .apply_edit(&Edit::RemoveCallSite {
                site: CallSiteId::new(0),
            })
            .expect("valid edit");
        let (removed, delta) = no_call
            .apply_edit(&Edit::RemoveProcedure { proc_: p })
            .expect("valid edit");
        assert_eq!(removed.num_procs(), program.num_procs() - 1);
        assert!(delta.universe_changed);
        assert_eq!(delta.proc_map[p.index()], None);
        let new_q = delta.proc_map[q.index()].expect("q survives");
        assert_eq!(removed.proc_name(new_q), "q");
        // p's formal is gone; globals keep their (low) ids here.
        assert_eq!(delta.var_map[g.index()], Some(g));
        let fx = LocalEffects::compute(&removed);
        let new_h = delta.var_map[h.index()].expect("h survives");
        assert!(fx.imod(new_q).contains(new_h.index()));
    }

    #[test]
    fn remove_main_and_nonempty_parent_rejected() {
        let (program, _p, _q, _g, _h) = base();
        assert!(matches!(
            program.apply_edit(&Edit::RemoveProcedure {
                proc_: ProcId::MAIN
            }),
            Err(EditError::RemoveMain)
        ));
        let (nested, _) = program
            .apply_edit(&Edit::AddProcedure {
                name: "outer".into(),
                parent: ProcId::MAIN,
                formals: vec![],
            })
            .expect("valid edit");
        let outer = ProcId::new(program.num_procs());
        let (nested, _) = nested
            .apply_edit(&Edit::AddProcedure {
                name: "inner".into(),
                parent: outer,
                formals: vec![],
            })
            .expect("valid edit");
        assert!(matches!(
            nested.apply_edit(&Edit::RemoveProcedure { proc_: outer }),
            Err(EditError::HasChildren(_))
        ));
    }

    #[test]
    fn rebind_actual_checks_scope_and_position() {
        let (program, _p, _q, g, h) = base();
        let s = CallSiteId::new(0);
        let (rebound, delta) = program
            .apply_edit(&Edit::RebindActual {
                site: s,
                position: 0,
                actual: Actual::Ref(Ref::scalar(h)),
            })
            .expect("valid edit");
        assert_eq!(rebound.site(s).args()[0].as_ref_var(), Some(h));
        assert!(delta.structure_changed);
        assert!(matches!(
            program.apply_edit(&Edit::RebindActual {
                site: s,
                position: 7,
                actual: Actual::Ref(Ref::scalar(g)),
            }),
            Err(EditError::BadPosition { .. })
        ));
        // An out-of-scope actual is rejected by revalidation.
        let (with_proc, _) = program
            .apply_edit(&Edit::AddProcedure {
                name: "r".into(),
                parent: ProcId::MAIN,
                formals: vec!["z".into()],
            })
            .expect("valid edit");
        let z = VarId::new(program.num_vars());
        assert!(matches!(
            with_proc.apply_edit(&Edit::RebindActual {
                site: s,
                position: 0,
                actual: Actual::Ref(Ref::scalar(z)),
            }),
            Err(EditError::Invalid(ValidationError::OutOfScope { .. }))
        ));
    }

    #[test]
    fn invalid_edits_report_out_of_range_ids() {
        let (program, ..) = base();
        assert!(matches!(
            program.apply_edit(&Edit::RemoveCallSite {
                site: CallSiteId::new(99)
            }),
            Err(EditError::UnknownSite(s)) if s == CallSiteId::new(99)
        ));
        assert!(matches!(
            program.apply_edit(&Edit::SetLocalEffects {
                proc_: ProcId::new(99),
                mods: vec![],
                uses: vec![],
            }),
            Err(EditError::UnknownProc(p)) if p == ProcId::new(99)
        ));
    }

    #[test]
    fn arity_mismatch_on_add_call_rejected() {
        let (program, p, _q, _g, _h) = base();
        assert!(matches!(
            program.apply_edit(&Edit::AddCallSite {
                caller: ProcId::MAIN,
                callee: p,
                args: vec![],
            }),
            Err(EditError::Invalid(ValidationError::ArityMismatch { .. }))
        ));
    }
}
