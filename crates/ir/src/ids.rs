//! Newtyped indices for procedures, variables, and call sites.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Wraps a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` exceeds `u32::MAX`.
            pub fn new(index: usize) -> Self {
                $name(u32::try_from(index).expect(concat!(stringify!($name), " overflow")))
            }

            /// The dense index, usable for direct vector addressing.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

define_id!(
    /// Identifies a procedure within a [`crate::Program`].
    ///
    /// `ProcId`s are dense: they index directly into per-procedure tables
    /// such as `GMOD` rows. The main program is a procedure too (the paper
    /// treats a non-empty `GMOD(main)` as "an implementation detail",
    /// footnote 3) and always has id 0.
    ProcId, "p"
);

define_id!(
    /// Identifies a variable in the program-wide variable universe.
    ///
    /// All variables — globals, locals, and formal parameters of every
    /// procedure — share one dense id space, because the paper's bit
    /// vectors range over the whole program's variables (§1).
    VarId, "v"
);

define_id!(
    /// Identifies one call site (one textual call statement).
    ///
    /// A procedure calling the same callee from three sites yields three
    /// `CallSiteId`s and three parallel edges in the call multi-graph.
    CallSiteId, "s"
);

impl ProcId {
    /// The main program's id.
    pub const MAIN: ProcId = ProcId(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_ordering() {
        let a = VarId::new(3);
        let b = VarId::new(7);
        assert_eq!(a.index(), 3);
        assert!(a < b);
        assert_eq!(usize::from(b), 7);
    }

    #[test]
    fn debug_uses_prefix() {
        assert_eq!(format!("{:?}", ProcId::new(2)), "p2");
        assert_eq!(format!("{}", VarId::new(9)), "v9");
        assert_eq!(format!("{:?}", CallSiteId::new(0)), "s0");
    }

    #[test]
    fn main_is_zero() {
        assert_eq!(ProcId::MAIN, ProcId::new(0));
    }
}
