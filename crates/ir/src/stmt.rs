//! Statements, expressions, and call-site actuals.

use crate::ids::{CallSiteId, VarId};

/// A reference to a variable, optionally with array subscripts.
///
/// A bare scalar reference has no subscripts. An array reference carries
/// one [`Subscript`] per dimension; [`Subscript::All`] (`*`) selects a
/// whole axis, which is how array *sections* — the subject of the paper's
/// §6 — are written at call sites (`call smooth(A[i, *])` passes row `i`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ref {
    /// The referenced variable.
    pub var: VarId,
    /// Per-dimension subscripts; empty for scalar references.
    pub subs: Vec<Subscript>,
}

impl Ref {
    /// A scalar (unsubscripted) reference.
    pub fn scalar(var: VarId) -> Self {
        Ref {
            var,
            subs: Vec::new(),
        }
    }

    /// An array element/section reference.
    pub fn indexed<I: IntoIterator<Item = Subscript>>(var: VarId, subs: I) -> Self {
        Ref {
            var,
            subs: subs.into_iter().collect(),
        }
    }
}

impl From<VarId> for Ref {
    fn from(var: VarId) -> Self {
        Ref::scalar(var)
    }
}

/// One array subscript position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subscript {
    /// A compile-time constant index.
    Const(i64),
    /// A symbolic index: the value of a scalar variable.
    Var(VarId),
    /// The whole axis (`*`), denoting a section.
    All,
}

/// A side-effect-free expression.
///
/// Expressions cannot contain calls — MiniProc, like the paper's model,
/// only invokes procedures through call *statements*, which keeps every
/// side effect attached to a call site.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// An integer literal.
    Const(i64),
    /// A variable or array-element read.
    Load(Ref),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// An integer literal expression.
    pub fn constant(value: i64) -> Self {
        Expr::Const(value)
    }

    /// Reads a scalar variable.
    pub fn load(var: VarId) -> Self {
        Expr::Load(Ref::scalar(var))
    }

    /// Reads an array element.
    pub fn load_indexed<I: IntoIterator<Item = Subscript>>(var: VarId, subs: I) -> Self {
        Expr::Load(Ref::indexed(var, subs))
    }

    /// Builds `lhs op rhs`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinOp {
    /// The MiniProc spelling of the operator.
    pub fn spelling(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
        }
    }
}

/// A statement.
///
/// Control structure is retained only so programs look and print like real
/// programs; the flow-insensitive analyses simply walk every nested
/// statement (a conditional's branches are both "possible", §3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `target := value` — modifies `target.var`.
    Assign {
        /// Destination variable or array element.
        target: Ref,
        /// Right-hand side.
        value: Expr,
    },
    /// `read target` — modifies `target.var` from input.
    Read {
        /// Destination variable or array element.
        target: Ref,
    },
    /// `print value` — uses the expression's variables.
    Print {
        /// Printed expression.
        value: Expr,
    },
    /// `call …` — all effect information lives in the program's call-site
    /// table under this id.
    Call {
        /// The call site executed by this statement.
        site: CallSiteId,
    },
    /// `if (cond) { … } else { … }`.
    If {
        /// Branch condition (used, never modified).
        cond: Expr,
        /// Taken branch.
        then_branch: Vec<Stmt>,
        /// Fallback branch (possibly empty).
        else_branch: Vec<Stmt>,
    },
    /// `while (cond) { … }`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// An actual argument at a call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Actual {
    /// Passed by reference: the callee's formal aliases this variable (or
    /// array section). Writes to the formal write through to it.
    Ref(Ref),
    /// Passed by value: a copy; generates no binding edge (§3.1: "a call
    /// site that passes only local variables as actual parameters
    /// generates no edges in `E_β`" — and a by-value actual never does).
    Value(Expr),
}

impl Actual {
    /// The by-reference variable, if this actual is a reference.
    pub fn as_ref_var(&self) -> Option<VarId> {
        match self {
            Actual::Ref(r) => Some(r.var),
            Actual::Value(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_constructors() {
        let v = VarId::new(1);
        assert_eq!(Ref::scalar(v), Ref::from(v));
        let r = Ref::indexed(v, [Subscript::Const(3), Subscript::All]);
        assert_eq!(r.subs.len(), 2);
    }

    #[test]
    fn actual_ref_var() {
        let v = VarId::new(2);
        assert_eq!(Actual::Ref(Ref::scalar(v)).as_ref_var(), Some(v));
        assert_eq!(Actual::Value(Expr::constant(0)).as_ref_var(), None);
    }

    #[test]
    fn binop_spellings_are_distinct() {
        use std::collections::HashSet;
        let all = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Eq,
            BinOp::Ne,
        ];
        let set: HashSet<&str> = all.iter().map(|o| o.spelling()).collect();
        assert_eq!(set.len(), all.len());
    }
}
