//! Pretty-printing programs back to MiniProc source.
//!
//! The output is valid input for the `modref-frontend` parser, which the
//! integration suite uses for round-trip testing (print → parse → print is
//! a fixed point).

use std::fmt::Write as _;

use crate::ids::ProcId;
use crate::program::Program;
use crate::stmt::{Actual, Expr, Ref, Stmt, Subscript, UnOp};

impl Program {
    /// Renders the program as MiniProc source text.
    ///
    /// # Examples
    ///
    /// ```
    /// use modref_ir::{Expr, ProgramBuilder};
    ///
    /// # fn main() -> Result<(), modref_ir::ValidationError> {
    /// let mut b = ProgramBuilder::new();
    /// let g = b.global("g");
    /// let main = b.main();
    /// b.assign(main, g, Expr::constant(1));
    /// let text = b.finish()?.to_source();
    /// assert!(text.contains("g = 1;"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let mut p = Printer {
            program: self,
            out: &mut out,
        };
        p.program();
        out
    }
}

struct Printer<'a> {
    program: &'a Program,
    out: &'a mut String,
}

impl Printer<'_> {
    fn program(&mut self) {
        // Globals.
        for v in self.program.vars() {
            let info = self.program.var(v);
            if info.is_global() {
                let decl = self.var_decl(v);
                let _ = writeln!(self.out, "var {decl};");
            }
        }
        if self.program.vars().any(|v| self.program.var(v).is_global()) {
            self.out.push('\n');
        }
        // Top-level procedures (children of main), each recursively.
        let main = self.program.proc_(ProcId::MAIN);
        for &c in main.children() {
            self.proc_(c, 0);
            self.out.push('\n');
        }
        // Main block.
        let _ = writeln!(self.out, "main {{");
        for &l in main.locals() {
            let decl = self.var_decl(l);
            let _ = writeln!(self.out, "  var {decl};");
        }
        for s in main.body() {
            self.stmt(s, 1);
        }
        let _ = writeln!(self.out, "}}");
    }

    fn var_decl(&self, v: crate::ids::VarId) -> String {
        let info = self.program.var(v);
        let name = self.program.var_name(v);
        if info.rank() == 0 {
            name.to_owned()
        } else {
            let stars = vec!["*"; info.rank()].join(", ");
            format!("{name}[{stars}]")
        }
    }

    fn proc_(&mut self, p: ProcId, depth: usize) {
        let pad = "  ".repeat(depth);
        let proc_ = self.program.proc_(p);
        let formals: Vec<String> = proc_.formals().iter().map(|&f| self.var_decl(f)).collect();
        let _ = writeln!(
            self.out,
            "{pad}proc {}({}) {{",
            self.program.proc_name(p),
            formals.join(", ")
        );
        for &l in proc_.locals() {
            let decl = self.var_decl(l);
            let _ = writeln!(self.out, "{pad}  var {decl};");
        }
        for &c in proc_.children() {
            self.proc_(c, depth + 1);
        }
        for s in proc_.body() {
            self.stmt(s, depth + 1);
        }
        let _ = writeln!(self.out, "{pad}}}");
    }

    fn stmt(&mut self, s: &Stmt, depth: usize) {
        let pad = "  ".repeat(depth);
        match s {
            Stmt::Assign { target, value } => {
                let t = self.ref_(target);
                let v = self.expr(value);
                let _ = writeln!(self.out, "{pad}{t} = {v};");
            }
            Stmt::Read { target } => {
                let t = self.ref_(target);
                let _ = writeln!(self.out, "{pad}read {t};");
            }
            Stmt::Print { value } => {
                let v = self.expr(value);
                let _ = writeln!(self.out, "{pad}print {v};");
            }
            Stmt::Call { site } => {
                let info = self.program.site(*site);
                let args: Vec<String> = info
                    .args()
                    .iter()
                    .map(|a| match a {
                        Actual::Ref(r) => self.ref_(r),
                        Actual::Value(e) => format!("value {}", self.expr(e)),
                    })
                    .collect();
                let _ = writeln!(
                    self.out,
                    "{pad}call {}({});",
                    self.program.proc_name(info.callee()),
                    args.join(", ")
                );
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let c = self.expr(cond);
                let _ = writeln!(self.out, "{pad}if ({c}) {{");
                for inner in then_branch {
                    self.stmt(inner, depth + 1);
                }
                if else_branch.is_empty() {
                    let _ = writeln!(self.out, "{pad}}}");
                } else {
                    let _ = writeln!(self.out, "{pad}}} else {{");
                    for inner in else_branch {
                        self.stmt(inner, depth + 1);
                    }
                    let _ = writeln!(self.out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let c = self.expr(cond);
                let _ = writeln!(self.out, "{pad}while ({c}) {{");
                for inner in body {
                    self.stmt(inner, depth + 1);
                }
                let _ = writeln!(self.out, "{pad}}}");
            }
        }
    }

    fn ref_(&self, r: &Ref) -> String {
        let name = self.program.var_name(r.var);
        if r.subs.is_empty() {
            name.to_owned()
        } else {
            let subs: Vec<String> = r.subs.iter().map(|s| self.subscript(s)).collect();
            format!("{name}[{}]", subs.join(", "))
        }
    }

    fn subscript(&self, s: &Subscript) -> String {
        match s {
            Subscript::Const(c) => c.to_string(),
            Subscript::Var(v) => self.program.var_name(*v).to_owned(),
            Subscript::All => "*".to_owned(),
        }
    }

    fn expr(&self, e: &Expr) -> String {
        match e {
            Expr::Const(c) => {
                if *c < 0 {
                    // Avoid relying on unary-minus lexing for round trips.
                    format!("(0 - {})", c.unsigned_abs())
                } else {
                    c.to_string()
                }
            }
            Expr::Load(r) => self.ref_(r),
            Expr::Unary(UnOp::Neg, inner) => format!("(0 - {})", self.expr(inner)),
            Expr::Unary(UnOp::Not, inner) => format!("(1 - {})", self.expr(inner)),
            Expr::Binary(op, l, r) => {
                format!("({} {} {})", self.expr(l), op.spelling(), self.expr(r))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::BinOp;

    #[test]
    fn prints_structure() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let a = b.global_array("grid", 2);
        let p = b.proc_("update", &["x"]);
        let t = b.local(p, "t");
        let inner = b.nested_proc(p, "helper", &[]);
        b.assign(inner, t, Expr::constant(2));
        b.assign(p, b.formal(p, 0), Expr::load(t));
        b.assign_indexed(
            p,
            a,
            vec![Subscript::Var(t), Subscript::All],
            Expr::constant(0),
        );
        b.call(p, inner, &[]);
        let main = b.main();
        let ml = b.local(main, "m");
        b.assign(main, ml, Expr::constant(5));
        b.call_args(
            main,
            p,
            vec![Actual::Value(Expr::binary(
                BinOp::Add,
                Expr::load(g),
                Expr::constant(1),
            ))],
        );
        let text = b.finish().expect("valid").to_source();

        assert!(text.contains("var g;"));
        assert!(text.contains("var grid[*, *];"));
        assert!(text.contains("proc update(x) {"));
        assert!(text.contains("  proc helper() {"));
        assert!(text.contains("grid[t, *] = 0;"));
        assert!(text.contains("call helper();"));
        assert!(text.contains("call update(value (g + 1));"));
        assert!(text.contains("var m;"));
        assert!(text.contains("main {"));
    }

    #[test]
    fn negative_constants_avoid_unary_minus() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let main = b.main();
        b.assign(main, g, Expr::constant(-7));
        let text = b.finish().expect("valid").to_source();
        assert!(text.contains("g = (0 - 7);"));
    }
}
