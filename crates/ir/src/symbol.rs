//! String interning for identifiers.

use std::collections::HashMap;
use std::fmt;

/// An interned identifier. Cheap to copy and compare; resolve the text
/// through the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u32);

impl Symbol {
    /// The dense index of this symbol in its interner.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym{}", self.0)
    }
}

/// Interns identifier strings, handing out stable [`Symbol`]s.
///
/// # Examples
///
/// ```
/// use modref_ir::Interner;
///
/// let mut interner = Interner::new();
/// let a = interner.intern("count");
/// let b = interner.intern("count");
/// assert_eq!(a, b);
/// assert_eq!(interner.resolve(a), "count");
/// ```
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    strings: Vec<String>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `text`, returning the existing symbol if already present.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.map.get(text) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("too many symbols"));
        self.strings.push(text.to_owned());
        self.map.insert(text.to_owned(), sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, text: &str) -> Option<Symbol> {
        self.map.get(text).copied()
    }

    /// The text of `sym`.
    ///
    /// # Panics
    ///
    /// Panics if `sym` came from a different interner with a larger id
    /// space.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedupes() {
        let mut i = Interner::new();
        let a = i.intern("x");
        let b = i.intern("y");
        let c = i.intern("x");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(b), "y");
        assert_eq!(i.get("y"), Some(b));
        assert_eq!(i.get("z"), None);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
