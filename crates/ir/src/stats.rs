//! Whole-program shape statistics.

use std::fmt;

use crate::program::Program;
use crate::stmt::Stmt;
use crate::visit::walk_stmts;

/// Size and shape measurements of a [`Program`], in the paper's
/// vocabulary (`N_C`, `E_C`, `μ_f`, `μ_a`, `d_P`, …).
///
/// # Examples
///
/// ```
/// use modref_ir::{Expr, ProgramBuilder, ProgramStats};
///
/// # fn main() -> Result<(), modref_ir::ValidationError> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let p = b.proc_("p", &["x", "y"]);
/// b.assign(p, g, Expr::constant(1));
/// let main = b.main();
/// b.call(main, p, &[g, g]);
/// let stats = ProgramStats::measure(&b.finish()?);
/// assert_eq!(stats.procedures, 2);
/// assert_eq!(stats.call_sites, 1);
/// assert_eq!(stats.globals, 1);
/// assert_eq!(stats.formals, 2);
/// assert_eq!(stats.statements, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ProgramStats {
    /// `N_C`: procedures including main.
    pub procedures: usize,
    /// `E_C`: call sites.
    pub call_sites: usize,
    /// Total statements (nested included).
    pub statements: usize,
    /// Program-scope variables.
    pub globals: usize,
    /// Local variables over all procedures.
    pub locals: usize,
    /// Formal parameters over all procedures.
    pub formals: usize,
    /// Array variables (any scope).
    pub arrays: usize,
    /// `d_P`: deepest procedure nesting level.
    pub max_nesting: u32,
    /// `μ_f`: mean formals per procedure.
    pub mean_formals: f64,
    /// `μ_a`: mean actuals per call site.
    pub mean_actuals: f64,
    /// Procedures unreachable from main.
    pub unreachable_procedures: usize,
}

impl ProgramStats {
    /// Measures `program` in one linear pass.
    pub fn measure(program: &Program) -> Self {
        let mut statements = 0usize;
        for p in program.procs() {
            walk_stmts(program.proc_(p).body(), &mut |_s: &Stmt| statements += 1);
        }
        let mut globals = 0usize;
        let mut locals = 0usize;
        let mut formals = 0usize;
        let mut arrays = 0usize;
        for v in program.vars() {
            let info = program.var(v);
            match info.kind() {
                crate::VarKind::Global => globals += 1,
                crate::VarKind::Local => locals += 1,
                crate::VarKind::Formal { .. } => formals += 1,
            }
            if info.rank() > 0 {
                arrays += 1;
            }
        }
        let cg = crate::CallGraph::build(program);
        let unreachable = cg.reachable_from_main().iter().filter(|&&r| !r).count();
        ProgramStats {
            procedures: program.num_procs(),
            call_sites: program.num_sites(),
            statements,
            globals,
            locals,
            formals,
            arrays,
            max_nesting: program.max_level(),
            mean_formals: program.mean_formals(),
            mean_actuals: program.mean_actuals(),
            unreachable_procedures: unreachable,
        }
    }
}

impl fmt::Display for ProgramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "procedures: {} ({} unreachable), call sites: {}, statements: {}",
            self.procedures, self.unreachable_procedures, self.call_sites, self.statements
        )?;
        writeln!(
            f,
            "variables: {} globals, {} locals, {} formals ({} arrays)",
            self.globals, self.locals, self.formals, self.arrays
        )?;
        write!(
            f,
            "d_P = {}, μ_f = {:.2}, μ_a = {:.2}",
            self.max_nesting, self.mean_formals, self.mean_actuals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::stmt::Expr;

    #[test]
    fn counts_nested_statements_and_unreachable() {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let _a = b.global_array("a", 2);
        let p = b.proc_("p", &["x"]);
        let _t = b.local(p, "t");
        let dead = b.proc_("dead", &[]);
        b.assign(dead, g, Expr::constant(0));
        b.stmt(
            p,
            crate::Stmt::While {
                cond: Expr::load(g),
                body: vec![crate::Stmt::Assign {
                    target: crate::Ref::scalar(g),
                    value: Expr::constant(1),
                }],
            },
        );
        let main = b.main();
        b.call(main, p, &[g]);
        let stats = ProgramStats::measure(&b.finish().expect("valid"));
        assert_eq!(stats.procedures, 3);
        assert_eq!(stats.unreachable_procedures, 1);
        assert_eq!(stats.statements, 4); // while + assign + dead assign + call
        assert_eq!(stats.arrays, 1);
        assert_eq!(stats.locals, 1);
        assert_eq!(stats.formals, 1);
        assert_eq!(stats.max_nesting, 1);
        assert!(!stats.to_string().is_empty());
    }
}
