//! Validation errors for [`crate::Program`].

use std::error::Error;
use std::fmt;

use crate::ids::{CallSiteId, ProcId, VarId};

/// A structural invariant violated by a program under construction.
///
/// Returned by [`crate::Program::validate`] and
/// [`crate::ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidationError {
    /// A non-global variable has no owning procedure.
    OwnerlessNonGlobal {
        /// The offending variable.
        var: VarId,
    },
    /// A global variable claims an owning procedure.
    OwnedGlobal {
        /// The offending variable.
        var: VarId,
    },
    /// A variable id does not exist in the variable table.
    DanglingVar {
        /// The offending variable.
        var: VarId,
    },
    /// A procedure id does not exist in the procedure table.
    DanglingProc {
        /// The offending procedure id.
        proc_: ProcId,
    },
    /// A call-site id does not exist in the site table.
    DanglingSite {
        /// The offending site id.
        site: CallSiteId,
    },
    /// A variable's `owner`/`kind` disagrees with the owner's declaration
    /// lists.
    OwnershipMismatch {
        /// The variable.
        var: VarId,
        /// The procedure whose lists disagree.
        proc_: ProcId,
    },
    /// The program has no procedures (main is mandatory).
    NoMain,
    /// Procedure 0 is not a well-formed main program (has a parent or a
    /// nonzero level).
    BadMain,
    /// A procedure other than main has no lexical parent.
    OrphanProc {
        /// The offending procedure.
        proc_: ProcId,
    },
    /// Parent/child/level bookkeeping is inconsistent.
    BadLevel {
        /// The offending procedure.
        proc_: ProcId,
    },
    /// A statement references a variable not in scope.
    OutOfScope {
        /// The referenced variable.
        var: VarId,
        /// The procedure containing the reference.
        proc_: ProcId,
    },
    /// A subscripted reference's subscript count differs from the array's
    /// declared rank.
    RankMismatch {
        /// The array variable.
        var: VarId,
        /// Declared rank.
        expected: usize,
        /// Number of subscripts supplied.
        found: usize,
    },
    /// A call site's argument count differs from the callee's formal count.
    ArityMismatch {
        /// The call site.
        site: CallSiteId,
        /// Callee's formal count.
        expected: usize,
        /// Actuals supplied.
        found: usize,
    },
    /// The main program appears as a callee.
    CallToMain {
        /// The offending site.
        site: CallSiteId,
    },
    /// The callee is not lexically visible from the caller.
    CalleeNotVisible {
        /// The offending site.
        site: CallSiteId,
    },
    /// A site id is referenced by `count != 1` call statements of its
    /// caller.
    SiteStatementCount {
        /// The site.
        site: CallSiteId,
        /// How many call statements referenced it.
        count: usize,
    },
    /// The caller recorded for a site differs from the procedure whose body
    /// contains the call statement.
    SiteCallerMismatch {
        /// The offending site.
        site: CallSiteId,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::OwnerlessNonGlobal { var } => {
                write!(f, "variable {var} is not global but has no owner")
            }
            Self::OwnedGlobal { var } => write!(f, "global variable {var} has an owner"),
            Self::DanglingVar { var } => write!(f, "variable id {var} is out of range"),
            Self::DanglingProc { proc_ } => write!(f, "procedure id {proc_} is out of range"),
            Self::DanglingSite { site } => write!(f, "call-site id {site} is out of range"),
            Self::OwnershipMismatch { var, proc_ } => write!(
                f,
                "variable {var} disagrees with the declaration lists of {proc_}"
            ),
            Self::NoMain => write!(f, "program has no procedures"),
            Self::BadMain => write!(f, "procedure 0 is not a valid main program"),
            Self::OrphanProc { proc_ } => {
                write!(f, "procedure {proc_} has no lexical parent")
            }
            Self::BadLevel { proc_ } => {
                write!(f, "procedure {proc_} has inconsistent nesting bookkeeping")
            }
            Self::OutOfScope { var, proc_ } => {
                write!(f, "variable {var} is not in scope in procedure {proc_}")
            }
            Self::RankMismatch {
                var,
                expected,
                found,
            } => write!(
                f,
                "array {var} has rank {expected} but {found} subscripts were given"
            ),
            Self::ArityMismatch {
                site,
                expected,
                found,
            } => write!(
                f,
                "call site {site} passes {found} arguments but the callee expects {expected}"
            ),
            Self::CallToMain { site } => write!(f, "call site {site} invokes the main program"),
            Self::CalleeNotVisible { site } => write!(
                f,
                "call site {site} invokes a procedure that is not lexically visible"
            ),
            Self::SiteStatementCount { site, count } => write!(
                f,
                "call site {site} is referenced by {count} call statements (expected 1)"
            ),
            Self::SiteCallerMismatch { site } => write!(
                f,
                "call site {site} appears in a different procedure than its recorded caller"
            ),
        }
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ValidationError::ArityMismatch {
            site: CallSiteId::new(1),
            expected: 2,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("s1"));
        assert!(msg.contains('2') && msg.contains('3'));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    /// One instance of every variant. The match below fails to compile
    /// if a variant is added without extending this list, so the
    /// exhaustive Display test cannot silently fall behind.
    fn all_variants() -> Vec<ValidationError> {
        let v = VarId::new(3);
        let p = ProcId::new(2);
        let s = CallSiteId::new(1);
        vec![
            ValidationError::OwnerlessNonGlobal { var: v },
            ValidationError::OwnedGlobal { var: v },
            ValidationError::DanglingVar { var: v },
            ValidationError::DanglingProc { proc_: p },
            ValidationError::DanglingSite { site: s },
            ValidationError::OwnershipMismatch { var: v, proc_: p },
            ValidationError::NoMain,
            ValidationError::BadMain,
            ValidationError::OrphanProc { proc_: p },
            ValidationError::BadLevel { proc_: p },
            ValidationError::OutOfScope { var: v, proc_: p },
            ValidationError::RankMismatch {
                var: v,
                expected: 2,
                found: 1,
            },
            ValidationError::ArityMismatch {
                site: s,
                expected: 2,
                found: 3,
            },
            ValidationError::CallToMain { site: s },
            ValidationError::CalleeNotVisible { site: s },
            ValidationError::SiteStatementCount { site: s, count: 2 },
            ValidationError::SiteCallerMismatch { site: s },
        ]
    }

    fn variant_tag(e: &ValidationError) -> &'static str {
        match e {
            ValidationError::OwnerlessNonGlobal { .. } => "OwnerlessNonGlobal",
            ValidationError::OwnedGlobal { .. } => "OwnedGlobal",
            ValidationError::DanglingVar { .. } => "DanglingVar",
            ValidationError::DanglingProc { .. } => "DanglingProc",
            ValidationError::DanglingSite { .. } => "DanglingSite",
            ValidationError::OwnershipMismatch { .. } => "OwnershipMismatch",
            ValidationError::NoMain => "NoMain",
            ValidationError::BadMain => "BadMain",
            ValidationError::OrphanProc { .. } => "OrphanProc",
            ValidationError::BadLevel { .. } => "BadLevel",
            ValidationError::OutOfScope { .. } => "OutOfScope",
            ValidationError::RankMismatch { .. } => "RankMismatch",
            ValidationError::ArityMismatch { .. } => "ArityMismatch",
            ValidationError::CallToMain { .. } => "CallToMain",
            ValidationError::CalleeNotVisible { .. } => "CalleeNotVisible",
            ValidationError::SiteStatementCount { .. } => "SiteStatementCount",
            ValidationError::SiteCallerMismatch { .. } => "SiteCallerMismatch",
        }
    }

    #[test]
    fn every_variant_displays_a_distinct_nonempty_message() {
        let variants = all_variants();
        let mut seen = std::collections::HashSet::new();
        for e in &variants {
            assert_eq!(variant_tag(e), variant_tag(&e.clone()), "tags are stable");
            let msg = e.to_string();
            assert!(!msg.is_empty(), "{}: empty Display", variant_tag(e));
            assert!(
                msg.chars().next().unwrap().is_lowercase(),
                "{}: messages start lowercase for composability: {msg}",
                variant_tag(e)
            );
            assert!(
                !msg.ends_with('.'),
                "{}: no trailing period: {msg}",
                variant_tag(e)
            );
            assert!(
                seen.insert(msg.clone()),
                "{}: duplicate message `{msg}`",
                variant_tag(e)
            );
        }
        // Every offending id must show up in its message so the error is
        // actionable without a debugger.
        for e in &variants {
            let msg = e.to_string();
            let expected_id = match e {
                ValidationError::OwnerlessNonGlobal { var }
                | ValidationError::OwnedGlobal { var }
                | ValidationError::DanglingVar { var }
                | ValidationError::OwnershipMismatch { var, .. }
                | ValidationError::OutOfScope { var, .. }
                | ValidationError::RankMismatch { var, .. } => Some(var.to_string()),
                ValidationError::DanglingProc { proc_ }
                | ValidationError::OrphanProc { proc_ }
                | ValidationError::BadLevel { proc_ } => Some(proc_.to_string()),
                ValidationError::DanglingSite { site }
                | ValidationError::ArityMismatch { site, .. }
                | ValidationError::CallToMain { site }
                | ValidationError::CalleeNotVisible { site }
                | ValidationError::SiteStatementCount { site, .. }
                | ValidationError::SiteCallerMismatch { site } => Some(site.to_string()),
                ValidationError::NoMain | ValidationError::BadMain => None,
            };
            if let Some(id) = expected_id {
                assert!(
                    msg.contains(&id),
                    "{}: message `{msg}` omits id `{id}`",
                    variant_tag(e)
                );
            }
        }
    }
}
