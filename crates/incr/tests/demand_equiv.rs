//! The differential guarantee of the demand-driven query path.
//!
//! The lazy [`QueryEngine`] must answer every `MOD`/`USE`/`DMOD`/`DUSE`
//! site query and every `GMOD`/`GUSE` procedure query **bit-identically**
//! to a from-scratch exhaustive [`Analyzer`] — while sharing one demand
//! memo across all queries on a program, in either query order. Three
//! walls:
//!
//! 1. *Exhaustive small worlds*: every call multi-graph over up to four
//!    procedures (the same enumeration `core/tests/exhaustive.rs` runs
//!    for the solvers), flat and binding-chained.
//! 2. *Seeded progen sweeps*: generated programs plus random edit
//!    scripts, checked after every applied edit, at 1 and 4 scratch
//!    threads. Replay a failure with
//!    `MODREF_SEED=<seed> cargo test -p modref-incr --test demand_equiv`.
//! 3. *Fault injection*: an armed panic or budget-exhaustion at every
//!    `query.*` guard checkpoint must degrade the answer to a proven
//!    **superset** of the exact sets (never unsound, never a crash), and
//!    the same engine must answer exactly once the pressure is gone.

use modref_check::prelude::*;
use modref_check::runner::CaseResult;
use modref_core::{Analyzer, FaultPlan, Guard};
use modref_incr::{EditGen, QueryEngine};
use modref_ir::{Expr, Program, ProgramBuilder};
use modref_progen::{generate, GenConfig};

/// Every guard checkpoint the demand walk can trip on (see
/// `modref_core::demand`). Kept in sync by the fault-injection tests
/// below: each site must actually *fire* on the rich program.
const QUERY_SITES: &[&str] = &[
    "query",
    "query.local",
    "query.rmod",
    "query.plus",
    "query.gmod",
    "query.alias",
    "query.final",
];

/// Queries every site and procedure through one shared-memo lazy engine
/// and asserts bit-identity against a scratch analysis. `reverse` flips
/// the query order, so memoized partial fixpoints are exercised both as
/// "computed on demand" and as "already finalised by an earlier query".
fn assert_demand_matches_scratch(program: &Program, reverse: bool, ctx: &str) {
    let scratch = Analyzer::new().analyze(program);
    let guard = Guard::unlimited();
    let mut lazy = QueryEngine::new_lazy(program.clone());
    let sites: Vec<_> = if reverse {
        program.sites().collect::<Vec<_>>().into_iter().rev().collect()
    } else {
        program.sites().collect()
    };
    let procs: Vec<_> = if reverse {
        program.procs().collect::<Vec<_>>().into_iter().rev().collect()
    } else {
        program.procs().collect()
    };
    // Reverse order also asks procs *first*, so site queries start from a
    // memo another query family warmed.
    if reverse {
        for &p in &procs {
            let out = lazy.proc_answer(p, &guard);
            assert!(out.degraded.is_none(), "{ctx}: unlimited query degraded");
            assert_eq!(&out.answer.gmod, scratch.gmod(p), "{ctx}: GMOD({p})");
            assert_eq!(&out.answer.guse, scratch.guse(p), "{ctx}: GUSE({p})");
        }
    }
    for &s in &sites {
        let out = lazy.site_answer(s, &guard);
        assert!(out.degraded.is_none(), "{ctx}: unlimited query degraded");
        assert_eq!(&out.answer.mods, scratch.mod_site(s), "{ctx}: MOD({s})");
        assert_eq!(&out.answer.uses, scratch.use_site(s), "{ctx}: USE({s})");
        assert_eq!(&out.answer.dmod, scratch.dmod_site(s), "{ctx}: DMOD({s})");
        assert_eq!(&out.answer.duse, scratch.duse_site(s), "{ctx}: DUSE({s})");
    }
    if !reverse {
        for &p in &procs {
            let out = lazy.proc_answer(p, &guard);
            assert!(out.degraded.is_none(), "{ctx}: unlimited query degraded");
            assert_eq!(&out.answer.gmod, scratch.gmod(p), "{ctx}: GMOD({p})");
            assert_eq!(&out.answer.guse, scratch.guse(p), "{ctx}: GUSE({p})");
        }
    }
}

/// All directed edge slots among `n` procedures, with or without
/// self-loops (mirrors `core/tests/exhaustive.rs`).
fn edge_slots(n: usize, self_loops: bool) -> Vec<(usize, usize)> {
    let mut slots = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if self_loops || i != j {
                slots.push((i, j));
            }
        }
    }
    slots
}

fn edges_of(slots: &[(usize, usize)], mask: u64) -> Vec<(usize, usize)> {
    slots
        .iter()
        .enumerate()
        .filter(|&(k, _)| mask & (1 << k) != 0)
        .map(|(_, &e)| e)
        .collect()
}

/// Flat configuration: parameterless procedures, each writing its own
/// global; edge `(i, j)` is a no-argument call `pi → pj`.
fn flat_program(n: usize, edges: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new();
    let globals: Vec<_> = (0..n).map(|i| b.global(&format!("g{i}"))).collect();
    let procs: Vec<_> = (0..n).map(|i| b.proc_(&format!("p{i}"), &[])).collect();
    for (i, &p) in procs.iter().enumerate() {
        b.assign(p, globals[i], Expr::constant(1));
    }
    let main = b.main();
    for &p in &procs {
        b.call(main, p, &[]);
    }
    for &(i, j) in edges {
        b.call(procs[i], procs[j], &[]);
    }
    b.finish().expect("flat instances are always valid")
}

/// Binding configuration: each procedure takes one reference formal,
/// only the last writes it; edge `(i, j)` passes `pi`'s formal on to
/// `pj`, so the demanded `RMOD` walk must chase bindings through every
/// cycle shape the mask encodes.
fn binding_program(n: usize, edges: &[(usize, usize)]) -> Program {
    let mut b = ProgramBuilder::new();
    let globals: Vec<_> = (0..n).map(|i| b.global(&format!("g{i}"))).collect();
    let procs: Vec<_> = (0..n).map(|i| b.proc_(&format!("p{i}"), &["x"])).collect();
    if let Some(&last) = procs.last() {
        b.assign(last, b.formal(last, 0), Expr::constant(1));
    }
    let main = b.main();
    for (i, &p) in procs.iter().enumerate() {
        b.call(main, p, &[globals[i]]);
    }
    for &(i, j) in edges {
        b.call(procs[i], procs[j], &[b.formal(procs[i], 0)]);
    }
    b.finish().expect("binding instances are always valid")
}

#[test]
fn demand_matches_scratch_on_all_small_worlds_up_to_three_procs() {
    let mut instances = 0usize;
    for n in 1..=3usize {
        let slots = edge_slots(n, true);
        for mask in 0..(1u64 << slots.len()) {
            let edges = edges_of(&slots, mask);
            for (kind, program) in [
                ("flat", flat_program(n, &edges)),
                ("binding", binding_program(n, &edges)),
            ] {
                let ctx = format!("{kind} n={n} mask={mask:#x}");
                assert_demand_matches_scratch(&program, false, &ctx);
                assert_demand_matches_scratch(&program, true, &ctx);
                instances += 1;
            }
        }
    }
    // 2 × (2 + 16 + 512): the enumeration itself is part of the contract.
    assert_eq!(instances, 1060, "the small-world enumeration shrank");
}

#[test]
fn demand_matches_scratch_on_all_four_proc_worlds_flat() {
    let slots = edge_slots(4, false);
    assert_eq!(slots.len(), 12);
    for mask in 0..(1u64 << slots.len()) {
        let program = flat_program(4, &edges_of(&slots, mask));
        assert_demand_matches_scratch(&program, mask % 2 == 1, &format!("flat n=4 mask={mask:#x}"));
    }
}

#[test]
fn demand_matches_scratch_on_all_four_proc_worlds_binding() {
    let slots = edge_slots(4, false);
    for mask in 0..(1u64 << slots.len()) {
        let program = binding_program(4, &edges_of(&slots, mask));
        assert_demand_matches_scratch(
            &program,
            mask % 2 == 1,
            &format!("binding n=4 mask={mask:#x}"),
        );
    }
}

/// One progen sweep: random edits stream through a lazy engine (pure IR
/// apply + memo invalidation); after every applied edit the demanded
/// answers must match a scratch analysis at `threads` workers.
fn run_sweep(program: &Program, threads: usize, seed: u64, steps: usize) -> CaseResult {
    let mut lazy = QueryEngine::new_lazy(program.clone());
    let guard = Guard::unlimited();
    let mut gen = EditGen::new(seed ^ 0xde3a_4d00_77u64);
    for step in 0..=steps {
        if step > 0 {
            let edit = gen.next_edit(lazy.program());
            if lazy.apply_guarded(&edit, &guard).is_err() {
                continue; // rejected edits leave program and memo untouched
            }
        }
        let program = lazy.program().clone();
        let scratch = Analyzer::new().threads(threads).analyze(&program);
        for s in program.sites() {
            let out = lazy.site_answer(s, &guard);
            prop_assert!(
                out.degraded.is_none(),
                "unlimited demand query degraded at step {} (seed {})",
                step,
                seed
            );
            prop_assert_eq!(
                &out.answer.mods,
                scratch.mod_site(s),
                "MOD({}) diverged at step {} / {} threads (seed {})",
                s,
                step,
                threads,
                seed
            );
            prop_assert_eq!(
                &out.answer.uses,
                scratch.use_site(s),
                "USE({}) diverged at step {} (seed {})",
                s,
                step,
                seed
            );
            prop_assert_eq!(
                &out.answer.dmod,
                scratch.dmod_site(s),
                "DMOD({}) diverged at step {} (seed {})",
                s,
                step,
                seed
            );
            prop_assert_eq!(
                &out.answer.duse,
                scratch.duse_site(s),
                "DUSE({}) diverged at step {} (seed {})",
                s,
                step,
                seed
            );
        }
        for p in program.procs() {
            let out = lazy.proc_answer(p, &guard);
            prop_assert_eq!(
                &out.answer.gmod,
                scratch.gmod(p),
                "GMOD({}) diverged at step {} / {} threads (seed {})",
                p,
                step,
                threads,
                seed
            );
            prop_assert_eq!(
                &out.answer.guse,
                scratch.guse(p),
                "GUSE({}) diverged at step {} (seed {})",
                p,
                step,
                seed
            );
        }
    }
    CaseResult::Pass
}

property! {
    #![cases = 24]

    fn demand_is_bit_identical_to_scratch_flat(
        seed in any_u64(),
        n in ints(2..14usize),
        steps in ints(1..9usize),
    ) {
        let program = generate(&GenConfig::fortran_like(n), seed);
        for &threads in &[1usize, 4] {
            match run_sweep(&program, threads, seed, steps) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }

    fn demand_is_bit_identical_to_scratch_pascal(
        seed in any_u64(),
        n in ints(4..20usize),
        depth in ints(2..5u32),
        steps in ints(1..7usize),
    ) {
        let program = generate(&GenConfig::pascal_like(n, depth), seed);
        for &threads in &[1usize, 4] {
            match run_sweep(&program, threads, seed, steps) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }

    fn demand_is_bit_identical_to_scratch_binding_heavy(
        seed in any_u64(),
        n in ints(2..10usize),
        params in ints(1..4usize),
        steps in ints(1..7usize),
    ) {
        let program = generate(&GenConfig::binding_heavy(n, params), seed);
        match run_sweep(&program, 1, seed, steps) {
            CaseResult::Pass => {}
            other => return other,
        }
    }
}

/// A program whose single "hot" site query walks through *every* demand
/// stage: local effects, a binding chain (`RMOD`), `IMOD⁺`, a cyclic
/// `GMOD` component, and aliased reference formals at the queried call.
fn fault_rich_program() -> Program {
    let mut b = ProgramBuilder::new();
    let g = b.global("g");
    let _h = b.global("h");
    let p = b.proc_("p", &["x", "y"]);
    let q = b.proc_("q", &["z"]);
    b.assign(p, b.formal(p, 0), Expr::constant(1));
    b.assign(q, b.formal(q, 0), Expr::constant(2));
    // A two-proc cycle passing formals along, so RMOD and GMOD both have
    // a real fixpoint to find.
    b.call(p, q, &[b.formal(p, 1)]);
    b.call(q, p, &[b.formal(q, 0), b.formal(q, 0)]);
    let main = b.main();
    // The queried site: the same actual bound to both reference formals,
    // so the caller has a live alias pair to fold in.
    b.call(main, p, &[g, g]);
    b.finish().expect("valid")
}

#[test]
fn injected_faults_at_every_query_site_degrade_soundly_and_recover() {
    let program = fault_rich_program();
    let scratch = Analyzer::new().analyze(&program);
    let site = program.sites().next().expect("has a site");
    let proc_ = program.procs().next().expect("has a proc");
    for &at in QUERY_SITES {
        for panic in [false, true] {
            let plan = if panic {
                FaultPlan::new().panic_at(at)
            } else {
                FaultPlan::new().exhaust_at(at)
            };
            let armed = Guard::unlimited().with_faults(plan);
            let mode = if panic { "panic" } else { "exhaust" };
            let mut lazy = QueryEngine::new_lazy(program.clone());

            let out = lazy.site_answer(site, &armed);
            let reason = out
                .degraded
                .unwrap_or_else(|| panic!("{mode}@`{at}`: site query must trip the fault"));
            // A contained panic names the checkpoint it fired at; a forced
            // exhaustion reads as the ordinary budget interrupt.
            if panic {
                assert!(reason.contains(at), "{mode}@`{at}`: reason was {reason}");
            }
            // Sound: the degraded answer contains the exact one.
            assert!(scratch.mod_site(site).is_subset(&out.answer.mods), "{mode}@`{at}`: MOD");
            assert!(scratch.use_site(site).is_subset(&out.answer.uses), "{mode}@`{at}`: USE");
            assert!(scratch.dmod_site(site).is_subset(&out.answer.dmod), "{mode}@`{at}`: DMOD");
            assert!(scratch.duse_site(site).is_subset(&out.answer.duse), "{mode}@`{at}`: DUSE");
            // Recovery: the same engine answers exactly under no pressure
            // (after an interrupt the memo kept only finalised values;
            // after a contained panic it was dropped entirely).
            let calm = lazy.site_answer(site, &Guard::unlimited());
            assert!(calm.degraded.is_none(), "{mode}@`{at}`: must recover");
            assert_eq!(&calm.answer.mods, scratch.mod_site(site), "{mode}@`{at}`: exact MOD");
            assert_eq!(&calm.answer.uses, scratch.use_site(site), "{mode}@`{at}`: exact USE");

            // Procedure queries share the ladder (skip the alias stage,
            // which only site queries reach).
            if at == "query.alias" {
                continue;
            }
            let armed = Guard::unlimited().with_faults(if panic {
                FaultPlan::new().panic_at(at)
            } else {
                FaultPlan::new().exhaust_at(at)
            });
            let mut lazy = QueryEngine::new_lazy(program.clone());
            let out = lazy.proc_answer(proc_, &armed);
            let reason = out
                .degraded
                .unwrap_or_else(|| panic!("{mode}@`{at}`: proc query must trip the fault"));
            if panic {
                assert!(reason.contains(at), "{mode}@`{at}`: reason was {reason}");
            }
            assert!(scratch.gmod(proc_).is_subset(&out.answer.gmod), "{mode}@`{at}`: GMOD");
            assert!(scratch.guse(proc_).is_subset(&out.answer.guse), "{mode}@`{at}`: GUSE");
            let calm = lazy.proc_answer(proc_, &Guard::unlimited());
            assert!(calm.degraded.is_none(), "{mode}@`{at}`: must recover");
            assert_eq!(&calm.answer.gmod, scratch.gmod(proc_), "{mode}@`{at}`: exact GMOD");
            assert_eq!(&calm.answer.guse, scratch.guse(proc_), "{mode}@`{at}`: exact GUSE");
        }
    }
}

/// Zero budgets and tight deadlines must degrade, never panic or hang —
/// and a later unlimited query on the same engine is exact.
#[test]
fn starved_budgets_degrade_soundly_on_generated_programs() {
    for seed in 0..8u64 {
        let program = generate(&GenConfig::fortran_like(10), seed);
        let scratch = Analyzer::new().analyze(&program);
        let mut lazy = QueryEngine::new_lazy(program.clone());
        let tight = Guard::new(&modref_core::Budget::unlimited().with_bitvec_steps(1));
        for s in program.sites().take(4) {
            let out = lazy.site_answer(s, &tight);
            if out.degraded.is_some() {
                assert!(
                    scratch.mod_site(s).is_subset(&out.answer.mods),
                    "seed {seed}: degraded MOD({s}) not a superset"
                );
            }
            let calm = lazy.site_answer(s, &Guard::unlimited());
            assert!(calm.degraded.is_none());
            assert_eq!(&calm.answer.mods, scratch.mod_site(s), "seed {seed}: MOD({s})");
        }
    }
}
