//! Fault and budget coverage of the incremental apply path.
//!
//! Three contracts, mirroring the batch pipeline's (`modref-core`'s
//! `guarded` suite) at every new checkpoint site:
//!
//! 1. an armed fault (injected panic) or exhausted budget yields
//!    [`IncrOutcome::Degraded`], never an escaped panic or a hang;
//! 2. the degraded sets are **sound**: the exact sets of the edited
//!    program are subsets of everything the engine reports;
//! 3. the cache is left coherent — the failed apply drops it, and the
//!    next clean apply is again bit-identical to a from-scratch run.

use modref_core::{Analyzer, Budget, EffectSet, FaultPlan, Guard, HybridSet, Interrupt};
use modref_incr::{Edit, IncrDegradeReason, IncrOutcome, IncrementalEngine, IncrementalEngineIn};
use modref_ir::{Actual, Expr, ProcId, Program, VarId};
use modref_progen::{generate, GenConfig};

/// Fault-injection sites every apply path checkpoints (set-local, patch,
/// and full rebuild alike).
const INCR_SITES: [&str; 7] = [
    "incr",
    "incr.local",
    "incr.rmod",
    "incr.plus",
    "incr.gmod",
    "incr.gmod.sweep",
    "incr.final",
];

/// Sites only the structural-patch path reaches — inside the dynamic
/// condensation maintenance itself.
const PATCH_SITES: [&str; 2] = ["incr.dyncond", "incr.gmod.patch"];

fn demo_program(seed: u64) -> Program {
    generate(&GenConfig::tiny(10, 3), seed)
}

/// A `set-local` edit that perturbs the first procedure after main, built
/// against the engine's current program so it always validates.
fn perturbing_edit(program: &Program) -> Edit {
    let p = program.procs().nth(1).expect("generated programs have procs");
    let mods: Vec<VarId> = program
        .visible_set(p)
        .iter()
        .map(VarId::new)
        .filter(|&v| program.var(v).rank() == 0)
        .take(2)
        .collect();
    Edit::SetLocalEffects {
        proc_: p,
        mods,
        uses: vec![],
    }
}

/// A *structural* edit (a new call with by-value actuals) that keeps the
/// variable universe and every id, so it takes the dynamic-condensation
/// patch path when a cache is present.
fn structural_edit(program: &Program) -> Edit {
    let callee = program
        .procs()
        .find(|&p| p != ProcId::MAIN && program.proc_(p).parent() == Some(ProcId::MAIN))
        .expect("generated programs have top-level procedures");
    let args: Vec<Actual> = program
        .proc_(callee)
        .formals()
        .iter()
        .map(|_| Actual::Value(Expr::constant(1)))
        .collect();
    Edit::AddCallSite {
        caller: ProcId::MAIN,
        callee,
        args,
    }
}

/// `exact ⊆ reported` for everything the engine exposes. The exact
/// baseline is always the dense scratch pipeline, so the check also pins
/// hybrid engines to the historical answer.
fn assert_superset<S: EffectSet>(engine: &IncrementalEngineIn<S>, ctx: &str) {
    let program = engine.program();
    let exact = Analyzer::new().analyze(program);
    for p in program.procs() {
        assert!(
            exact.gmod(p).is_subset(&engine.gmod(p).to_dense()),
            "{ctx}: GMOD({p}) lost bits: exact {:?} ⊄ reported {:?}",
            exact.gmod(p),
            engine.gmod(p)
        );
        assert!(
            exact.guse(p).is_subset(&engine.guse(p).to_dense()),
            "{ctx}: GUSE({p}) lost bits"
        );
        assert!(
            exact.rmod(p).is_subset(&engine.rmod(p).to_dense()),
            "{ctx}: RMOD({p}) lost bits"
        );
        assert!(
            exact.imod_plus(p).is_subset(&engine.imod_plus(p).to_dense()),
            "{ctx}: IMOD+({p}) lost bits"
        );
    }
    for s in program.sites() {
        assert!(
            exact.mod_site(s).is_subset(&engine.mod_site(s).to_dense()),
            "{ctx}: MOD({s}) lost bits: exact {:?} ⊄ reported {:?}",
            exact.mod_site(s),
            engine.mod_site(s)
        );
        assert!(
            exact.use_site(s).is_subset(&engine.use_site(s).to_dense()),
            "{ctx}: USE({s}) lost bits"
        );
        assert!(
            exact.dmod_site(s).is_subset(&engine.dmod_site(s).to_dense()),
            "{ctx}: DMOD({s}) lost bits"
        );
    }
}

/// Bit-identity of the engine against scratch (the recovery half of the
/// coherence contract), via the dense image for hybrid engines.
fn assert_bit_identical<S: EffectSet>(engine: &IncrementalEngineIn<S>, ctx: &str) {
    let program = engine.program();
    let exact = Analyzer::new().analyze(program);
    for p in program.procs() {
        assert_eq!(&engine.gmod(p).to_dense(), exact.gmod(p), "{ctx}: GMOD({p})");
        assert_eq!(&engine.guse(p).to_dense(), exact.guse(p), "{ctx}: GUSE({p})");
        assert_eq!(&engine.rmod(p).to_dense(), exact.rmod(p), "{ctx}: RMOD({p})");
    }
    for s in program.sites() {
        assert_eq!(&engine.mod_site(s).to_dense(), exact.mod_site(s), "{ctx}: MOD({s})");
        assert_eq!(&engine.use_site(s).to_dense(), exact.use_site(s), "{ctx}: USE({s})");
    }
}

#[test]
fn injected_panic_at_every_incr_site_degrades_soundly_and_recovers() {
    for (i, &site) in INCR_SITES.iter().enumerate() {
        let seed = 100 + i as u64;
        let mut engine = IncrementalEngine::new(demo_program(seed));
        let edit = perturbing_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        let IncrOutcome::Degraded { reason } = outcome else {
            panic!("site `{site}`: armed fault must degrade the apply");
        };
        assert!(
            matches!(&reason, IncrDegradeReason::Panic(m) if m.contains(site)),
            "site `{site}`: unexpected degrade reason {reason}"
        );
        assert!(engine.stats().degraded, "site `{site}`: stats must say so");
        // Sound over-approximation of the *edited* program.
        assert_superset(&engine, &format!("fault at `{site}`"));
        // Cache coherence: the next clean apply rebuilds and is exact.
        let next = perturbing_edit(engine.program());
        let outcome = engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit");
        assert!(
            matches!(outcome, IncrOutcome::Clean(_)),
            "site `{site}`: clean apply after a fault must succeed"
        );
        assert!(
            engine.stats().full_rebuild,
            "site `{site}`: the post-fault apply must rebuild from scratch"
        );
        assert!(!engine.stats().degraded, "site `{site}`: recovered");
        assert_bit_identical(&engine, &format!("recovery after `{site}`"));
    }
}

#[test]
fn injected_panic_inside_patch_path_degrades_soundly_and_recovers() {
    // `incr.dyncond` / `incr.gmod.patch` only fire on the structural-patch
    // path, which needs a live cache — so fault a *structural* edit right
    // after the initial build.
    for (i, &site) in PATCH_SITES.iter().enumerate() {
        let seed = 300 + i as u64;
        let mut engine = IncrementalEngine::new(demo_program(seed));
        let edit = structural_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        let IncrOutcome::Degraded { reason } = outcome else {
            panic!("site `{site}`: armed fault must degrade the apply");
        };
        assert!(
            matches!(&reason, IncrDegradeReason::Panic(m) if m.contains(site)),
            "site `{site}`: unexpected degrade reason {reason}"
        );
        // Sound over-approximation of the edited (call-added) program.
        assert_superset(&engine, &format!("fault at `{site}`"));
        // Recovery: the next clean apply rebuilds from scratch…
        let next = perturbing_edit(engine.program());
        match engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("site `{site}`: clean apply degraded: {reason}")
            }
        }
        assert!(engine.stats().full_rebuild, "site `{site}`: must rebuild");
        assert_bit_identical(&engine, &format!("recovery after `{site}`"));
        // …and the rebuilt cache is again *patchable*: a further
        // structural edit succeeds incrementally and stays exact.
        let again = structural_edit(engine.program());
        match engine
            .apply_guarded(&again, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("site `{site}`: patch apply degraded: {reason}")
            }
        }
        assert!(
            !engine.stats().full_rebuild,
            "site `{site}`: the rebuilt cache must be reusable"
        );
        assert_bit_identical(&engine, &format!("patch after recovery `{site}`"));
    }
}

#[test]
fn zero_budget_apply_degrades_soundly_and_recovers() {
    let mut engine = IncrementalEngine::new(demo_program(7));
    let edit = perturbing_edit(engine.program());
    let guard = Guard::new(&Budget::unlimited().with_ops(0));
    let outcome = engine
        .apply_guarded(&edit, &guard)
        .expect("the edit itself is valid");
    let IncrOutcome::Degraded { reason } = outcome else {
        panic!("zero budget must degrade the apply");
    };
    assert!(
        matches!(
            reason,
            IncrDegradeReason::Interrupted(Interrupt::BitvecBudget | Interrupt::BoolBudget)
        ),
        "unexpected degrade reason {reason}"
    );
    assert_superset(&engine, "zero-budget");
    let next = perturbing_edit(engine.program());
    match engine
        .apply_guarded(&next, &Guard::unlimited())
        .expect("valid edit")
    {
        IncrOutcome::Clean(_) => {}
        IncrOutcome::Degraded { reason } => panic!("clean apply degraded: {reason}"),
    }
    assert_bit_identical(&engine, "recovery after zero-budget");
}

#[test]
fn rejected_edit_under_guard_is_a_no_op() {
    let mut engine = IncrementalEngine::new(demo_program(11));
    let before: Vec<_> = engine.gmod_all().to_vec();
    let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at("incr"));
    // Removing main is rejected before any recomputation starts, so the
    // armed fault never fires and nothing changes.
    let err = engine
        .apply_guarded(
            &Edit::RemoveProcedure {
                proc_: modref_ir::ProcId::MAIN,
            },
            &guard,
        )
        .expect_err("removing main is rejected");
    assert!(matches!(err, modref_incr::EditError::RemoveMain));
    assert_eq!(engine.gmod_all(), &before[..]);
    assert!(!engine.stats().degraded);
    assert_bit_identical(&engine, "after rejected edit");
}

#[test]
fn faults_keep_firing_across_consecutive_applies() {
    // Two faulted applies in a row: the second must behave exactly like
    // the first (degraded, sound), not trip over the poisoned state.
    let mut engine = IncrementalEngine::new(demo_program(23));
    for round in 0..2 {
        let edit = perturbing_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at("incr.gmod"));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        assert!(
            outcome.is_degraded(),
            "round {round}: armed fault must degrade"
        );
        assert_superset(&engine, &format!("round {round}"));
    }
    let edit = perturbing_edit(engine.program());
    match engine
        .apply_guarded(&edit, &Guard::unlimited())
        .expect("valid edit")
    {
        IncrOutcome::Clean(_) => {}
        IncrOutcome::Degraded { reason } => panic!("clean apply degraded: {reason}"),
    }
    assert_bit_identical(&engine, "recovery after repeated faults");
}

#[test]
fn hybrid_engine_panic_at_every_incr_site_degrades_soundly_and_recovers() {
    // The same fault wall with the hybrid representation selected: the
    // degradation ladder and cache-drop recovery run through generic
    // `EffectSet` code, and both halves are checked against the *dense*
    // exact baseline.
    for (i, &site) in INCR_SITES.iter().enumerate() {
        let seed = 500 + i as u64;
        let mut engine = IncrementalEngineIn::<HybridSet>::new(demo_program(seed));
        let edit = perturbing_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        let IncrOutcome::Degraded { reason } = outcome else {
            panic!("hybrid site `{site}`: armed fault must degrade the apply");
        };
        assert!(
            matches!(&reason, IncrDegradeReason::Panic(m) if m.contains(site)),
            "hybrid site `{site}`: unexpected degrade reason {reason}"
        );
        assert_superset(&engine, &format!("hybrid fault at `{site}`"));
        let next = perturbing_edit(engine.program());
        match engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("hybrid site `{site}`: clean apply degraded: {reason}")
            }
        }
        assert!(
            engine.stats().full_rebuild,
            "hybrid site `{site}`: the post-fault apply must rebuild"
        );
        assert_bit_identical(&engine, &format!("hybrid recovery after `{site}`"));
    }
}

#[test]
fn hybrid_engine_patch_path_faults_degrade_soundly_and_recover() {
    for (i, &site) in PATCH_SITES.iter().enumerate() {
        let seed = 700 + i as u64;
        let mut engine = IncrementalEngineIn::<HybridSet>::new(demo_program(seed));
        let edit = structural_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        assert!(
            outcome.is_degraded(),
            "hybrid site `{site}`: armed fault must degrade the apply"
        );
        assert_superset(&engine, &format!("hybrid patch fault at `{site}`"));
        let next = perturbing_edit(engine.program());
        match engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("hybrid site `{site}`: clean apply degraded: {reason}")
            }
        }
        assert_bit_identical(&engine, &format!("hybrid patch recovery `{site}`"));
    }
}

#[test]
fn hybrid_lazy_query_faults_degrade_soundly_and_recover() {
    // The demand path's `query.*` checkpoints, armed while the hybrid
    // representation backs the memo. Answers are always dense, so the
    // superset and recovery checks compare directly against scratch.
    // The program routes one site query through every demand stage:
    // locals, a binding cycle (RMOD), IMOD⁺, a cyclic GMOD component,
    // and an alias pair at the queried call.
    let mut b = modref_ir::ProgramBuilder::new();
    let g = b.global("g");
    let p = b.proc_("p", &["x", "y"]);
    let q = b.proc_("q", &["z"]);
    b.assign(p, b.formal(p, 0), Expr::constant(1));
    b.assign(q, b.formal(q, 0), Expr::constant(2));
    b.call(p, q, &[b.formal(p, 1)]);
    b.call(q, p, &[b.formal(q, 0), b.formal(q, 0)]);
    let main = b.main();
    b.call(main, p, &[g, g]);
    let program = b.finish().expect("valid");

    let scratch = Analyzer::new().analyze(&program);
    let site = program.sites().next().expect("has a site");
    for at in [
        "query",
        "query.local",
        "query.rmod",
        "query.plus",
        "query.gmod",
        "query.alias",
        "query.final",
    ] {
        let armed = Guard::unlimited().with_faults(FaultPlan::new().panic_at(at));
        let mut lazy = modref_incr::QueryEngineIn::<HybridSet>::new_lazy(program.clone());
        let out = lazy.site_answer(site, &armed);
        let reason = out
            .degraded
            .unwrap_or_else(|| panic!("hybrid panic@`{at}`: site query must trip the fault"));
        assert!(reason.contains(at), "hybrid@`{at}`: reason was {reason}");
        assert!(
            scratch.mod_site(site).is_subset(&out.answer.mods),
            "hybrid@`{at}`: degraded MOD not a superset"
        );
        assert!(
            scratch.use_site(site).is_subset(&out.answer.uses),
            "hybrid@`{at}`: degraded USE not a superset"
        );
        let calm = lazy.site_answer(site, &Guard::unlimited());
        assert!(calm.degraded.is_none(), "hybrid@`{at}`: must recover");
        assert_eq!(&calm.answer.mods, scratch.mod_site(site), "hybrid@`{at}`: exact MOD");
        assert_eq!(&calm.answer.uses, scratch.use_site(site), "hybrid@`{at}`: exact USE");
    }
}

#[test]
fn hybrid_engine_zero_budget_degrades_soundly_and_recovers() {
    let mut engine = IncrementalEngineIn::<HybridSet>::new(demo_program(7));
    let edit = perturbing_edit(engine.program());
    let guard = Guard::new(&Budget::unlimited().with_ops(0));
    let outcome = engine
        .apply_guarded(&edit, &guard)
        .expect("the edit itself is valid");
    assert!(outcome.is_degraded(), "zero budget must degrade the apply");
    assert_superset(&engine, "hybrid zero-budget");
    let next = perturbing_edit(engine.program());
    match engine
        .apply_guarded(&next, &Guard::unlimited())
        .expect("valid edit")
    {
        IncrOutcome::Clean(_) => {}
        IncrOutcome::Degraded { reason } => panic!("clean apply degraded: {reason}"),
    }
    assert_bit_identical(&engine, "hybrid recovery after zero-budget");
}
