//! Fault and budget coverage of the incremental apply path.
//!
//! Three contracts, mirroring the batch pipeline's (`modref-core`'s
//! `guarded` suite) at every new checkpoint site:
//!
//! 1. an armed fault (injected panic) or exhausted budget yields
//!    [`IncrOutcome::Degraded`], never an escaped panic or a hang;
//! 2. the degraded sets are **sound**: the exact sets of the edited
//!    program are subsets of everything the engine reports;
//! 3. the cache is left coherent — the failed apply drops it, and the
//!    next clean apply is again bit-identical to a from-scratch run.

use modref_core::{Analyzer, Budget, FaultPlan, Guard, Interrupt};
use modref_incr::{Edit, IncrDegradeReason, IncrOutcome, IncrementalEngine};
use modref_ir::{Actual, Expr, ProcId, Program, VarId};
use modref_progen::{generate, GenConfig};

/// Fault-injection sites every apply path checkpoints (set-local, patch,
/// and full rebuild alike).
const INCR_SITES: [&str; 7] = [
    "incr",
    "incr.local",
    "incr.rmod",
    "incr.plus",
    "incr.gmod",
    "incr.gmod.sweep",
    "incr.final",
];

/// Sites only the structural-patch path reaches — inside the dynamic
/// condensation maintenance itself.
const PATCH_SITES: [&str; 2] = ["incr.dyncond", "incr.gmod.patch"];

fn demo_program(seed: u64) -> Program {
    generate(&GenConfig::tiny(10, 3), seed)
}

/// A `set-local` edit that perturbs the first procedure after main, built
/// against the engine's current program so it always validates.
fn perturbing_edit(program: &Program) -> Edit {
    let p = program.procs().nth(1).expect("generated programs have procs");
    let mods: Vec<VarId> = program
        .visible_set(p)
        .iter()
        .map(VarId::new)
        .filter(|&v| program.var(v).rank() == 0)
        .take(2)
        .collect();
    Edit::SetLocalEffects {
        proc_: p,
        mods,
        uses: vec![],
    }
}

/// A *structural* edit (a new call with by-value actuals) that keeps the
/// variable universe and every id, so it takes the dynamic-condensation
/// patch path when a cache is present.
fn structural_edit(program: &Program) -> Edit {
    let callee = program
        .procs()
        .find(|&p| p != ProcId::MAIN && program.proc_(p).parent() == Some(ProcId::MAIN))
        .expect("generated programs have top-level procedures");
    let args: Vec<Actual> = program
        .proc_(callee)
        .formals()
        .iter()
        .map(|_| Actual::Value(Expr::constant(1)))
        .collect();
    Edit::AddCallSite {
        caller: ProcId::MAIN,
        callee,
        args,
    }
}

/// `exact ⊆ reported` for everything the engine exposes.
fn assert_superset(engine: &IncrementalEngine, ctx: &str) {
    let program = engine.program();
    let exact = Analyzer::new().analyze(program);
    for p in program.procs() {
        assert!(
            exact.gmod(p).is_subset(engine.gmod(p)),
            "{ctx}: GMOD({p}) lost bits: exact {:?} ⊄ reported {:?}",
            exact.gmod(p),
            engine.gmod(p)
        );
        assert!(
            exact.guse(p).is_subset(engine.guse(p)),
            "{ctx}: GUSE({p}) lost bits"
        );
        assert!(
            exact.rmod(p).is_subset(engine.rmod(p)),
            "{ctx}: RMOD({p}) lost bits"
        );
        assert!(
            exact.imod_plus(p).is_subset(engine.imod_plus(p)),
            "{ctx}: IMOD+({p}) lost bits"
        );
    }
    for s in program.sites() {
        assert!(
            exact.mod_site(s).is_subset(engine.mod_site(s)),
            "{ctx}: MOD({s}) lost bits: exact {:?} ⊄ reported {:?}",
            exact.mod_site(s),
            engine.mod_site(s)
        );
        assert!(
            exact.use_site(s).is_subset(engine.use_site(s)),
            "{ctx}: USE({s}) lost bits"
        );
        assert!(
            exact.dmod_site(s).is_subset(engine.dmod_site(s)),
            "{ctx}: DMOD({s}) lost bits"
        );
    }
}

/// Bit-identity of the engine against scratch (the recovery half of the
/// coherence contract).
fn assert_bit_identical(engine: &IncrementalEngine, ctx: &str) {
    let program = engine.program();
    let exact = Analyzer::new().analyze(program);
    for p in program.procs() {
        assert_eq!(engine.gmod(p), exact.gmod(p), "{ctx}: GMOD({p})");
        assert_eq!(engine.guse(p), exact.guse(p), "{ctx}: GUSE({p})");
        assert_eq!(engine.rmod(p), exact.rmod(p), "{ctx}: RMOD({p})");
    }
    for s in program.sites() {
        assert_eq!(engine.mod_site(s), exact.mod_site(s), "{ctx}: MOD({s})");
        assert_eq!(engine.use_site(s), exact.use_site(s), "{ctx}: USE({s})");
    }
}

#[test]
fn injected_panic_at_every_incr_site_degrades_soundly_and_recovers() {
    for (i, &site) in INCR_SITES.iter().enumerate() {
        let seed = 100 + i as u64;
        let mut engine = IncrementalEngine::new(demo_program(seed));
        let edit = perturbing_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        let IncrOutcome::Degraded { reason } = outcome else {
            panic!("site `{site}`: armed fault must degrade the apply");
        };
        assert!(
            matches!(&reason, IncrDegradeReason::Panic(m) if m.contains(site)),
            "site `{site}`: unexpected degrade reason {reason}"
        );
        assert!(engine.stats().degraded, "site `{site}`: stats must say so");
        // Sound over-approximation of the *edited* program.
        assert_superset(&engine, &format!("fault at `{site}`"));
        // Cache coherence: the next clean apply rebuilds and is exact.
        let next = perturbing_edit(engine.program());
        let outcome = engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit");
        assert!(
            matches!(outcome, IncrOutcome::Clean(_)),
            "site `{site}`: clean apply after a fault must succeed"
        );
        assert!(
            engine.stats().full_rebuild,
            "site `{site}`: the post-fault apply must rebuild from scratch"
        );
        assert!(!engine.stats().degraded, "site `{site}`: recovered");
        assert_bit_identical(&engine, &format!("recovery after `{site}`"));
    }
}

#[test]
fn injected_panic_inside_patch_path_degrades_soundly_and_recovers() {
    // `incr.dyncond` / `incr.gmod.patch` only fire on the structural-patch
    // path, which needs a live cache — so fault a *structural* edit right
    // after the initial build.
    for (i, &site) in PATCH_SITES.iter().enumerate() {
        let seed = 300 + i as u64;
        let mut engine = IncrementalEngine::new(demo_program(seed));
        let edit = structural_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at(site));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        let IncrOutcome::Degraded { reason } = outcome else {
            panic!("site `{site}`: armed fault must degrade the apply");
        };
        assert!(
            matches!(&reason, IncrDegradeReason::Panic(m) if m.contains(site)),
            "site `{site}`: unexpected degrade reason {reason}"
        );
        // Sound over-approximation of the edited (call-added) program.
        assert_superset(&engine, &format!("fault at `{site}`"));
        // Recovery: the next clean apply rebuilds from scratch…
        let next = perturbing_edit(engine.program());
        match engine
            .apply_guarded(&next, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("site `{site}`: clean apply degraded: {reason}")
            }
        }
        assert!(engine.stats().full_rebuild, "site `{site}`: must rebuild");
        assert_bit_identical(&engine, &format!("recovery after `{site}`"));
        // …and the rebuilt cache is again *patchable*: a further
        // structural edit succeeds incrementally and stays exact.
        let again = structural_edit(engine.program());
        match engine
            .apply_guarded(&again, &Guard::unlimited())
            .expect("valid edit")
        {
            IncrOutcome::Clean(_) => {}
            IncrOutcome::Degraded { reason } => {
                panic!("site `{site}`: patch apply degraded: {reason}")
            }
        }
        assert!(
            !engine.stats().full_rebuild,
            "site `{site}`: the rebuilt cache must be reusable"
        );
        assert_bit_identical(&engine, &format!("patch after recovery `{site}`"));
    }
}

#[test]
fn zero_budget_apply_degrades_soundly_and_recovers() {
    let mut engine = IncrementalEngine::new(demo_program(7));
    let edit = perturbing_edit(engine.program());
    let guard = Guard::new(&Budget::unlimited().with_ops(0));
    let outcome = engine
        .apply_guarded(&edit, &guard)
        .expect("the edit itself is valid");
    let IncrOutcome::Degraded { reason } = outcome else {
        panic!("zero budget must degrade the apply");
    };
    assert!(
        matches!(
            reason,
            IncrDegradeReason::Interrupted(Interrupt::BitvecBudget | Interrupt::BoolBudget)
        ),
        "unexpected degrade reason {reason}"
    );
    assert_superset(&engine, "zero-budget");
    let next = perturbing_edit(engine.program());
    match engine
        .apply_guarded(&next, &Guard::unlimited())
        .expect("valid edit")
    {
        IncrOutcome::Clean(_) => {}
        IncrOutcome::Degraded { reason } => panic!("clean apply degraded: {reason}"),
    }
    assert_bit_identical(&engine, "recovery after zero-budget");
}

#[test]
fn rejected_edit_under_guard_is_a_no_op() {
    let mut engine = IncrementalEngine::new(demo_program(11));
    let before: Vec<_> = engine.gmod_all().to_vec();
    let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at("incr"));
    // Removing main is rejected before any recomputation starts, so the
    // armed fault never fires and nothing changes.
    let err = engine
        .apply_guarded(
            &Edit::RemoveProcedure {
                proc_: modref_ir::ProcId::MAIN,
            },
            &guard,
        )
        .expect_err("removing main is rejected");
    assert!(matches!(err, modref_incr::EditError::RemoveMain));
    assert_eq!(engine.gmod_all(), &before[..]);
    assert!(!engine.stats().degraded);
    assert_bit_identical(&engine, "after rejected edit");
}

#[test]
fn faults_keep_firing_across_consecutive_applies() {
    // Two faulted applies in a row: the second must behave exactly like
    // the first (degraded, sound), not trip over the poisoned state.
    let mut engine = IncrementalEngine::new(demo_program(23));
    for round in 0..2 {
        let edit = perturbing_edit(engine.program());
        let guard = Guard::unlimited().with_faults(FaultPlan::new().panic_at("incr.gmod"));
        let outcome = engine
            .apply_guarded(&edit, &guard)
            .expect("the edit itself is valid");
        assert!(
            outcome.is_degraded(),
            "round {round}: armed fault must degrade"
        );
        assert_superset(&engine, &format!("round {round}"));
    }
    let edit = perturbing_edit(engine.program());
    match engine
        .apply_guarded(&edit, &Guard::unlimited())
        .expect("valid edit")
    {
        IncrOutcome::Clean(_) => {}
        IncrOutcome::Degraded { reason } => panic!("clean apply degraded: {reason}"),
    }
    assert_bit_identical(&engine, "recovery after repeated faults");
}
