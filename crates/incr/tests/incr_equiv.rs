//! The differential guarantee of the incremental engine.
//!
//! For generated programs and random edit scripts, after **every** prefix
//! of the script the engine's results must be bit-identical — every
//! intermediate (`IMOD`, `RMOD`/`RUSE`, `IMOD⁺`, `GMOD`/`GUSE`) and every
//! final per-site set — to a from-scratch [`Analyzer`] run on the edited
//! program, both single-threaded and with a worker pool. Rejected edits
//! must leave everything untouched (they are skipped, which also covers
//! the reject path). Replay a failure with
//! `MODREF_SEED=<seed> cargo test -p modref-incr --test incr_equiv`.

use modref_check::prelude::*;
use modref_check::runner::CaseResult;
use modref_core::Analyzer;
use modref_incr::{EditGen, IncrementalEngine, IncrementalExt};
use modref_progen::{generate, GenConfig};

/// Compares everything the engine exposes against a scratch analysis of
/// its current program.
fn check_matches_scratch(
    engine: &IncrementalEngine,
    threads: usize,
    seed: u64,
    step: usize,
) -> CaseResult {
    let program = engine.program();
    let scratch = Analyzer::new().threads(threads).analyze(program);
    for p in program.procs() {
        prop_assert_eq!(
            engine.imod(p),
            scratch.local_effects().imod(p),
            "IMOD({}) diverged at step {} / {} threads (seed {})",
            p,
            step,
            threads,
            seed
        );
        prop_assert_eq!(
            engine.iuse(p),
            scratch.local_effects().iuse(p),
            "IUSE({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
        prop_assert_eq!(
            engine.rmod(p),
            scratch.rmod(p),
            "RMOD({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
        prop_assert_eq!(
            engine.ruse(p),
            scratch.ruse(p),
            "RUSE({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
        prop_assert_eq!(
            engine.imod_plus(p),
            scratch.imod_plus(p),
            "IMOD+({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
        prop_assert_eq!(
            engine.iuse_plus(p),
            scratch.iuse_plus(p),
            "IUSE+({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
        prop_assert_eq!(
            engine.gmod(p),
            scratch.gmod(p),
            "GMOD({}) diverged at step {} / {} threads (seed {})",
            p,
            step,
            threads,
            seed
        );
        prop_assert_eq!(
            engine.guse(p),
            scratch.guse(p),
            "GUSE({}) diverged at step {} (seed {})",
            p,
            step,
            seed
        );
    }
    for s in program.sites() {
        prop_assert_eq!(
            engine.dmod_site(s),
            scratch.dmod_site(s),
            "DMOD({}) diverged at step {} (seed {})",
            s,
            step,
            seed
        );
        prop_assert_eq!(
            engine.duse_site(s),
            scratch.duse_site(s),
            "DUSE({}) diverged at step {} (seed {})",
            s,
            step,
            seed
        );
        prop_assert_eq!(
            engine.mod_site(s),
            scratch.mod_site(s),
            "MOD({}) diverged at step {} / {} threads (seed {})",
            s,
            step,
            threads,
            seed
        );
        prop_assert_eq!(
            engine.use_site(s),
            scratch.use_site(s),
            "USE({}) diverged at step {} (seed {})",
            s,
            step,
            seed
        );
    }
    CaseResult::Pass
}

/// Runs one random edit script against one engine, checking bit-identity
/// after the initial build and after every applied edit.
fn run_script(
    program: &modref_ir::Program,
    threads: usize,
    seed: u64,
    steps: usize,
) -> CaseResult {
    run_script_with(program, threads, seed, steps, false)
}

/// As [`run_script`], with `structural` selecting the churn-heavy edit
/// diet that hammers the dynamic-condensation patch path.
fn run_script_with(
    program: &modref_ir::Program,
    threads: usize,
    seed: u64,
    steps: usize,
    structural: bool,
) -> CaseResult {
    let mut engine = Analyzer::new().threads(threads).incremental(program.clone());
    match check_matches_scratch(&engine, threads, seed, 0) {
        CaseResult::Pass => {}
        other => return other,
    }
    // A distinct stream from the program generator's, but derived from
    // the same replayable seed.
    let mut gen = EditGen::new(seed ^ 0xed17_5c21_97a5_u64);
    for step in 1..=steps {
        let edit = if structural {
            gen.next_structural_edit(engine.program())
        } else {
            gen.next_edit(engine.program())
        };
        let before_gmod: Vec<_> = engine.gmod_all().to_vec();
        match engine.apply(&edit) {
            Ok(_) => {}
            Err(_) => {
                // A rejected edit must be a perfect no-op.
                prop_assert_eq!(
                    engine.gmod_all(),
                    &before_gmod[..],
                    "rejected edit mutated results at step {} (seed {})",
                    step,
                    seed
                );
                continue;
            }
        }
        match check_matches_scratch(&engine, threads, seed, step) {
            CaseResult::Pass => {}
            other => return other,
        }
    }
    CaseResult::Pass
}

property! {
    #![cases = 32]

    fn incremental_is_bit_identical_to_scratch_flat(
        seed in any_u64(),
        n in ints(2..14usize),
        steps in ints(1..33usize),
    ) {
        let program = generate(&GenConfig::fortran_like(n), seed);
        for &threads in &[1usize, 4] {
            match run_script(&program, threads, seed, steps) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }

    fn incremental_is_bit_identical_to_scratch_nested(
        seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..5u32),
        steps in ints(1..25usize),
    ) {
        let program = generate(&GenConfig::tiny(n, depth), seed);
        for &threads in &[1usize, 4] {
            match run_script(&program, threads, seed, steps) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }

    fn incremental_is_bit_identical_to_scratch_binding_heavy(
        seed in any_u64(),
        n in ints(2..10usize),
        params in ints(1..4usize),
        steps in ints(1..17usize),
    ) {
        let program = generate(&GenConfig::binding_heavy(n, params), seed);
        match run_script(&program, 1, seed, steps) {
            CaseResult::Pass => {}
            other => return other,
        }
    }

    fn incremental_is_bit_identical_to_scratch_pascal(
        seed in any_u64(),
        n in ints(4..24usize),
        depth in ints(2..5u32),
        steps in ints(1..21usize),
    ) {
        let program = generate(&GenConfig::pascal_like(n, depth), seed);
        for &threads in &[1usize, 4] {
            match run_script(&program, threads, seed, steps) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }

    /// The churn-heavy diet: mostly call/procedure edits, so nearly every
    /// apply exercises the dynamic-condensation patch path (merges,
    /// splits, window reorders) rather than the set-local fast path.
    fn incremental_is_bit_identical_under_structural_churn(
        seed in any_u64(),
        n in ints(2..12usize),
        depth in ints(1..4u32),
        steps in ints(4..29usize),
    ) {
        let program = generate(&GenConfig::tiny(n, depth), seed);
        for &threads in &[1usize, 4] {
            match run_script_with(&program, threads, seed, steps, true) {
                CaseResult::Pass => {}
                other => return other,
            }
        }
    }
}
