//! The incremental summary engine.
//!
//! [`IncrementalEngine`] holds a program, the full set of analysis
//! results for it, and a cache of per-phase intermediates. Applying a
//! typed [`Edit`] recomputes *exactly the invalidated pieces* — dirty
//! components of the binding multi-graph's condensation for `RMOD`/`RUSE`
//! (Figure 1), dirty components of each level-scheduled `GMOD` problem
//! (signature-keyed per-component fixpoints), and the call sites whose
//! inputs moved — while everything else is copied from the cache. The
//! results after every edit are **bit-identical** to a from-scratch
//! [`Analyzer::analyze`] run on the edited program; the differential test
//! rig (`tests/incr_equiv.rs`) enforces this for random edit scripts at
//! several thread counts.
//!
//! # Why reuse is sound
//!
//! Every set the pipeline computes is the least fixed point of a system
//! whose per-component subproblems are *closed* once their successors
//! (callees, bound formals) are final. A cached component value is reused
//! only when
//!
//! 1. its local structure is unchanged (same members, same outgoing
//!    edges — checked by an explicit signature),
//! 2. its inputs are unchanged (seeds and the `LOCAL` sets its edges
//!    filter through), and
//! 3. no successor's value changed ([`DirtySweep`] propagates value
//!    changes to predecessors, which are processed later in the
//!    successors-first order).
//!
//! Under those three conditions the component solves the *same* closed
//! subproblem as the cached run did, and a least fixed point is unique —
//! so the cached rows equal what [`solve_component`] would recompute,
//! bit for bit. Recomputed components use the *same kernel* the
//! from-scratch solver uses, so no second implementation has to agree
//! with the first. See `docs/INCREMENTAL.md` for the full argument.
//!
//! # Failure containment
//!
//! [`IncrementalEngine::apply_guarded`] runs under a cooperative
//! [`Guard`]. The cache is *taken out* of the engine before any
//! recomputation starts; it is put back only when every phase has
//! committed. An interrupt or contained panic therefore leaves the
//! engine with **no** cache and conservative (sound, over-approximate)
//! result sets; the next successful apply rebuilds from scratch and is
//! again bit-identical to a clean run.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use modref_binding::BindingGraph;
use modref_bitset::{BitSet, OpCounter};
use modref_core::{solve_component, Analyzer};
use modref_graph::{tarjan, Condensation, DiGraph, DirtySweep, SccId, Sccs};
use modref_guard::{Guard, Interrupt};
use modref_ir::{
    walk_stmts, Actual, CallGraph, CallSiteId, Edit, EditDelta, EditError, ProcId, Program, VarId,
};
use modref_par::ThreadPool;
use modref_trace::Trace;

use modref_core::AliasPairs;

/// All result sets, in the same shape the batch [`Summary`] reports them.
///
/// [`Summary`]: modref_core::Summary
#[derive(Debug, Default, Clone)]
struct Results {
    /// §3.3-extended `IMOD`/`IUSE` per procedure.
    imod: Vec<BitSet>,
    iuse: Vec<BitSet>,
    /// Figure 1 `RMOD`/`RUSE` per procedure (only own-formal bits).
    rmod: Vec<BitSet>,
    ruse: Vec<BitSet>,
    /// Equation (5) `IMOD⁺`/`IUSE⁺`.
    plus_mod: Vec<BitSet>,
    plus_use: Vec<BitSet>,
    /// Equation (4) `GMOD`/`GUSE`.
    gmod: Vec<BitSet>,
    guse: Vec<BitSet>,
    /// Per-site projections and final alias-factored sets.
    dmod: Vec<BitSet>,
    duse: Vec<BitSet>,
    mods: Vec<BitSet>,
    uses: Vec<BitSet>,
}

/// Cached intermediates that outlive one apply. Everything here is an
/// *optimisation*: the engine is correct with any subset missing (it
/// recomputes), and the whole cache is dropped on a failed apply.
struct Cache {
    /// Flat (un-extended) per-procedure `LMOD`/`LUSE` unions.
    flat_mod: Vec<BitSet>,
    flat_use: Vec<BitSet>,
    /// `LOCAL(p)` per procedure.
    local_sets: Vec<BitSet>,
    /// Figure 1 structures; valid only while the binding structure and
    /// variable universe are unchanged (`set-local` edits).
    beta: Option<BetaCache>,
    /// Signature-keyed component fixpoints per `GMOD` problem.
    problems_mod: Vec<ProblemCache>,
    problems_use: Vec<ProblemCache>,
    /// Banning alias pairs; body-independent, reusable across `set-local`.
    aliases: AliasPairs,
}

/// The binding multi-graph, its condensation, and the per-component
/// representer booleans of the last Figure 1 sweep (both problem sides).
struct BetaCache {
    beta: BindingGraph,
    sccs: Sccs,
    cond: DiGraph,
    seed_mod: Vec<bool>,
    seed_use: Vec<bool>,
    rep_mod: Vec<bool>,
    rep_use: Vec<bool>,
}

/// One `GMOD` problem's component cache: sorted members → (sorted
/// outgoing-edge signature, fixpoint rows in sorted-member order).
#[derive(Default)]
struct ProblemCache {
    comps: HashMap<Vec<usize>, (Vec<(usize, usize)>, Vec<BitSet>)>,
}

/// Reused-vs-recomputed counters for one apply.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IncrStats {
    /// `true` when no cache was available (first build, post-failure
    /// rebuild, or [`IncrementalEngine::refresh`]).
    pub full_rebuild: bool,
    /// `true` while the engine holds degraded (conservative) results.
    pub degraded: bool,
    /// Procedures whose flat `LMOD`/`LUSE` were rescanned.
    pub procs_flat_recomputed: usize,
    /// Binding-condensation components kept / redone (both sides summed).
    pub rmod_components_reused: usize,
    /// See [`IncrStats::rmod_components_reused`].
    pub rmod_components_recomputed: usize,
    /// `GMOD` condensation components kept / redone (all problems and
    /// both sides summed).
    pub gmod_components_reused: usize,
    /// See [`IncrStats::gmod_components_reused`].
    pub gmod_components_recomputed: usize,
    /// Call sites whose projection + factoring were kept / redone.
    pub sites_reused: usize,
    /// See [`IncrStats::sites_reused`].
    pub sites_recomputed: usize,
}

/// What one successful apply changed, in terms of observable results.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IncrDelta {
    /// Procedures (new ids) whose `GMOD` or `GUSE` set differs from the
    /// pre-edit value (removed procedures are not listed; new ones are).
    pub changed_procs: Vec<ProcId>,
    /// Call sites (new ids) whose final `MOD` or `USE` set differs.
    pub changed_sites: Vec<CallSiteId>,
}

/// Why a guarded apply degraded.
#[derive(Debug, Clone)]
pub enum IncrDegradeReason {
    /// The guard tripped: deadline, a budget, or cancellation.
    Interrupted(Interrupt),
    /// A phase panicked; the engine contained it.
    Panic(String),
}

impl std::fmt::Display for IncrDegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrDegradeReason::Interrupted(i) => write!(f, "{i}"),
            IncrDegradeReason::Panic(m) => write!(f, "panic during incremental apply: {m}"),
        }
    }
}

/// The result of [`IncrementalEngine::apply_guarded`].
#[derive(Debug)]
pub enum IncrOutcome {
    /// The apply completed; results are bit-identical to a from-scratch
    /// run on the edited program.
    Clean(IncrDelta),
    /// The apply was cut short. The engine now reports conservative
    /// (sound, over-approximate) sets and has dropped its cache; the next
    /// successful apply rebuilds from scratch.
    Degraded {
        /// What stopped the apply.
        reason: IncrDegradeReason,
    },
}

impl IncrOutcome {
    /// `true` for [`IncrOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, IncrOutcome::Degraded { .. })
    }
}

/// Obtains an [`IncrementalEngine`] from an [`Analyzer`] configuration,
/// carrying over its thread count and trace handle.
pub trait IncrementalExt {
    /// Builds the engine (running the initial full analysis) with this
    /// analyzer's threads and trace.
    fn incremental(&self, program: Program) -> IncrementalEngine;
}

impl IncrementalExt for Analyzer {
    fn incremental(&self, program: Program) -> IncrementalEngine {
        let mut engine = IncrementalEngine::with_config(
            program,
            self.configured_threads(),
            self.trace_handle().clone(),
        );
        engine.rebuild();
        engine
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The engine. See the module docs; `tests/` hold the differential and
/// fault suites.
///
/// # Examples
///
/// ```
/// use modref_incr::{Edit, IncrementalEngine};
/// use modref_ir::{Expr, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let h = b.global("h");
/// let p = b.proc_("p", &[]);
/// b.assign(p, g, Expr::constant(1));
/// let main = b.main();
/// let s = b.call(main, p, &[]);
/// let mut engine = IncrementalEngine::new(b.finish()?);
/// assert!(engine.mod_site(s).contains(g.index()));
///
/// // Edit p to write h instead of g; only the affected pieces recompute.
/// engine.apply(&Edit::SetLocalEffects { proc_: p, mods: vec![h], uses: vec![] })?;
/// assert!(!engine.mod_site(s).contains(g.index()));
/// assert!(engine.mod_site(s).contains(h.index()));
/// # Ok(())
/// # }
/// ```
pub struct IncrementalEngine {
    program: Program,
    threads: Option<usize>,
    trace: Trace,
    cache: Option<Cache>,
    res: Results,
    stats: IncrStats,
}

impl IncrementalEngine {
    /// Builds the engine and runs the initial full analysis.
    pub fn new(program: Program) -> Self {
        let mut engine = Self::with_config(program, None, Trace::disabled());
        engine.rebuild();
        engine
    }

    fn with_config(program: Program, threads: Option<usize>, trace: Trace) -> Self {
        IncrementalEngine {
            program,
            threads,
            trace,
            cache: None,
            res: Results::default(),
            stats: IncrStats::default(),
        }
    }

    /// Sets the worker-thread count for the pooled stages (dirty `GMOD`
    /// component fan-out). Semantics follow [`Analyzer::threads`]: `0`
    /// means one thread per core, unset defers to `MODREF_THREADS`.
    /// Results are bit-identical at any thread count.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    /// Records applies into `trace`: one `incr.apply` span per apply,
    /// annotated with the edit kind and the reused-vs-recomputed
    /// counters. Tracing only observes.
    pub fn with_trace(&mut self, trace: Trace) -> &mut Self {
        self.trace = trace;
        self
    }

    /// The current (post-edit) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The counters of the most recent apply (or rebuild).
    pub fn stats(&self) -> &IncrStats {
        &self.stats
    }

    /// Drops the cache and recomputes everything from scratch.
    pub fn refresh(&mut self) {
        self.cache = None;
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.cache = None;
        match self.recompute(None, &Guard::unlimited()) {
            Ok(_) => {}
            Err(i) => unreachable!("an unlimited guard cannot interrupt the engine: {i}"),
        }
    }

    /// Applies `edit` with nothing able to interrupt the recomputation.
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected; the program,
    /// results, and cache are untouched in that case.
    ///
    /// # Panics
    ///
    /// Re-raises a solver panic (which [`IncrementalEngine::apply_guarded`]
    /// would contain).
    pub fn apply(&mut self, edit: &Edit) -> Result<IncrDelta, EditError> {
        match self.apply_guarded(edit, &Guard::unlimited())? {
            IncrOutcome::Clean(delta) => Ok(delta),
            IncrOutcome::Degraded { reason } => panic!("incremental apply failed: {reason}"),
        }
    }

    /// Applies `edit` under a cooperative [`Guard`] and always returns.
    ///
    /// The edit is validated first; a rejected edit changes nothing. Once
    /// the edit commits, the recomputation runs under the guard with
    /// checkpoints at `incr`, `incr.local`, `incr.rmod`, `incr.plus`,
    /// `incr.gmod`, and `incr.final` (fault-injection sites for
    /// [`modref_guard::FaultPlan`]). On an interrupt or contained panic
    /// the engine degrades: conservative result sets, cache dropped.
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected (program,
    /// results, and cache untouched).
    pub fn apply_guarded(
        &mut self,
        edit: &Edit,
        guard: &Guard,
    ) -> Result<IncrOutcome, EditError> {
        let (next, delta) = self.program.apply_edit(edit)?;
        self.program = next;
        match catch_unwind(AssertUnwindSafe(|| self.recompute(Some(&delta), guard))) {
            Ok(Ok(d)) => Ok(IncrOutcome::Clean(d)),
            Ok(Err(interrupt)) => {
                self.degrade();
                Ok(IncrOutcome::Degraded {
                    reason: IncrDegradeReason::Interrupted(interrupt),
                })
            }
            Err(payload) => {
                self.degrade();
                Ok(IncrOutcome::Degraded {
                    reason: IncrDegradeReason::Panic(panic_message(payload.as_ref())),
                })
            }
        }
    }

    /// Conservative results for the current program: every set is widened
    /// to the same fallbacks the batch pipeline's degradation ladder uses
    /// (all formals for `RMOD`, visible sets elsewhere), so everything
    /// observable at run time stays inside the reported sets.
    fn degrade(&mut self) {
        self.cache = None;
        let program = &self.program;
        let visible = program.visible_sets();
        let nv = program.num_vars();
        let mut rmod = vec![BitSet::new(nv); program.num_procs()];
        for p in program.procs() {
            for &f in program.proc_(p).formals() {
                rmod[p.index()].insert(f.index());
            }
        }
        let per_site: Vec<BitSet> = program
            .sites()
            .map(|s| visible[program.site(s).caller().index()].clone())
            .collect();
        self.res = Results {
            imod: visible.clone(),
            iuse: visible.clone(),
            rmod: rmod.clone(),
            ruse: rmod,
            plus_mod: visible.clone(),
            plus_use: visible.clone(),
            gmod: visible.clone(),
            guse: visible,
            dmod: per_site.clone(),
            duse: per_site.clone(),
            mods: per_site.clone(),
            uses: per_site,
        };
        self.stats = IncrStats {
            degraded: true,
            ..IncrStats::default()
        };
    }

    /// The one recomputation path. `delta` is `None` for a full build.
    /// The cache and prior results are taken out *first*: any interrupt
    /// or panic after this point leaves the engine cacheless, so a failed
    /// apply can never leave stale intermediates behind.
    fn recompute(
        &mut self,
        delta: Option<&EditDelta>,
        guard: &Guard,
    ) -> Result<IncrDelta, Interrupt> {
        let cache = self.cache.take();
        let prior_res = std::mem::take(&mut self.res);
        let mut stats = IncrStats::default();
        let mut span = self.trace.span("incr.apply");
        span.note("edit", delta.map_or("rebuild", |d| d.kind));
        guard.checkpoint("incr")?;

        let program = &self.program;
        let np = program.num_procs();
        let nv = program.num_vars();
        let ns = program.num_sites();
        let pool = ThreadPool::with_threads(self.threads);

        // Translate everything cached into the edited program's id spaces.
        let remapped = match (cache, delta) {
            (Some(c), Some(d)) => Some(remap_prior(c, prior_res, d, program)),
            _ => None,
        };
        stats.full_rebuild = remapped.is_none();
        let set_local_only = delta.is_some_and(|d| {
            !d.structure_changed && !d.universe_changed
        });

        let mut touched = vec![remapped.is_none(); np];
        if let Some(d) = delta {
            for &p in &d.touched_procs {
                touched[p.index()] = true;
            }
        }
        let is_new_proc: Vec<bool> = match &remapped {
            Some(r) => r.is_new_proc.clone(),
            None => vec![true; np],
        };
        let is_new_site: Vec<bool> = match &remapped {
            Some(r) => r.is_new_site.clone(),
            None => vec![true; ns],
        };

        // ---- Phase: local sets (flat LMOD/LUSE + the §3.3 extension) ----
        guard.checkpoint("incr.local")?;
        let local_sets = program.local_sets();
        let locals_dirty: Vec<bool> = match &remapped {
            Some(r) => (0..np)
                .map(|p| is_new_proc[p] || local_sets[p] != r.local_sets[p])
                .collect(),
            None => vec![true; np],
        };
        let (mut flat_mod, mut flat_use) = match &remapped {
            Some(r) => (r.flat_mod.clone(), r.flat_use.clone()),
            None => (
                vec![BitSet::new(nv); np],
                vec![BitSet::new(nv); np],
            ),
        };
        for p in program.procs() {
            if !touched[p.index()] {
                continue;
            }
            let (m, u) = flat_effects_of(program, p);
            flat_mod[p.index()] = m;
            flat_use[p.index()] = u;
            stats.procs_flat_recomputed += 1;
        }
        guard.charge(0, np as u64);
        let (imod, iuse) = extend_flat(program, &flat_mod, &flat_use, &local_sets);

        // ---- Phase: RMOD/RUSE over the binding condensation ----
        guard.checkpoint("incr.rmod")?;
        let beta_cache = remapped
            .as_ref()
            .filter(|_| set_local_only)
            .and_then(|r| r.beta.as_ref());
        let (beta, sccs, cond, cached_reps) = match beta_cache {
            Some(bc) => (None, None, None, Some(bc)),
            None => {
                let beta = BindingGraph::build(program);
                let sccs = tarjan(beta.graph());
                let cond = Condensation::build(beta.graph(), &sccs).graph().clone();
                (Some(beta), Some(sccs), Some(cond), None)
            }
        };
        // Borrow the structures from whichever side owns them.
        let (beta_ref, sccs_ref, cond_ref) = match cached_reps {
            Some(bc) => (&bc.beta, &bc.sccs, &bc.cond),
            None => (
                beta.as_ref().expect("fresh beta"),
                sccs.as_ref().expect("fresh sccs"),
                cond.as_ref().expect("fresh cond"),
            ),
        };
        let mut rmod_reused = 0usize;
        let mut rmod_recomputed = 0usize;
        let (seed_mod, rep_mod, rmod) = rmod_sweep(
            program,
            beta_ref,
            sccs_ref,
            cond_ref,
            &imod,
            cached_reps.map(|bc| (&bc.seed_mod, &bc.rep_mod)),
            &mut rmod_reused,
            &mut rmod_recomputed,
            guard,
        )?;
        let (seed_use, rep_use, ruse) = rmod_sweep(
            program,
            beta_ref,
            sccs_ref,
            cond_ref,
            &iuse,
            cached_reps.map(|bc| (&bc.seed_use, &bc.rep_use)),
            &mut rmod_reused,
            &mut rmod_recomputed,
            guard,
        )?;
        stats.rmod_components_reused = rmod_reused;
        stats.rmod_components_recomputed = rmod_recomputed;
        let new_beta = BetaCache {
            beta: match beta {
                Some(b) => b,
                None => cached_reps.map(|bc| bc.beta.clone()).expect("cached beta"),
            },
            sccs: match sccs {
                Some(s) => s,
                None => cached_reps.map(|bc| bc.sccs.clone()).expect("cached sccs"),
            },
            cond: match cond {
                Some(c) => c,
                None => cached_reps.map(|bc| bc.cond.clone()).expect("cached cond"),
            },
            seed_mod,
            seed_use,
            rep_mod,
            rep_use,
        };

        // ---- Phase: IMOD⁺/IUSE⁺ (equation 5; one cheap boolean pass) ----
        guard.checkpoint("incr.plus")?;
        let plus_mod = compute_plus(program, &imod, &rmod, guard)?;
        let plus_use = compute_plus(program, &iuse, &ruse, guard)?;
        let plus_mod_dirty: Vec<bool> = diff_procs(&plus_mod, remapped.as_ref().map(|r| &r.res.plus_mod), &is_new_proc);
        let plus_use_dirty: Vec<bool> = diff_procs(&plus_use, remapped.as_ref().map(|r| &r.res.plus_use), &is_new_proc);

        // ---- Phase: GMOD/GUSE (cached level-scheduled fixpoints) ----
        guard.checkpoint("incr.gmod")?;
        let call_graph = CallGraph::build(program);
        let dp = program.max_level() as usize;
        let nproblems = dp.max(1);
        let empty_problems: Vec<ProblemCache> = Vec::new();
        let (old_problems_mod, old_problems_use) = match &remapped {
            Some(r) => (&r.problems_mod, &r.problems_use),
            None => (&empty_problems, &empty_problems),
        };
        let mut gmod_reused = 0usize;
        let mut gmod_recomputed = 0usize;
        let (gmod, problems_mod) = gmod_side(
            program,
            call_graph.graph(),
            dp,
            nproblems,
            &plus_mod,
            &local_sets,
            &plus_mod_dirty,
            &locals_dirty,
            old_problems_mod,
            &pool,
            guard,
            &mut gmod_reused,
            &mut gmod_recomputed,
        )?;
        let (guse, problems_use) = gmod_side(
            program,
            call_graph.graph(),
            dp,
            nproblems,
            &plus_use,
            &local_sets,
            &plus_use_dirty,
            &locals_dirty,
            old_problems_use,
            &pool,
            guard,
            &mut gmod_reused,
            &mut gmod_recomputed,
        )?;
        stats.gmod_components_reused = gmod_reused;
        stats.gmod_components_recomputed = gmod_recomputed;
        let gmod_dirty = diff_procs(&gmod, remapped.as_ref().map(|r| &r.res.gmod), &is_new_proc);
        let guse_dirty = diff_procs(&guse, remapped.as_ref().map(|r| &r.res.guse), &is_new_proc);

        // ---- Phase: aliases, per-site projection, factoring ----
        guard.checkpoint("incr.final")?;
        let (aliases, aliases_fresh) = match &remapped {
            // Alias pairs depend only on call sites and visibility, both
            // unchanged under a set-local edit.
            Some(r) if set_local_only => (r.aliases.clone(), false),
            _ => (AliasPairs::compute_guarded(program, guard)?, true),
        };
        let mut old_sites = remapped.map(|r| (r.res.dmod, r.res.duse, r.res.mods, r.res.uses));
        let no_old = old_sites.is_none();
        let mut dmod = Vec::with_capacity(ns);
        let mut duse = Vec::with_capacity(ns);
        let mut mods = Vec::with_capacity(ns);
        let mut uses = Vec::with_capacity(ns);
        let mut changed_sites = Vec::new();
        for s in program.sites() {
            let site = program.site(s);
            let callee = site.callee().index();
            let caller = site.caller();
            let i = s.index();
            let stale = no_old || is_new_site[i] || aliases_fresh || locals_dirty[callee];
            let redo_mod = stale || gmod_dirty[callee];
            let redo_use = stale || guse_dirty[callee];
            // Each side compares its fresh value against the (remapped)
            // old one *before* the other side may consume its slots, so
            // a one-sided redo still reports change correctly.
            let (dm, m, mod_changed) = if redo_mod {
                let dm = modref_core::dmod::project_site(program, s, &gmod[callee]);
                let m = aliases.extend_with_aliases(caller, &dm);
                let changed =
                    is_new_site[i] || old_sites.as_ref().is_none_or(|o| m != o.2[i]);
                (dm, m, changed)
            } else {
                let o = old_sites.as_mut().expect("a reused site has old results");
                (std::mem::take(&mut o.0[i]), std::mem::take(&mut o.2[i]), false)
            };
            let (du, u, use_changed) = if redo_use {
                let du = modref_core::dmod::project_site(program, s, &guse[callee]);
                let u = aliases.extend_with_aliases(caller, &du);
                let changed =
                    is_new_site[i] || old_sites.as_ref().is_none_or(|o| u != o.3[i]);
                (du, u, changed)
            } else {
                let o = old_sites.as_mut().expect("a reused site has old results");
                (std::mem::take(&mut o.1[i]), std::mem::take(&mut o.3[i]), false)
            };
            if redo_mod || redo_use {
                stats.sites_recomputed += 1;
            } else {
                stats.sites_reused += 1;
            }
            if mod_changed || use_changed {
                changed_sites.push(s);
            }
            dmod.push(dm);
            duse.push(du);
            mods.push(m);
            uses.push(u);
        }
        guard.charge(ns as u64, 0);
        guard.check()?;

        // ---- Commit ----
        let changed_procs: Vec<ProcId> = program
            .procs()
            .filter(|p| gmod_dirty[p.index()] || guse_dirty[p.index()])
            .collect();
        self.res = Results {
            imod,
            iuse,
            rmod,
            ruse,
            plus_mod,
            plus_use,
            gmod,
            guse,
            dmod,
            duse,
            mods,
            uses,
        };
        self.cache = Some(Cache {
            flat_mod,
            flat_use,
            local_sets,
            beta: Some(new_beta),
            problems_mod,
            problems_use,
            aliases,
        });
        span.arg("full_rebuild", u64::from(stats.full_rebuild));
        span.arg("flat_recomputed", stats.procs_flat_recomputed as u64);
        span.arg("rmod_reused", stats.rmod_components_reused as u64);
        span.arg("rmod_recomputed", stats.rmod_components_recomputed as u64);
        span.arg("gmod_reused", stats.gmod_components_reused as u64);
        span.arg("gmod_recomputed", stats.gmod_components_recomputed as u64);
        span.arg("sites_reused", stats.sites_reused as u64);
        span.arg("sites_recomputed", stats.sites_recomputed as u64);
        self.stats = stats;
        Ok(IncrDelta {
            changed_procs,
            changed_sites,
        })
    }

    // ---- Accessors (mirroring `Summary`) ----

    /// `IMOD(p)` with the §3.3 nesting extension.
    pub fn imod(&self, p: ProcId) -> &BitSet {
        &self.res.imod[p.index()]
    }

    /// `IUSE(p)` with the nesting extension.
    pub fn iuse(&self, p: ProcId) -> &BitSet {
        &self.res.iuse[p.index()]
    }

    /// `RMOD(p)`: formals of `p` an invocation may modify.
    pub fn rmod(&self, p: ProcId) -> &BitSet {
        &self.res.rmod[p.index()]
    }

    /// `RUSE(p)`.
    pub fn ruse(&self, p: ProcId) -> &BitSet {
        &self.res.ruse[p.index()]
    }

    /// `IMOD⁺(p)` (equation 5).
    pub fn imod_plus(&self, p: ProcId) -> &BitSet {
        &self.res.plus_mod[p.index()]
    }

    /// `IUSE⁺(p)`.
    pub fn iuse_plus(&self, p: ProcId) -> &BitSet {
        &self.res.plus_use[p.index()]
    }

    /// `GMOD(p)`.
    pub fn gmod(&self, p: ProcId) -> &BitSet {
        &self.res.gmod[p.index()]
    }

    /// `GUSE(p)`.
    pub fn guse(&self, p: ProcId) -> &BitSet {
        &self.res.guse[p.index()]
    }

    /// All `GMOD` sets, indexed by procedure.
    pub fn gmod_all(&self) -> &[BitSet] {
        &self.res.gmod
    }

    /// All `GUSE` sets, indexed by procedure.
    pub fn guse_all(&self) -> &[BitSet] {
        &self.res.guse
    }

    /// `DMOD` restricted to call site `s` (before aliases).
    pub fn dmod_site(&self, s: CallSiteId) -> &BitSet {
        &self.res.dmod[s.index()]
    }

    /// `DUSE` restricted to call site `s`.
    pub fn duse_site(&self, s: CallSiteId) -> &BitSet {
        &self.res.duse[s.index()]
    }

    /// `MOD(s)`: the final answer for call site `s`.
    pub fn mod_site(&self, s: CallSiteId) -> &BitSet {
        &self.res.mods[s.index()]
    }

    /// `USE(s)`.
    pub fn use_site(&self, s: CallSiteId) -> &BitSet {
        &self.res.uses[s.index()]
    }

    /// All per-site `MOD` sets.
    pub fn mod_all(&self) -> &[BitSet] {
        &self.res.mods
    }

    /// All per-site `USE` sets.
    pub fn use_all(&self) -> &[BitSet] {
        &self.res.uses
    }
}

/// Flat (call-free) `LMOD`/`LUSE` of one procedure — the same statement
/// walk [`modref_ir::LocalEffects::compute`] performs per procedure.
fn flat_effects_of(program: &Program, p: ProcId) -> (BitSet, BitSet) {
    let nv = program.num_vars();
    let mut m = BitSet::new(nv);
    let mut u = BitSet::new(nv);
    walk_stmts(program.proc_(p).body(), &mut |s| {
        m.union_with(&modref_ir::lmod_of_stmt(program, s));
        u.union_with(&modref_ir::luse_of_stmt(program, s));
    });
    (m, u)
}

/// The §3.3 nesting extension, children before parents — a verbatim
/// replica of the batch sweep so extended sets stay bit-identical.
fn extend_flat(
    program: &Program,
    flat_mod: &[BitSet],
    flat_use: &[BitSet],
    local_sets: &[BitSet],
) -> (Vec<BitSet>, Vec<BitSet>) {
    let mut order: Vec<ProcId> = program.procs().collect();
    order.sort_by_key(|&p| std::cmp::Reverse(program.proc_(p).level()));
    let mut imod = flat_mod.to_vec();
    let mut iuse = flat_use.to_vec();
    for &p in &order {
        let children = program.proc_(p).children().to_vec();
        for q in children {
            let (child_m, child_u) = (imod[q.index()].clone(), iuse[q.index()].clone());
            imod[p.index()].union_with_difference(&child_m, &local_sets[q.index()]);
            iuse[p.index()].union_with_difference(&child_u, &local_sets[q.index()]);
        }
    }
    (imod, iuse)
}

/// One side of the Figure 1 sweep with dirty-component reuse. With no
/// cache (`cached: None`) every component is recomputed; with a cache,
/// only components whose seed changed — or whose successors' representer
/// values changed — are redone. Returns the new seeds, representer
/// values, and per-procedure `RMOD` sets (the broadcast is always run in
/// full; it is one boolean step per formal).
#[allow(clippy::too_many_arguments)]
fn rmod_sweep(
    program: &Program,
    beta: &BindingGraph,
    sccs: &Sccs,
    cond: &DiGraph,
    initial: &[BitSet],
    cached: Option<(&Vec<bool>, &Vec<bool>)>,
    reused: &mut usize,
    recomputed: &mut usize,
    guard: &Guard,
) -> Result<(Vec<bool>, Vec<bool>, Vec<BitSet>), Interrupt> {
    let n = beta.num_nodes();
    let mut seeds = Vec::with_capacity(n);
    for node in 0..n {
        let formal = beta.formal_of_node(node);
        let (owner, _) = program.formal_position(formal).expect("β nodes are formals");
        seeds.push(initial[owner.index()].contains(formal.index()));
    }
    guard.charge(0, n as u64);
    guard.check()?;

    let mut sweep = DirtySweep::new(cond);
    let mut rep = match cached {
        Some((old_seeds, old_rep)) => {
            // Seed components whose members' IMOD bits moved.
            debug_assert_eq!(old_seeds.len(), n, "β unchanged under set-local");
            for node in 0..n {
                if seeds[node] != old_seeds[node] {
                    sweep.seed(sccs.component_of(node));
                }
            }
            old_rep.clone()
        }
        None => {
            for c in 0..sccs.len() {
                sweep.seed(c);
            }
            vec![false; sccs.len()]
        }
    };
    // Ascending SccId = successors first: a dirty component recomputes
    // its representer from final member seeds and successor values; an
    // unchanged result stops the dirt right there.
    for c in 0..sccs.len() {
        if sweep.is_dirty(c) {
            let mut value = false;
            for &m in sccs.members(c) {
                value |= seeds[m];
            }
            for d in cond.successor_nodes(c) {
                value |= rep[d];
            }
            let changed = value != rep[c];
            rep[c] = value;
            sweep.update(c, changed);
        } else {
            sweep.skip(c);
        }
    }
    *reused += sweep.reused();
    *recomputed += sweep.recomputed();
    guard.charge(0, sccs.len() as u64);
    guard.check()?;

    // Broadcast — the exact step (4) of Figure 1, unbound formals taking
    // their IMOD bit directly.
    let mut rmod = vec![BitSet::new(program.num_vars()); program.num_procs()];
    for p in program.procs() {
        for &f in program.proc_(p).formals() {
            let in_rmod = match beta.node_of_formal(f) {
                Some(node) => rep[sccs.component_of(node)],
                None => initial[p.index()].contains(f.index()),
            };
            if in_rmod {
                rmod[p.index()].insert(f.index());
            }
        }
    }
    Ok((seeds, rep, rmod))
}

/// Equation (5), exactly as [`modref_core::compute_imod_plus`] computes
/// it (`rmod[callee]` holding only own-formal bits makes the membership
/// test equivalent to `RmodSolution::is_modified`).
fn compute_plus(
    program: &Program,
    initial: &[BitSet],
    rmod: &[BitSet],
    guard: &Guard,
) -> Result<Vec<BitSet>, Interrupt> {
    let mut plus = initial.to_vec();
    let mut steps = 0u64;
    for s in program.sites() {
        let site = program.site(s);
        let caller = site.caller();
        let callee = site.callee();
        let callee_formals = program.proc_(callee).formals();
        for (pos, arg) in site.args().iter().enumerate() {
            steps += 1;
            if !rmod[callee.index()].contains(callee_formals[pos].index()) {
                continue;
            }
            if let Actual::Ref(r) = arg {
                plus[caller.index()].insert(r.var.index());
            }
        }
    }
    guard.charge(0, steps);
    guard.check()?;
    Ok(plus)
}

/// `new[p] != old[p]` per procedure (new procedures always dirty; no old
/// results means everything is).
fn diff_procs(new: &[BitSet], old: Option<&Vec<BitSet>>, is_new: &[bool]) -> Vec<bool> {
    match old {
        Some(old) => (0..new.len())
            .map(|p| is_new[p] || new[p] != old[p])
            .collect(),
        None => vec![true; new.len()],
    }
}

/// One side's `GMOD` problems with component-level caching. Problem `k`
/// (0-based) restricts the call multi-graph to edges whose callee sits at
/// nesting level `≥ k + 1` — for two-level programs the single problem
/// runs on the full graph, matching the batch solver exactly. Each
/// problem's condensation is rebuilt (linear), then every component is
/// either **reused** (signature matches the cache, no member seed or
/// referenced `LOCAL` set dirty, no successor value changed) or
/// **recomputed** with [`solve_component`] — the batch kernel — on the
/// pool.
#[allow(clippy::too_many_arguments)]
fn gmod_side(
    program: &Program,
    full_graph: &DiGraph,
    dp: usize,
    nproblems: usize,
    seeds: &[BitSet],
    locals: &[BitSet],
    seed_dirty: &[bool],
    locals_dirty: &[bool],
    old_problems: &[ProblemCache],
    pool: &ThreadPool,
    guard: &Guard,
    reused: &mut usize,
    recomputed: &mut usize,
) -> Result<(Vec<BitSet>, Vec<ProblemCache>), Interrupt> {
    let n = full_graph.num_nodes();
    let nv = program.num_vars();
    if n == 0 {
        return Ok((seeds.to_vec(), Vec::new()));
    }
    let callee_level: Vec<usize> = full_graph
        .edges()
        .map(|e| program.proc_(ProcId::new(e.to)).level() as usize)
        .collect();

    let mut new_problems = Vec::with_capacity(nproblems);
    let mut total: Option<Vec<BitSet>> = if dp <= 1 {
        None // single problem: its rows *are* the answer
    } else {
        Some(seeds.to_vec())
    };

    for k in 0..nproblems {
        guard.check()?;
        let restricted;
        let graph: &DiGraph = if dp <= 1 {
            full_graph
        } else {
            let mut g = DiGraph::new(n);
            for (e, &lv) in full_graph.edges().zip(&callee_level) {
                if lv >= k + 1 {
                    g.add_edge(e.from, e.to);
                }
            }
            restricted = g;
            &restricted
        };
        let old = old_problems.get(k);
        let sccs = tarjan(graph);
        let cond = Condensation::build(graph, &sccs);
        let levels = cond.levels();
        let comp_map = sccs.component_map();
        let mut comp_pos = vec![0usize; n];
        for members in sccs.iter() {
            for (pos, &m) in members.iter().enumerate() {
                comp_pos[m] = pos;
            }
        }
        let mut sweep = DirtySweep::new(cond.graph());
        let mut g_rows: Vec<BitSet> = vec![BitSet::new(nv); n];
        let mut new_cache = ProblemCache::default();

        for level in 0..levels.num_levels() {
            let group = levels.group(level);
            // Classify: reuse or recompute. Signature = sorted members +
            // sorted deduplicated outgoing (member, successor) pairs.
            let mut dirty: Vec<SccId> = Vec::new();
            for &c in group {
                let members = sccs.members(c);
                let mut key: Vec<usize> = members.to_vec();
                key.sort_unstable();
                let mut sig: Vec<(usize, usize)> = Vec::new();
                for &u in members {
                    for &(q, _) in graph.successors_slice(u) {
                        sig.push((u, q));
                    }
                }
                sig.sort_unstable();
                sig.dedup();
                let cached = old.and_then(|o| o.comps.get(&key));
                let clean = !sweep.is_dirty(c)
                    && cached.is_some_and(|(old_sig, _)| *old_sig == sig)
                    && key.iter().all(|&u| !seed_dirty[u])
                    && sig.iter().all(|&(_, q)| !locals_dirty[q]);
                if clean {
                    let (_, rows) = cached.expect("clean implies cached");
                    for &u in members {
                        let pos = key.binary_search(&u).expect("member in key");
                        g_rows[u] = rows[pos].clone();
                    }
                    sweep.skip(c);
                    new_cache
                        .comps
                        .insert(key, (sig, rows.clone()));
                } else {
                    dirty.push(c);
                }
            }
            // Recompute the dirty components of this level on the pool,
            // with the same kernel the batch level-scheduled solver uses.
            let results = {
                let g_final = &g_rows;
                pool.par_map_while(
                    dirty.len(),
                    || !guard.should_stop(),
                    |i| {
                        if i % 64 == 0 {
                            let _ = guard.check();
                        }
                        solve_component(
                            dirty[i], graph, &sccs, comp_map, &comp_pos, seeds, locals, g_final,
                            nv, guard,
                        )
                    },
                )
            };
            let mut level_work = OpCounter::new();
            for (slot, &c) in results.into_iter().zip(&dirty) {
                let Some((sets, counter)) = slot else {
                    guard.check()?;
                    return Err(guard.interrupt().unwrap_or(Interrupt::Halted));
                };
                level_work += counter;
                let members = sccs.members(c);
                let mut key: Vec<usize> = members.to_vec();
                key.sort_unstable();
                let mut sorted_rows = vec![BitSet::new(nv); members.len()];
                for (set, &u) in sets.into_iter().zip(members) {
                    let pos = key.binary_search(&u).expect("member in key");
                    sorted_rows[pos] = set;
                }
                // Value change vs the cache decides whether dirt spreads
                // to predecessors (rows compared in sorted-member order).
                let changed = match old.and_then(|o| o.comps.get(&key)) {
                    Some((_, old_rows)) => {
                        old_rows.len() != sorted_rows.len()
                            || old_rows.iter().zip(&sorted_rows).any(|(a, b)| a != b)
                    }
                    None => true,
                };
                for &u in members {
                    let pos = key.binary_search(&u).expect("member in key");
                    g_rows[u] = sorted_rows[pos].clone();
                }
                sweep.update(c, changed);
                let mut sig: Vec<(usize, usize)> = Vec::new();
                for &u in members {
                    for &(q, _) in graph.successors_slice(u) {
                        sig.push((u, q));
                    }
                }
                sig.sort_unstable();
                sig.dedup();
                new_cache.comps.insert(key, (sig, sorted_rows));
            }
            guard.charge(level_work.bitvec_steps, level_work.bool_steps);
            guard.check()?;
        }
        *reused += sweep.reused();
        *recomputed += sweep.recomputed();

        match &mut total {
            None => {
                // dp ≤ 1: the single problem's rows are the final sets.
                new_problems.push(new_cache);
                return Ok((g_rows, new_problems));
            }
            Some(acc) => {
                for (a, r) in acc.iter_mut().zip(&g_rows) {
                    a.union_with(r);
                }
                guard.charge(n as u64, 0);
            }
        }
        new_problems.push(new_cache);
    }
    Ok((total.expect("dp > 1 accumulates"), new_problems))
}

/// Prior state translated into the edited program's id spaces.
struct RemappedPrior {
    res: Results,
    flat_mod: Vec<BitSet>,
    flat_use: Vec<BitSet>,
    local_sets: Vec<BitSet>,
    beta: Option<BetaCache>,
    problems_mod: Vec<ProblemCache>,
    problems_use: Vec<ProblemCache>,
    aliases: AliasPairs,
    is_new_proc: Vec<bool>,
    is_new_site: Vec<bool>,
}

/// Applies the delta's remap tables to every cached structure. Entries
/// mentioning removed ids are dropped; brand-new ids come back flagged in
/// `is_new_proc` / `is_new_site` so diffs treat them as dirty.
fn remap_prior(cache: Cache, res: Results, d: &EditDelta, program: &Program) -> RemappedPrior {
    let np = program.num_procs();
    let nv = program.num_vars();
    let ns = program.num_sites();

    let remap_set = |old: &BitSet| -> BitSet {
        BitSet::from_iter_with_domain(
            nv,
            old.iter().filter_map(|i| d.var_map[i].map(VarId::index)),
        )
    };
    let remap_proc_vec = |old: &[BitSet]| -> Vec<BitSet> {
        let mut out = vec![BitSet::new(nv); np];
        for (i, set) in old.iter().enumerate() {
            if let Some(p) = d.proc_map[i] {
                out[p.index()] = remap_set(set);
            }
        }
        out
    };
    let remap_site_vec = |old: &[BitSet]| -> Vec<BitSet> {
        let mut out = vec![BitSet::new(nv); ns];
        for (i, set) in old.iter().enumerate() {
            if let Some(s) = d.site_map[i] {
                out[s.index()] = remap_set(set);
            }
        }
        out
    };
    let remap_problems = |old: Vec<ProblemCache>| -> Vec<ProblemCache> {
        old.into_iter()
            .map(|pc| {
                let comps = pc
                    .comps
                    .into_iter()
                    .filter_map(|(key, (sig, rows))| {
                        // Keys and signatures are call-graph node ids,
                        // i.e. procedure ids; rows are variable-domain.
                        let mut pairs: Vec<(usize, BitSet)> = Vec::with_capacity(key.len());
                        for (&u, row) in key.iter().zip(rows) {
                            pairs.push((d.proc_map[u]?.index(), remap_set(&row)));
                        }
                        pairs.sort_by_key(|&(u, _)| u);
                        let mut new_sig = Vec::with_capacity(sig.len());
                        for &(u, q) in &sig {
                            new_sig.push((d.proc_map[u]?.index(), d.proc_map[q]?.index()));
                        }
                        new_sig.sort_unstable();
                        new_sig.dedup();
                        let (new_key, new_rows): (Vec<usize>, Vec<BitSet>) =
                            pairs.into_iter().unzip();
                        Some((new_key, (new_sig, new_rows)))
                    })
                    .collect();
                ProblemCache { comps }
            })
            .collect()
    };

    let mut is_new_proc = vec![true; np];
    for m in d.proc_map.iter().flatten() {
        is_new_proc[m.index()] = false;
    }
    let mut is_new_site = vec![true; ns];
    for m in d.site_map.iter().flatten() {
        is_new_site[m.index()] = false;
    }

    RemappedPrior {
        res: Results {
            imod: remap_proc_vec(&res.imod),
            iuse: remap_proc_vec(&res.iuse),
            rmod: remap_proc_vec(&res.rmod),
            ruse: remap_proc_vec(&res.ruse),
            plus_mod: remap_proc_vec(&res.plus_mod),
            plus_use: remap_proc_vec(&res.plus_use),
            gmod: remap_proc_vec(&res.gmod),
            guse: remap_proc_vec(&res.guse),
            dmod: remap_site_vec(&res.dmod),
            duse: remap_site_vec(&res.duse),
            mods: remap_site_vec(&res.mods),
            uses: remap_site_vec(&res.uses),
        },
        flat_mod: remap_proc_vec(&cache.flat_mod),
        flat_use: remap_proc_vec(&cache.flat_use),
        local_sets: remap_proc_vec(&cache.local_sets),
        // The binding structures are kept only across edits that change
        // neither structure nor universe; the caller gates on that, so an
        // identity remap suffices here.
        beta: if d.structure_changed || d.universe_changed {
            None
        } else {
            cache.beta
        },
        problems_mod: remap_problems(cache.problems_mod),
        problems_use: remap_problems(cache.problems_use),
        aliases: cache.aliases,
        is_new_proc,
        is_new_site,
    }
}

impl Clone for BetaCache {
    fn clone(&self) -> Self {
        BetaCache {
            beta: self.beta.clone(),
            sccs: self.sccs.clone(),
            cond: self.cond.clone(),
            seed_mod: self.seed_mod.clone(),
            seed_use: self.seed_use.clone(),
            rep_mod: self.rep_mod.clone(),
            rep_use: self.rep_use.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{Expr, ProgramBuilder};

    fn base_engine() -> (IncrementalEngine, VarId, VarId, ProcId, ProcId, CallSiteId) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::load(g));
        let q = b.proc_("q", &[]);
        b.assign(q, h, Expr::constant(1));
        let main = b.main();
        let s = b.call(main, p, &[g]);
        b.call(main, q, &[]);
        let program = b.finish().expect("valid");
        (IncrementalEngine::new(program), g, h, p, q, s)
    }

    fn assert_matches_scratch(engine: &IncrementalEngine) {
        let summary = Analyzer::new().analyze(engine.program());
        for p in engine.program().procs() {
            assert_eq!(engine.rmod(p), summary.rmod(p), "rmod({p})");
            assert_eq!(engine.ruse(p), summary.ruse(p), "ruse({p})");
            assert_eq!(engine.imod_plus(p), summary.imod_plus(p), "plus({p})");
            assert_eq!(engine.gmod(p), summary.gmod(p), "gmod({p})");
            assert_eq!(engine.guse(p), summary.guse(p), "guse({p})");
        }
        for s in engine.program().sites() {
            assert_eq!(engine.dmod_site(s), summary.dmod_site(s), "dmod({s})");
            assert_eq!(engine.duse_site(s), summary.duse_site(s), "duse({s})");
            assert_eq!(engine.mod_site(s), summary.mod_site(s), "mod({s})");
            assert_eq!(engine.use_site(s), summary.use_site(s), "use({s})");
        }
    }

    #[test]
    fn initial_build_matches_scratch() {
        let (engine, ..) = base_engine();
        assert!(engine.stats().full_rebuild);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn set_local_effects_applies_incrementally() {
        let (mut engine, g, h, _p, q, s) = base_engine();
        let delta = engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: vec![g],
                uses: vec![h],
            })
            .expect("valid edit");
        assert!(!engine.stats().full_rebuild);
        assert!(delta.changed_procs.contains(&q));
        assert_matches_scratch(&engine);
        let _ = s;
    }

    #[test]
    fn unrelated_edit_reuses_components() {
        let (mut engine, g, _h, _p, q, _s) = base_engine();
        // Re-assert q's existing effects: nothing changes downstream.
        let before = engine.gmod(q).clone();
        engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: engine.gmod(q).iter().map(VarId::new).collect(),
                uses: vec![],
            })
            .expect("valid edit");
        assert_eq!(&before, engine.gmod(q));
        assert!(engine.stats().gmod_components_reused > 0);
        assert_matches_scratch(&engine);
        let _ = g;
    }

    #[test]
    fn structural_edits_apply_incrementally() {
        let (mut engine, g, h, p, _q, _s) = base_engine();
        engine
            .apply(&Edit::AddCallSite {
                caller: ProcId::MAIN,
                callee: p,
                args: vec![Actual::Ref(modref_ir::Ref::scalar(h))],
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::AddProcedure {
                name: "fresh".into(),
                parent: ProcId::MAIN,
                formals: vec!["z".into()],
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        let s0 = CallSiteId::new(0);
        engine
            .apply(&Edit::RebindActual {
                site: s0,
                position: 0,
                actual: Actual::Ref(modref_ir::Ref::scalar(g)),
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::RemoveCallSite { site: s0 })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        // The add-call edit above appended a second call to p; drop it so
        // p becomes call-free and removable.
        engine
            .apply(&Edit::RemoveCallSite {
                site: CallSiteId::new(1),
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::RemoveProcedure { proc_: p })
            .expect("valid edit");
        assert_matches_scratch(&engine);
    }

    #[test]
    fn rejected_edit_leaves_everything_intact() {
        let (mut engine, ..) = base_engine();
        let before_gmod: Vec<BitSet> = engine.gmod_all().to_vec();
        let err = engine
            .apply(&Edit::RemoveProcedure {
                proc_: ProcId::MAIN,
            })
            .expect_err("removing main is rejected");
        assert!(matches!(err, EditError::RemoveMain));
        assert_eq!(engine.gmod_all(), &before_gmod[..]);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn refresh_is_idempotent() {
        let (mut engine, g, _h, _p, q, _s) = base_engine();
        engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: vec![g],
                uses: vec![],
            })
            .expect("valid edit");
        let gmods: Vec<BitSet> = engine.gmod_all().to_vec();
        engine.refresh();
        assert!(engine.stats().full_rebuild);
        assert_eq!(engine.gmod_all(), &gmods[..]);
    }

    #[test]
    fn analyzer_extension_carries_threads() {
        let (engine, ..) = base_engine();
        let program = engine.program().clone();
        let via_analyzer = Analyzer::new().threads(2).incremental(program);
        assert_matches_scratch(&via_analyzer);
    }
}
