//! The incremental summary engine.
//!
//! [`IncrementalEngine`] holds a program, the full set of analysis
//! results for it, and a cache of per-phase intermediates. Applying a
//! typed [`Edit`] recomputes *exactly the invalidated pieces* — the dirty
//! frontier of the binding multi-graph's condensation for `RMOD`/`RUSE`
//! (Figure 1) and of each level-scheduled `GMOD` problem, plus the call
//! sites whose inputs moved — while everything else is kept, untouched,
//! in per-node caches. The results after every edit are **bit-identical**
//! to a from-scratch [`Analyzer::analyze`] run on the edited program; the
//! differential test rig (`tests/incr_equiv.rs`) enforces this for random
//! edit scripts at several thread counts.
//!
//! Three apply paths, picked per edit from the [`EditDelta`]:
//!
//! * **set-local** — no structure, no universe change. The binding and
//!   call condensations are reused *as cached objects*: no graph is
//!   rebuilt, no Tarjan runs, and the sweeps are [`SparseSweep`]s whose
//!   work is proportional to the dirty frontier, not the program.
//! * **structural patch** — structure changed but every procedure and
//!   variable id survived (add/remove call, rebind, add a formal-less
//!   procedure). The cached [`DynCondensation`]s are *patched* edge by
//!   edge (Pearce–Kelly window repair, component-local re-Tarjan), and
//!   the patch dirt seeds the same sparse sweeps.
//! * **full** — no cache, or the variable universe changed. Everything
//!   is rebuilt with the batch kernels.
//!
//! # Why reuse is sound
//!
//! Every set the pipeline computes is the least fixed point of a system
//! whose per-component subproblems are *closed* once their successors
//! (callees, bound formals) are final. A cached component value is reused
//! only when
//!
//! 1. its local structure is unchanged (membership and outgoing edges —
//!    any patch that touches them puts its nodes in the dirty seed set),
//! 2. its inputs are unchanged (seeds and the `LOCAL` sets its edges
//!    filter through), and
//! 3. no successor's value changed (an **early cutoff**: a recomputed
//!    component whose fixpoint is bit-identical to its cached rows stops
//!    the dirt right there, so predecessors are never drawn into the
//!    frontier).
//!
//! Under those three conditions the component solves the *same* closed
//! subproblem as the cached run did, and a least fixed point is unique —
//! so the cached rows equal what [`solve_component`] would recompute,
//! bit for bit. Recomputed components use the *same kernel* the
//! from-scratch solver uses, so no second implementation has to agree
//! with the first. Caches are keyed **per node** (per β node, per
//! procedure), not per component, so they survive the component
//! renumbering a merge, split, or window reorder performs. See
//! `docs/INCREMENTAL.md` for the full argument.
//!
//! # Failure containment
//!
//! [`IncrementalEngine::apply_guarded`] runs under a cooperative
//! [`Guard`]. The cache is *taken out* of the engine before any
//! recomputation starts; it is put back only when every phase has
//! committed. An interrupt or contained panic therefore leaves the
//! engine with **no** cache and conservative (sound, over-approximate)
//! result sets; the next successful apply rebuilds from scratch and is
//! again bit-identical to a clean run.

use std::panic::{catch_unwind, AssertUnwindSafe};

use modref_binding::BindingGraph;
use modref_bitset::{BitSet, EffectSet, OpCounter};
use modref_core::{solve_component, Analyzer};
use modref_graph::{DiGraph, DynCondensation, SccId, SparseSweep};
use modref_guard::{Guard, Interrupt};
use modref_ir::{
    walk_stmts, Actual, CallGraph, CallSiteId, Edit, EditDelta, EditError, ProcId, Program, VarId,
};
use modref_par::ThreadPool;
use modref_trace::Trace;

use modref_core::AliasPairsIn;

use crate::script::Script;

/// A failure replaying a recorded edit history
/// ([`IncrementalEngine::replay_history`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 0-based index of the offending history entry.
    pub index: usize,
    /// What went wrong: a parse, resolution, or apply failure.
    pub message: String,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "history entry {}: {}", self.index, self.message)
    }
}

impl std::error::Error for ReplayError {}

/// All result sets, in the same shape the batch [`Summary`] reports them.
///
/// [`Summary`]: modref_core::Summary
#[derive(Debug, Default, Clone)]
struct Results<S: EffectSet> {
    /// §3.3-extended `IMOD`/`IUSE` per procedure.
    imod: Vec<S>,
    iuse: Vec<S>,
    /// Figure 1 `RMOD`/`RUSE` per procedure (only own-formal bits).
    rmod: Vec<S>,
    ruse: Vec<S>,
    /// Equation (5) `IMOD⁺`/`IUSE⁺`.
    plus_mod: Vec<S>,
    plus_use: Vec<S>,
    /// Equation (4) `GMOD`/`GUSE`.
    gmod: Vec<S>,
    guse: Vec<S>,
    /// Per-site projections and final alias-factored sets.
    dmod: Vec<S>,
    duse: Vec<S>,
    mods: Vec<S>,
    uses: Vec<S>,
}

/// Cached intermediates that outlive one apply. Everything here is an
/// *optimisation*: the engine is correct with any subset missing (it
/// recomputes), and the whole cache is dropped on a failed apply.
struct Cache<S: EffectSet> {
    /// Flat (un-extended) per-procedure `LMOD`/`LUSE` unions.
    flat_mod: Vec<S>,
    flat_use: Vec<S>,
    /// `LOCAL(p)` per procedure.
    local_sets: Vec<S>,
    /// Figure 1 structures, maintained across set-local and structural
    /// patch edits.
    beta: BetaCache,
    /// The `GMOD` problem family, likewise maintained.
    call: CallCache<S>,
    /// Banning alias pairs; body-independent, reusable across `set-local`.
    aliases: AliasPairsIn<S>,
}

/// The binding multi-graph, its dynamically maintained condensation, and
/// the per-*node* seed and representer booleans of the last Figure 1
/// sweep (both problem sides). Node ids are formals in program order, so
/// they are stable under every edit that keeps the variable universe;
/// component ids are *not* stable, which is why nothing here is keyed by
/// them.
struct BetaCache {
    beta: BindingGraph,
    /// Sorted `(from, to)` edge multiset — the diff base for patches.
    edges: Vec<(usize, usize)>,
    dc: DynCondensation,
    seed_mod: Vec<bool>,
    seed_use: Vec<bool>,
    rep_mod: Vec<bool>,
    rep_use: Vec<bool>,
}

/// The call multi-graph's `GMOD` problem family: one maintained
/// condensation per nesting problem (shared by both sides) plus the
/// per-procedure fixpoint rows of the last sweep.
struct CallCache<S: EffectSet> {
    /// The nesting depth the family was built for; a depth change
    /// invalidates the whole family.
    dp: usize,
    /// Sorted `(from, to, callee_level)` edge multiset of the *full*
    /// call graph — the diff base for patches.
    edges: Vec<(usize, usize, usize)>,
    problems: Vec<ProblemCache<S>>,
}

/// One `GMOD` problem: its maintained condensation and the cached
/// per-node (per-procedure) fixpoint rows for both sides.
struct ProblemCache<S: EffectSet> {
    dc: DynCondensation,
    rows_mod: Vec<S>,
    rows_use: Vec<S>,
}

/// Which apply path this edit takes; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Full,
    SetLocal,
    Patch,
}

/// Reused-vs-recomputed counters for one apply.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IncrStats {
    /// `true` when no cache was available (first build, post-failure
    /// rebuild, or [`IncrementalEngine::refresh`]).
    pub full_rebuild: bool,
    /// `true` while the engine holds degraded (conservative) results.
    pub degraded: bool,
    /// Procedures whose flat `LMOD`/`LUSE` were rescanned.
    pub procs_flat_recomputed: usize,
    /// Binding-condensation components kept / redone (both sides summed).
    pub rmod_components_reused: usize,
    /// See [`IncrStats::rmod_components_reused`].
    pub rmod_components_recomputed: usize,
    /// `GMOD` condensation components kept / redone (all problems and
    /// both sides summed).
    pub gmod_components_reused: usize,
    /// See [`IncrStats::gmod_components_reused`].
    pub gmod_components_recomputed: usize,
    /// Call sites whose projection + factoring were kept / redone.
    pub sites_reused: usize,
    /// See [`IncrStats::sites_reused`].
    pub sites_recomputed: usize,
}

/// What one successful apply changed, in terms of observable results.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IncrDelta {
    /// Procedures (new ids) whose `GMOD` or `GUSE` set differs from the
    /// pre-edit value (removed procedures are not listed; new ones are).
    pub changed_procs: Vec<ProcId>,
    /// Call sites (new ids) whose final `MOD` or `USE` set differs.
    pub changed_sites: Vec<CallSiteId>,
}

/// Why a guarded apply degraded.
#[derive(Debug, Clone)]
pub enum IncrDegradeReason {
    /// The guard tripped: deadline, a budget, or cancellation.
    Interrupted(Interrupt),
    /// A phase panicked; the engine contained it.
    Panic(String),
}

impl std::fmt::Display for IncrDegradeReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrDegradeReason::Interrupted(i) => write!(f, "{i}"),
            IncrDegradeReason::Panic(m) => write!(f, "panic during incremental apply: {m}"),
        }
    }
}

/// The result of [`IncrementalEngine::apply_guarded`].
#[derive(Debug)]
pub enum IncrOutcome {
    /// The apply completed; results are bit-identical to a from-scratch
    /// run on the edited program.
    Clean(IncrDelta),
    /// The apply was cut short. The engine now reports conservative
    /// (sound, over-approximate) sets and has dropped its cache; the next
    /// successful apply rebuilds from scratch.
    Degraded {
        /// What stopped the apply.
        reason: IncrDegradeReason,
    },
}

impl IncrOutcome {
    /// `true` for [`IncrOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, IncrOutcome::Degraded { .. })
    }
}

/// Obtains an [`IncrementalEngine`] from an [`Analyzer`] configuration,
/// carrying over its thread count and trace handle.
pub trait IncrementalExt {
    /// Builds the engine (running the initial full analysis) with this
    /// analyzer's threads and trace, over the default dense sets.
    fn incremental(&self, program: Program) -> IncrementalEngine;

    /// [`IncrementalExt::incremental`] over a caller-chosen set
    /// representation `S` — `modref serve` uses this to build hybrid
    /// sessions when the server-wide `--set-repr` knob selects them.
    fn incremental_in<S: EffectSet>(&self, program: Program) -> IncrementalEngineIn<S>;
}

impl IncrementalExt for Analyzer {
    fn incremental(&self, program: Program) -> IncrementalEngine {
        self.incremental_in::<BitSet>(program)
    }

    fn incremental_in<S: EffectSet>(&self, program: Program) -> IncrementalEngineIn<S> {
        let mut engine = IncrementalEngineIn::with_config(
            program,
            self.configured_threads(),
            self.trace_handle().clone(),
        );
        engine.rebuild();
        engine
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The engine. See the module docs; `tests/` hold the differential and
/// fault suites.
///
/// # Examples
///
/// ```
/// use modref_incr::{Edit, IncrementalEngine};
/// use modref_ir::{Expr, ProgramBuilder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let g = b.global("g");
/// let h = b.global("h");
/// let p = b.proc_("p", &[]);
/// b.assign(p, g, Expr::constant(1));
/// let main = b.main();
/// let s = b.call(main, p, &[]);
/// let mut engine = IncrementalEngine::new(b.finish()?);
/// assert!(engine.mod_site(s).contains(g.index()));
///
/// // Edit p to write h instead of g; only the affected pieces recompute.
/// engine.apply(&Edit::SetLocalEffects { proc_: p, mods: vec![h], uses: vec![] })?;
/// assert!(!engine.mod_site(s).contains(g.index()));
/// assert!(engine.mod_site(s).contains(h.index()));
/// # Ok(())
/// # }
/// ```
pub struct IncrementalEngineIn<S: EffectSet> {
    program: Program,
    threads: Option<usize>,
    trace: Trace,
    cache: Option<Cache<S>>,
    res: Results<S>,
    stats: IncrStats,
}

/// [`IncrementalEngineIn`] over the paper's dense bit vectors — the
/// default representation of the public API.
pub type IncrementalEngine = IncrementalEngineIn<BitSet>;

impl<S: EffectSet> IncrementalEngineIn<S> {
    /// Builds the engine and runs the initial full analysis.
    pub fn new(program: Program) -> Self {
        let mut engine = Self::with_config(program, None, Trace::disabled());
        engine.rebuild();
        engine
    }

    fn with_config(program: Program, threads: Option<usize>, trace: Trace) -> Self {
        IncrementalEngineIn {
            program,
            threads,
            trace,
            cache: None,
            res: Results::default(),
            stats: IncrStats::default(),
        }
    }

    /// Sets the worker-thread count for the pooled stages (dirty `GMOD`
    /// component fan-out). Semantics follow [`Analyzer::threads`]: `0`
    /// means one thread per core, unset defers to `MODREF_THREADS`.
    /// Results are bit-identical at any thread count.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.threads = Some(threads);
        self
    }

    /// Records applies into `trace`: one `incr.apply` span per apply,
    /// annotated with the edit kind and the reused-vs-recomputed
    /// counters. Tracing only observes.
    pub fn with_trace(&mut self, trace: Trace) -> &mut Self {
        self.trace = trace;
        self
    }

    /// The current (post-edit) program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The counters of the most recent apply (or rebuild).
    pub fn stats(&self) -> &IncrStats {
        &self.stats
    }

    /// Drops the cache and recomputes everything from scratch.
    pub fn refresh(&mut self) {
        self.cache = None;
        self.rebuild();
    }

    fn rebuild(&mut self) {
        self.cache = None;
        match self.recompute(None, &Guard::unlimited()) {
            Ok(_) => {}
            Err(i) => unreachable!("an unlimited guard cannot interrupt the engine: {i}"),
        }
    }

    /// Applies `edit` with nothing able to interrupt the recomputation.
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected; the program,
    /// results, and cache are untouched in that case.
    ///
    /// # Panics
    ///
    /// Re-raises a solver panic (which [`IncrementalEngine::apply_guarded`]
    /// would contain).
    pub fn apply(&mut self, edit: &Edit) -> Result<IncrDelta, EditError> {
        match self.apply_guarded(edit, &Guard::unlimited())? {
            IncrOutcome::Clean(delta) => Ok(delta),
            IncrOutcome::Degraded { reason } => panic!("incremental apply failed: {reason}"),
        }
    }

    /// Applies `edit` under a cooperative [`Guard`] and always returns.
    ///
    /// The edit is validated first; a rejected edit changes nothing. Once
    /// the edit commits, the recomputation runs under the guard with
    /// checkpoints at `incr`, `incr.local`, `incr.rmod`, `incr.dyncond`
    /// (structural patches only), `incr.plus`, `incr.gmod`,
    /// `incr.gmod.patch` (structural patches only), `incr.gmod.sweep`,
    /// and `incr.final` (fault-injection sites for
    /// [`modref_guard::FaultPlan`]). On an interrupt or contained panic
    /// the engine degrades: conservative result sets, cache dropped.
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected (program,
    /// results, and cache untouched).
    pub fn apply_guarded(
        &mut self,
        edit: &Edit,
        guard: &Guard,
    ) -> Result<IncrOutcome, EditError> {
        let (next, delta) = self.program.apply_edit(edit)?;
        self.program = next;
        match catch_unwind(AssertUnwindSafe(|| self.recompute(Some(&delta), guard))) {
            Ok(Ok(d)) => Ok(IncrOutcome::Clean(d)),
            Ok(Err(interrupt)) => {
                self.degrade();
                Ok(IncrOutcome::Degraded {
                    reason: IncrDegradeReason::Interrupted(interrupt),
                })
            }
            Err(payload) => {
                self.degrade();
                Ok(IncrOutcome::Degraded {
                    reason: IncrDegradeReason::Panic(panic_message(payload.as_ref())),
                })
            }
        }
    }

    /// Replays a recorded edit history — one edit-script line per entry,
    /// in the `--edits` grammar — through the same
    /// `Script::parse → resolve → apply` pipeline interactive edits use,
    /// so a replayed engine is bit-identical to one that applied the
    /// edits live. This is how `modref serve` resurrects a session from
    /// its journal or parked history. Returns the number of edits
    /// applied. Runs unguarded (recovery is not a budgeted request); a
    /// contained panic degrades soundly rather than propagating, and the
    /// caller's bit-identity check decides what to do about it.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] naming the first entry that fails to
    /// parse, resolve, or apply. The engine keeps the state produced by
    /// the entries before it.
    pub fn replay_history<'a, I>(&mut self, history: I) -> Result<u64, ReplayError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut applied = 0u64;
        for (index, line) in history.into_iter().enumerate() {
            let fail = |message: String| ReplayError { index, message };
            let script = Script::parse(line).map_err(|e| fail(e.message))?;
            for step in script.steps() {
                let edit = step.resolve(&self.program).map_err(|e| fail(e.message))?;
                self.apply_guarded(&edit, &Guard::unlimited())
                    .map_err(|e| fail(e.to_string()))?;
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Conservative results for the current program: every set is widened
    /// to the same fallbacks the batch pipeline's degradation ladder uses
    /// (all formals for `RMOD`, visible sets elsewhere), so everything
    /// observable at run time stays inside the reported sets.
    fn degrade(&mut self) {
        self.cache = None;
        let program = &self.program;
        let visible: Vec<S> = program
            .visible_sets()
            .into_iter()
            .map(S::from_dense_owned)
            .collect();
        let nv = program.num_vars();
        let mut rmod = vec![S::empty(nv); program.num_procs()];
        for p in program.procs() {
            for &f in program.proc_(p).formals() {
                rmod[p.index()].insert(f.index());
            }
        }
        let per_site: Vec<S> = program
            .sites()
            .map(|s| visible[program.site(s).caller().index()].clone())
            .collect();
        self.res = Results {
            imod: visible.clone(),
            iuse: visible.clone(),
            rmod: rmod.clone(),
            ruse: rmod,
            plus_mod: visible.clone(),
            plus_use: visible.clone(),
            gmod: visible.clone(),
            guse: visible,
            dmod: per_site.clone(),
            duse: per_site.clone(),
            mods: per_site.clone(),
            uses: per_site,
        };
        self.stats = IncrStats {
            degraded: true,
            ..IncrStats::default()
        };
    }

    /// The one recomputation path. `delta` is `None` for a full build.
    /// The cache and prior results are taken out *first*: any interrupt
    /// or panic after this point leaves the engine cacheless, so a failed
    /// apply can never leave stale intermediates behind.
    fn recompute(
        &mut self,
        delta: Option<&EditDelta>,
        guard: &Guard,
    ) -> Result<IncrDelta, Interrupt> {
        let cache = self.cache.take();
        let prior_res = std::mem::take(&mut self.res);
        let mut stats = IncrStats::default();
        let mut span = self.trace.span("incr.apply");
        span.note("edit", delta.map_or("rebuild", |d| d.kind));
        guard.checkpoint("incr")?;

        let program = &self.program;
        let np = program.num_procs();
        let nv = program.num_vars();
        let ns = program.num_sites();
        let pool = ThreadPool::with_threads(self.threads);

        let had_cache = cache.is_some();
        let mode = match (had_cache, delta) {
            (true, Some(d)) if !d.structure_changed && !d.universe_changed => Mode::SetLocal,
            (true, Some(d)) if !d.universe_changed && identity_maps(d) => Mode::Patch,
            _ => Mode::Full,
        };
        stats.full_rebuild = !(had_cache && delta.is_some());

        // Split the cache; the graph caches survive only the set-local
        // and patch paths (their node ids are invalidated by a universe
        // change).
        let (old_flat, old_local_sets, old_beta, old_call, old_aliases) = match (cache, mode) {
            (Some(c), Mode::SetLocal | Mode::Patch) => (
                Some((c.flat_mod, c.flat_use)),
                Some(c.local_sets),
                Some(c.beta),
                Some(c.call),
                Some(c.aliases),
            ),
            _ => (None, None, None, None, None),
        };

        // Prior observable results, translated into the edited program's
        // id spaces, for change detection and (set-local only) site reuse.
        let old: Option<OldResults<S>> = match (mode, delta) {
            (Mode::SetLocal, Some(_)) => Some(OldResults::from_results(prior_res)),
            (Mode::Patch, Some(d)) => Some(OldResults::permuted(prior_res, d, nv, ns)),
            (Mode::Full, Some(d)) if had_cache => Some(OldResults::remapped(prior_res, d, program)),
            _ => None,
        };
        let (is_new_proc, is_new_site) = match (old.is_some(), delta) {
            (true, Some(d)) => {
                let mut ip = vec![true; np];
                for m in d.proc_map.iter().flatten() {
                    ip[m.index()] = false;
                }
                let mut is = vec![true; ns];
                for m in d.site_map.iter().flatten() {
                    is[m.index()] = false;
                }
                (ip, is)
            }
            _ => (vec![true; np], vec![true; ns]),
        };

        // ---- Phase: local sets (flat LMOD/LUSE + the §3.3 extension) ----
        guard.checkpoint("incr.local")?;
        let phase_span = self.trace.span("incr.phase.local");
        // Declarations can only change through a universe change, which
        // forces a full rebuild — so under the set-local and patch modes
        // the cached `LOCAL(p)` vector is reused wholesale instead of
        // being reallocated (and compared) on every apply.
        let (local_sets, locals_reused) = match old_local_sets {
            Some(old_ls) if old_ls.len() == np => (old_ls, true),
            _ => (
                program
                    .local_sets()
                    .into_iter()
                    .map(S::from_dense_owned)
                    .collect::<Vec<S>>(),
                false,
            ),
        };
        let locals_dirty: Vec<bool> = if locals_reused {
            // The cache was only kept for modes that cannot touch
            // declarations, so a reused vector is exactly the fresh one.
            is_new_proc.clone()
        } else {
            vec![true; np]
        };
        let mut touched: Vec<bool> = match mode {
            Mode::Full => vec![true; np],
            _ => {
                let mut t = vec![false; np];
                if let Some(d) = delta {
                    for &p in &d.touched_procs {
                        t[p.index()] = true;
                    }
                }
                for (p, &fresh) in is_new_proc.iter().enumerate() {
                    t[p] |= fresh;
                }
                t
            }
        };
        if mode == Mode::Full {
            touched.iter_mut().for_each(|t| *t = true);
        }
        let (mut flat_mod, mut flat_use) = match old_flat {
            Some((mut m, mut u)) => {
                m.resize(np, S::empty(nv));
                u.resize(np, S::empty(nv));
                (m, u)
            }
            None => (vec![S::empty(nv); np], vec![S::empty(nv); np]),
        };
        for p in program.procs() {
            if !touched[p.index()] {
                continue;
            }
            let (m, u) = flat_effects_of(program, p);
            flat_mod[p.index()] = m;
            flat_use[p.index()] = u;
            stats.procs_flat_recomputed += 1;
        }
        guard.charge(0, np as u64);
        let (imod, iuse) = extend_flat(program, &flat_mod, &flat_use, &local_sets);

        // ---- Phase: RMOD/RUSE over the binding condensation ----
        drop(phase_span);
        let phase_span = self.trace.span("incr.phase.rmod");
        guard.checkpoint("incr.rmod")?;
        let mut beta_patch_nodes: Vec<usize> = Vec::new();
        let (mut bc, beta_fresh) = match (mode, old_beta) {
            (Mode::SetLocal, Some(bc)) => (bc, false),
            (Mode::Patch, Some(mut bc)) => {
                guard.checkpoint("incr.dyncond")?;
                let beta = BindingGraph::build(program);
                let new_edges = sorted_beta_edges(&beta);
                if bc.dc.graph().num_nodes() == beta.num_nodes() {
                    let (dels, ins) = diff_sorted(&bc.edges, &new_edges);
                    for (u, v) in dels {
                        beta_patch_nodes.extend(bc.dc.delete_edge(u, v).dirty);
                    }
                    for (u, v) in ins {
                        beta_patch_nodes.extend(bc.dc.insert_edge(u, v).dirty);
                    }
                    bc.beta = beta;
                    bc.edges = new_edges;
                    (bc, false)
                } else {
                    (fresh_beta_cache(beta, new_edges), true)
                }
            }
            _ => {
                let beta = BindingGraph::build(program);
                let edges = sorted_beta_edges(&beta);
                (fresh_beta_cache(beta, edges), true)
            }
        };
        let mut rmod_reused = 0usize;
        let mut rmod_recomputed = 0usize;
        let (new_seed_mod, rmod) = rmod_sweep_side(
            program,
            &bc.beta,
            &bc.dc,
            &imod,
            (!beta_fresh).then_some(&bc.seed_mod[..]),
            &beta_patch_nodes,
            &mut bc.rep_mod,
            &mut rmod_reused,
            &mut rmod_recomputed,
            guard,
        )?;
        bc.seed_mod = new_seed_mod;
        let (new_seed_use, ruse) = rmod_sweep_side(
            program,
            &bc.beta,
            &bc.dc,
            &iuse,
            (!beta_fresh).then_some(&bc.seed_use[..]),
            &beta_patch_nodes,
            &mut bc.rep_use,
            &mut rmod_reused,
            &mut rmod_recomputed,
            guard,
        )?;
        bc.seed_use = new_seed_use;
        stats.rmod_components_reused = rmod_reused;
        stats.rmod_components_recomputed = rmod_recomputed;

        // ---- Phase: IMOD⁺/IUSE⁺ (equation 5; one cheap boolean pass) ----
        drop(phase_span);
        let phase_span = self.trace.span("incr.phase.plus");
        guard.checkpoint("incr.plus")?;
        let plus_mod = compute_plus(program, &imod, &rmod, guard)?;
        let plus_use = compute_plus(program, &iuse, &ruse, guard)?;
        let plus_mod_dirty =
            diff_procs(&plus_mod, old.as_ref().map(|o| o.plus_mod.as_slice()), &is_new_proc);
        let plus_use_dirty =
            diff_procs(&plus_use, old.as_ref().map(|o| o.plus_use.as_slice()), &is_new_proc);

        // ---- Phase: GMOD/GUSE (maintained level-scheduled fixpoints) ----
        drop(phase_span);
        let phase_span = self.trace.span("incr.phase.gmod");
        guard.checkpoint("incr.gmod")?;
        let dp = program.max_level() as usize;
        let nproblems = dp.max(1);
        let mut call_patch_nodes: Vec<Vec<usize>> = vec![Vec::new(); nproblems];
        let (mut cc, call_fresh) = match (mode, old_call) {
            (Mode::SetLocal, Some(cc))
                if cc.dp == dp
                    && cc.problems.len() == nproblems
                    && cc.problems.iter().all(|p| p.dc.graph().num_nodes() == np) =>
            {
                (cc, false)
            }
            (Mode::Patch, Some(mut cc)) if cc.dp == dp && cc.problems.len() == nproblems => {
                guard.checkpoint("incr.gmod.patch")?;
                let call_graph = CallGraph::build(program);
                let triples = sorted_call_edges(program, call_graph.graph());
                for pc in &mut cc.problems {
                    while pc.dc.graph().num_nodes() < np {
                        pc.dc.add_node();
                        pc.rows_mod.push(S::empty(nv));
                        pc.rows_use.push(S::empty(nv));
                    }
                }
                let (dels, ins) = diff_sorted(&cc.edges, &triples);
                for (k, pc) in cc.problems.iter_mut().enumerate() {
                    let min_lvl = if dp <= 1 { 0 } else { k + 1 };
                    for &(f, t, lv) in &dels {
                        if lv >= min_lvl {
                            call_patch_nodes[k].extend(pc.dc.delete_edge(f, t).dirty);
                        }
                    }
                    for &(f, t, lv) in &ins {
                        if lv >= min_lvl {
                            call_patch_nodes[k].extend(pc.dc.insert_edge(f, t).dirty);
                        }
                    }
                }
                cc.edges = triples;
                (cc, false)
            }
            _ => {
                let call_graph = CallGraph::build(program);
                let triples = sorted_call_edges(program, call_graph.graph());
                (fresh_call_cache(dp, nproblems, np, nv, triples), true)
            }
        };
        let mut gmod_reused = 0usize;
        let mut gmod_recomputed = 0usize;
        let mut gmod_acc = (dp > 1).then(|| plus_mod.clone());
        let mut guse_acc = (dp > 1).then(|| plus_use.clone());
        for (k, pc) in cc.problems.iter_mut().enumerate() {
            let dirty_mod = (!call_fresh).then(|| {
                (
                    plus_mod_dirty.as_slice(),
                    locals_dirty.as_slice(),
                    call_patch_nodes[k].as_slice(),
                )
            });
            sweep_gmod_side(
                &pc.dc,
                &mut pc.rows_mod,
                &plus_mod,
                &local_sets,
                dirty_mod,
                nv,
                &pool,
                guard,
                &mut gmod_reused,
                &mut gmod_recomputed,
            )?;
            let dirty_use = (!call_fresh).then(|| {
                (
                    plus_use_dirty.as_slice(),
                    locals_dirty.as_slice(),
                    call_patch_nodes[k].as_slice(),
                )
            });
            sweep_gmod_side(
                &pc.dc,
                &mut pc.rows_use,
                &plus_use,
                &local_sets,
                dirty_use,
                nv,
                &pool,
                guard,
                &mut gmod_reused,
                &mut gmod_recomputed,
            )?;
            if let Some(acc) = &mut gmod_acc {
                for (a, r) in acc.iter_mut().zip(&pc.rows_mod) {
                    a.union_with(r);
                }
                guard.charge(np as u64, 0);
            }
            if let Some(acc) = &mut guse_acc {
                for (a, r) in acc.iter_mut().zip(&pc.rows_use) {
                    a.union_with(r);
                }
                guard.charge(np as u64, 0);
            }
        }
        let assemble_span = self.trace.span("incr.phase.gmod.assemble");
        let gmod = match gmod_acc {
            Some(acc) => acc,
            None => cc.problems[0].rows_mod.clone(),
        };
        let guse = match guse_acc {
            Some(acc) => acc,
            None => cc.problems[0].rows_use.clone(),
        };
        drop(assemble_span);
        stats.gmod_components_reused = gmod_reused;
        stats.gmod_components_recomputed = gmod_recomputed;
        let diff_span = self.trace.span("incr.phase.gmod.diff");
        let gmod_dirty = diff_procs(&gmod, old.as_ref().map(|o| o.gmod.as_slice()), &is_new_proc);
        let guse_dirty = diff_procs(&guse, old.as_ref().map(|o| o.guse.as_slice()), &is_new_proc);
        drop(diff_span);

        // ---- Phase: aliases, per-site projection, factoring ----
        drop(phase_span);
        let phase_span = self.trace.span("incr.phase.final");
        guard.checkpoint("incr.final")?;
        let (aliases, aliases_fresh) = match (mode, old_aliases) {
            // Alias pairs depend only on call sites and visibility, both
            // unchanged under a set-local edit.
            (Mode::SetLocal, Some(a)) => (a, false),
            _ => (AliasPairsIn::compute_guarded(program, guard)?, true),
        };
        let mut old_sites = old.map(|o| (o.dmod, o.duse, o.mods, o.uses));
        let no_old = old_sites.is_none();
        let mut dmod = Vec::with_capacity(ns);
        let mut duse = Vec::with_capacity(ns);
        let mut mods = Vec::with_capacity(ns);
        let mut uses = Vec::with_capacity(ns);
        let mut changed_sites = Vec::new();
        for s in program.sites() {
            let site = program.site(s);
            let callee = site.callee().index();
            let caller = site.caller();
            let i = s.index();
            let stale = no_old || is_new_site[i] || aliases_fresh || locals_dirty[callee];
            let redo_mod = stale || gmod_dirty[callee];
            let redo_use = stale || guse_dirty[callee];
            // Each side compares its fresh value against the (permuted)
            // old one *before* the other side may consume its slots, so
            // a one-sided redo still reports change correctly.
            let (dm, m, mod_changed) = if redo_mod {
                let dm = modref_core::dmod::project_site(program, s, &gmod[callee]);
                let m = aliases.extend_with_aliases(caller, &dm);
                let changed =
                    is_new_site[i] || old_sites.as_ref().is_none_or(|o| m != o.2[i]);
                (dm, m, changed)
            } else {
                let o = old_sites.as_mut().expect("a reused site has old results");
                (std::mem::take(&mut o.0[i]), std::mem::take(&mut o.2[i]), false)
            };
            let (du, u, use_changed) = if redo_use {
                let du = modref_core::dmod::project_site(program, s, &guse[callee]);
                let u = aliases.extend_with_aliases(caller, &du);
                let changed =
                    is_new_site[i] || old_sites.as_ref().is_none_or(|o| u != o.3[i]);
                (du, u, changed)
            } else {
                let o = old_sites.as_mut().expect("a reused site has old results");
                (std::mem::take(&mut o.1[i]), std::mem::take(&mut o.3[i]), false)
            };
            if redo_mod || redo_use {
                stats.sites_recomputed += 1;
            } else {
                stats.sites_reused += 1;
            }
            if mod_changed || use_changed {
                changed_sites.push(s);
            }
            dmod.push(dm);
            duse.push(du);
            mods.push(m);
            uses.push(u);
        }
        guard.charge(ns as u64, 0);
        guard.check()?;
        drop(phase_span);

        // ---- Commit ----
        let changed_procs: Vec<ProcId> = program
            .procs()
            .filter(|p| gmod_dirty[p.index()] || guse_dirty[p.index()])
            .collect();
        self.res = Results {
            imod,
            iuse,
            rmod,
            ruse,
            plus_mod,
            plus_use,
            gmod,
            guse,
            dmod,
            duse,
            mods,
            uses,
        };
        self.cache = Some(Cache {
            flat_mod,
            flat_use,
            local_sets,
            beta: bc,
            call: cc,
            aliases,
        });
        span.arg("full_rebuild", u64::from(stats.full_rebuild));
        span.arg("flat_recomputed", stats.procs_flat_recomputed as u64);
        span.arg("rmod_reused", stats.rmod_components_reused as u64);
        span.arg("rmod_recomputed", stats.rmod_components_recomputed as u64);
        span.arg("gmod_reused", stats.gmod_components_reused as u64);
        span.arg("gmod_recomputed", stats.gmod_components_recomputed as u64);
        span.arg("sites_reused", stats.sites_reused as u64);
        span.arg("sites_recomputed", stats.sites_recomputed as u64);
        self.stats = stats;
        Ok(IncrDelta {
            changed_procs,
            changed_sites,
        })
    }

    // ---- Accessors (mirroring `Summary`) ----

    /// `IMOD(p)` with the §3.3 nesting extension.
    pub fn imod(&self, p: ProcId) -> &S {
        &self.res.imod[p.index()]
    }

    /// `IUSE(p)` with the nesting extension.
    pub fn iuse(&self, p: ProcId) -> &S {
        &self.res.iuse[p.index()]
    }

    /// `RMOD(p)`: formals of `p` an invocation may modify.
    pub fn rmod(&self, p: ProcId) -> &S {
        &self.res.rmod[p.index()]
    }

    /// `RUSE(p)`.
    pub fn ruse(&self, p: ProcId) -> &S {
        &self.res.ruse[p.index()]
    }

    /// `IMOD⁺(p)` (equation 5).
    pub fn imod_plus(&self, p: ProcId) -> &S {
        &self.res.plus_mod[p.index()]
    }

    /// `IUSE⁺(p)`.
    pub fn iuse_plus(&self, p: ProcId) -> &S {
        &self.res.plus_use[p.index()]
    }

    /// `GMOD(p)`.
    pub fn gmod(&self, p: ProcId) -> &S {
        &self.res.gmod[p.index()]
    }

    /// `GUSE(p)`.
    pub fn guse(&self, p: ProcId) -> &S {
        &self.res.guse[p.index()]
    }

    /// All `GMOD` sets, indexed by procedure.
    pub fn gmod_all(&self) -> &[S] {
        &self.res.gmod
    }

    /// All `GUSE` sets, indexed by procedure.
    pub fn guse_all(&self) -> &[S] {
        &self.res.guse
    }

    /// `DMOD` restricted to call site `s` (before aliases).
    pub fn dmod_site(&self, s: CallSiteId) -> &S {
        &self.res.dmod[s.index()]
    }

    /// `DUSE` restricted to call site `s`.
    pub fn duse_site(&self, s: CallSiteId) -> &S {
        &self.res.duse[s.index()]
    }

    /// `MOD(s)`: the final answer for call site `s`.
    pub fn mod_site(&self, s: CallSiteId) -> &S {
        &self.res.mods[s.index()]
    }

    /// `USE(s)`.
    pub fn use_site(&self, s: CallSiteId) -> &S {
        &self.res.uses[s.index()]
    }

    /// All per-site `MOD` sets.
    pub fn mod_all(&self) -> &[S] {
        &self.res.mods
    }

    /// All per-site `USE` sets.
    pub fn use_all(&self) -> &[S] {
        &self.res.uses
    }
}

/// `true` when every surviving procedure and variable keeps its id — the
/// precondition for patching the cached graph structures in place.
fn identity_maps(d: &EditDelta) -> bool {
    d.proc_map
        .iter()
        .enumerate()
        .all(|(i, m)| m.map(ProcId::index) == Some(i))
        && d.var_map
            .iter()
            .enumerate()
            .all(|(i, m)| m.map(VarId::index) == Some(i))
}

/// Prior observable results, translated into the edited program's id
/// spaces — the diff base for change detection and (set-local) site
/// reuse.
struct OldResults<S: EffectSet> {
    plus_mod: Vec<S>,
    plus_use: Vec<S>,
    gmod: Vec<S>,
    guse: Vec<S>,
    dmod: Vec<S>,
    duse: Vec<S>,
    mods: Vec<S>,
    uses: Vec<S>,
}

impl<S: EffectSet> OldResults<S> {
    /// Set-local: every id space is untouched; the results move verbatim.
    fn from_results(res: Results<S>) -> OldResults<S> {
        OldResults {
            plus_mod: res.plus_mod,
            plus_use: res.plus_use,
            gmod: res.gmod,
            guse: res.guse,
            dmod: res.dmod,
            duse: res.duse,
            mods: res.mods,
            uses: res.uses,
        }
    }

    /// Structural patch: procedure and variable ids are identities, but
    /// call-site ids may have shifted — permute the per-site vectors.
    fn permuted(res: Results<S>, d: &EditDelta, nv: usize, ns: usize) -> OldResults<S> {
        let permute = |old: Vec<S>| -> Vec<S> {
            let mut out = vec![S::empty(nv); ns];
            for (i, set) in old.into_iter().enumerate() {
                if let Some(s) = d.site_map.get(i).copied().flatten() {
                    out[s.index()] = set;
                }
            }
            out
        };
        OldResults {
            plus_mod: res.plus_mod,
            plus_use: res.plus_use,
            gmod: res.gmod,
            guse: res.guse,
            dmod: permute(res.dmod),
            duse: permute(res.duse),
            mods: permute(res.mods),
            uses: permute(res.uses),
        }
    }

    /// Full rebuild after a universe change: remap every id space so the
    /// reported [`IncrDelta`] still names exactly what moved.
    fn remapped(res: Results<S>, d: &EditDelta, program: &Program) -> OldResults<S> {
        let np = program.num_procs();
        let nv = program.num_vars();
        let ns = program.num_sites();
        let remap_set = |old: &S| -> S {
            S::from_elems(
                nv,
                old.iter().filter_map(|i| d.var_map[i].map(VarId::index)),
            )
        };
        let remap_proc_vec = |old: &[S]| -> Vec<S> {
            let mut out = vec![S::empty(nv); np];
            for (i, set) in old.iter().enumerate() {
                if let Some(p) = d.proc_map.get(i).copied().flatten() {
                    out[p.index()] = remap_set(set);
                }
            }
            out
        };
        let remap_site_vec = |old: &[S]| -> Vec<S> {
            let mut out = vec![S::empty(nv); ns];
            for (i, set) in old.iter().enumerate() {
                if let Some(s) = d.site_map.get(i).copied().flatten() {
                    out[s.index()] = remap_set(set);
                }
            }
            out
        };
        OldResults {
            plus_mod: remap_proc_vec(&res.plus_mod),
            plus_use: remap_proc_vec(&res.plus_use),
            gmod: remap_proc_vec(&res.gmod),
            guse: remap_proc_vec(&res.guse),
            dmod: remap_site_vec(&res.dmod),
            duse: remap_site_vec(&res.duse),
            mods: remap_site_vec(&res.mods),
            uses: remap_site_vec(&res.uses),
        }
    }
}

/// Two-pointer diff of two sorted multisets: `(deletions, insertions)`
/// turning `old` into `new`.
fn diff_sorted<T: Ord + Copy>(old: &[T], new: &[T]) -> (Vec<T>, Vec<T>) {
    let (mut dels, mut ins) = (Vec::new(), Vec::new());
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() || j < new.len() {
        match (old.get(i), new.get(j)) {
            (Some(a), Some(b)) if a == b => {
                i += 1;
                j += 1;
            }
            (Some(a), Some(b)) if a < b => {
                dels.push(*a);
                i += 1;
            }
            (Some(_), Some(b)) => {
                ins.push(*b);
                j += 1;
            }
            (Some(a), None) => {
                dels.push(*a);
                i += 1;
            }
            (None, Some(b)) => {
                ins.push(*b);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    (dels, ins)
}

fn sorted_beta_edges(beta: &BindingGraph) -> Vec<(usize, usize)> {
    let mut v: Vec<(usize, usize)> = beta.graph().edges().map(|e| (e.from, e.to)).collect();
    v.sort_unstable();
    v
}

fn sorted_call_edges(program: &Program, g: &DiGraph) -> Vec<(usize, usize, usize)> {
    let mut v: Vec<(usize, usize, usize)> = g
        .edges()
        .map(|e| {
            (
                e.from,
                e.to,
                program.proc_(ProcId::new(e.to)).level() as usize,
            )
        })
        .collect();
    v.sort_unstable();
    v
}

fn fresh_beta_cache(beta: BindingGraph, edges: Vec<(usize, usize)>) -> BetaCache {
    let dc = DynCondensation::build(beta.graph().clone());
    BetaCache {
        beta,
        edges,
        dc,
        seed_mod: Vec::new(),
        seed_use: Vec::new(),
        rep_mod: Vec::new(),
        rep_use: Vec::new(),
    }
}

/// Builds the `GMOD` problem family from scratch. Problem `k` (0-based)
/// restricts the call multi-graph to edges whose callee sits at nesting
/// level `≥ k + 1`; for two-level programs the single problem runs on the
/// full graph, matching the batch solver exactly.
fn fresh_call_cache<S: EffectSet>(
    dp: usize,
    nproblems: usize,
    np: usize,
    nv: usize,
    triples: Vec<(usize, usize, usize)>,
) -> CallCache<S> {
    let mut problems = Vec::with_capacity(nproblems);
    for k in 0..nproblems {
        let min_lvl = if dp <= 1 { 0 } else { k + 1 };
        let mut g = DiGraph::new(np);
        for &(f, t, lv) in &triples {
            if lv >= min_lvl {
                g.add_edge(f, t);
            }
        }
        problems.push(ProblemCache {
            dc: DynCondensation::build(g),
            rows_mod: vec![S::empty(nv); np],
            rows_use: vec![S::empty(nv); np],
        });
    }
    CallCache {
        dp,
        edges: triples,
        problems,
    }
}

/// Flat (call-free) `LMOD`/`LUSE` of one procedure — the same statement
/// walk [`modref_ir::LocalEffects::compute`] performs per procedure.
fn flat_effects_of<S: EffectSet>(program: &Program, p: ProcId) -> (S, S) {
    let nv = program.num_vars();
    let mut m = S::empty(nv);
    let mut u = S::empty(nv);
    walk_stmts(program.proc_(p).body(), &mut |s| {
        m.union_with(&S::from_dense_owned(modref_ir::lmod_of_stmt(program, s)));
        u.union_with(&S::from_dense_owned(modref_ir::luse_of_stmt(program, s)));
    });
    (m, u)
}

/// The §3.3 nesting extension, children before parents — a verbatim
/// replica of the batch sweep so extended sets stay bit-identical.
fn extend_flat<S: EffectSet>(
    program: &Program,
    flat_mod: &[S],
    flat_use: &[S],
    local_sets: &[S],
) -> (Vec<S>, Vec<S>) {
    let mut order: Vec<ProcId> = program.procs().collect();
    order.sort_by_key(|&p| std::cmp::Reverse(program.proc_(p).level()));
    let mut imod = flat_mod.to_vec();
    let mut iuse = flat_use.to_vec();
    for &p in &order {
        let children = program.proc_(p).children().to_vec();
        for q in children {
            let (child_m, child_u) = (imod[q.index()].clone(), iuse[q.index()].clone());
            imod[p.index()].union_with_difference(&child_m, &local_sets[q.index()]);
            iuse[p.index()].union_with_difference(&child_u, &local_sets[q.index()]);
        }
    }
    (imod, iuse)
}

/// One side of the Figure 1 sweep over the maintained binding
/// condensation. With no cached seeds (`old_seeds: None`) every component
/// is recomputed in a dense ascending-id pass; with a cache, a
/// [`SparseSweep`] visits only components whose seeds moved, whose
/// structure a patch touched, or whose successors' representer values
/// changed — the early cutoff stops the frontier at any component whose
/// recomputed value equals its cached one. `rep` holds the per-*node*
/// representer booleans and is updated in place; the broadcast (step (4)
/// of Figure 1, one boolean per formal) always runs in full.
#[allow(clippy::too_many_arguments)]
fn rmod_sweep_side<S: EffectSet>(
    program: &Program,
    beta: &BindingGraph,
    dc: &DynCondensation,
    initial: &[S],
    old_seeds: Option<&[bool]>,
    patch_nodes: &[usize],
    rep: &mut Vec<bool>,
    reused: &mut usize,
    recomputed: &mut usize,
    guard: &Guard,
) -> Result<(Vec<bool>, Vec<S>), Interrupt> {
    let n = beta.num_nodes();
    let mut seeds = Vec::with_capacity(n);
    for node in 0..n {
        let formal = beta.formal_of_node(node);
        let (owner, _) = program.formal_position(formal).expect("β nodes are formals");
        seeds.push(initial[owner.index()].contains(formal.index()));
    }
    guard.charge(0, n as u64);
    guard.check()?;

    let sccs = dc.sccs();
    let cond = dc.cond();
    match old_seeds {
        None => {
            rep.clear();
            rep.resize(n, false);
            // Ascending SccId = successors first; every component's value
            // is the OR of its member seeds and successor values.
            for c in 0..sccs.len() {
                let mut value = false;
                for &m in sccs.members(c) {
                    value |= seeds[m];
                }
                for d in cond.successor_nodes(c) {
                    value |= rep[sccs.members(d)[0]];
                }
                for &m in sccs.members(c) {
                    rep[m] = value;
                }
            }
            *recomputed += sccs.len();
            guard.charge(0, sccs.len() as u64);
        }
        Some(old) => {
            debug_assert_eq!(old.len(), n, "β node set is stable under cached applies");
            let mut sweep = SparseSweep::new(dc.cond_preds(), dc.levels().level_map());
            for (node, (&new, &was)) in seeds.iter().zip(old).enumerate() {
                if new != was {
                    sweep.seed(sccs.component_of(node));
                }
            }
            for &node in patch_nodes {
                sweep.seed(sccs.component_of(node));
            }
            let mut batch = Vec::new();
            while sweep.next_batch(&mut batch) {
                for &c in &batch {
                    let mut value = false;
                    for &m in sccs.members(c) {
                        value |= seeds[m];
                    }
                    for d in cond.successor_nodes(c) {
                        value |= rep[sccs.members(d)[0]];
                    }
                    let changed = sccs.members(c).iter().any(|&m| rep[m] != value);
                    for &m in sccs.members(c) {
                        rep[m] = value;
                    }
                    sweep.update(c, changed);
                }
            }
            *reused += sweep.total() - sweep.recomputed();
            *recomputed += sweep.recomputed();
            guard.charge(0, sweep.recomputed() as u64);
        }
    }
    guard.check()?;

    // Broadcast — the exact step (4) of Figure 1, unbound formals taking
    // their IMOD bit directly.
    let mut rmod = vec![S::empty(program.num_vars()); program.num_procs()];
    for p in program.procs() {
        for &f in program.proc_(p).formals() {
            let in_rmod = match beta.node_of_formal(f) {
                Some(node) => rep[node],
                None => initial[p.index()].contains(f.index()),
            };
            if in_rmod {
                rmod[p.index()].insert(f.index());
            }
        }
    }
    Ok((seeds, rmod))
}

/// Equation (5), exactly as [`modref_core::compute_imod_plus`] computes
/// it (`rmod[callee]` holding only own-formal bits makes the membership
/// test equivalent to `RmodSolution::is_modified`).
fn compute_plus<S: EffectSet>(
    program: &Program,
    initial: &[S],
    rmod: &[S],
    guard: &Guard,
) -> Result<Vec<S>, Interrupt> {
    let mut plus = initial.to_vec();
    let mut steps = 0u64;
    for s in program.sites() {
        let site = program.site(s);
        let caller = site.caller();
        let callee = site.callee();
        let callee_formals = program.proc_(callee).formals();
        for (pos, arg) in site.args().iter().enumerate() {
            steps += 1;
            if !rmod[callee.index()].contains(callee_formals[pos].index()) {
                continue;
            }
            if let Actual::Ref(r) = arg {
                plus[caller.index()].insert(r.var.index());
            }
        }
    }
    guard.charge(0, steps);
    guard.check()?;
    Ok(plus)
}

/// `new[p] != old[p]` per procedure (new procedures always dirty; no old
/// results means everything is; an old vector shorter than `new` — ids
/// appended by the edit — dirties the tail).
fn diff_procs<S: EffectSet>(new: &[S], old: Option<&[S]>, is_new: &[bool]) -> Vec<bool> {
    match old {
        Some(old) => (0..new.len())
            .map(|p| is_new[p] || old.get(p).is_none_or(|o| new[p] != *o))
            .collect(),
        None => vec![true; new.len()],
    }
}

/// Solves one batch of pairwise-independent components on the pool with
/// the batch kernel, writes the rows back per node, and reports each
/// component's value-changed bit to `on_done`.
#[allow(clippy::too_many_arguments)]
fn run_batch<S: EffectSet>(
    batch: &[SccId],
    dc: &DynCondensation,
    rows: &mut [S],
    seeds: &[S],
    locals: &[S],
    nv: usize,
    pool: &ThreadPool,
    guard: &Guard,
    mut on_done: impl FnMut(SccId, bool),
) -> Result<(), Interrupt> {
    let graph = dc.graph();
    let sccs = dc.sccs();
    let comp_map = sccs.component_map();
    let comp_pos = dc.comp_pos();
    let results = {
        let g_final: &[S] = rows;
        pool.par_map_while(
            batch.len(),
            || !guard.should_stop(),
            |i| {
                if i % 64 == 0 {
                    let _ = guard.check();
                }
                solve_component(
                    batch[i], graph, sccs, comp_map, comp_pos, seeds, locals, g_final, nv, guard,
                )
            },
        )
    };
    let mut work = OpCounter::new();
    for (slot, &c) in results.into_iter().zip(batch) {
        let Some((sets, counter)) = slot else {
            guard.check()?;
            return Err(guard.interrupt().unwrap_or(Interrupt::Halted));
        };
        work += counter;
        let members = sccs.members(c);
        let changed = sets.iter().zip(members).any(|(set, &m)| rows[m] != *set);
        for (set, &m) in sets.into_iter().zip(members) {
            rows[m] = set;
        }
        on_done(c, changed);
    }
    guard.charge(work.bitvec_steps, work.bool_steps);
    guard.check()
}

/// One side of one `GMOD` problem over its maintained condensation.
/// `dirty: None` is the dense path (fresh condensation, zeroed rows):
/// every level group is solved. `dirty: Some((seed_dirty, locals_dirty,
/// patch_nodes))` is the sparse path: the frontier starts from
/// procedures whose `IMOD⁺` seeds moved, the *predecessors* of
/// procedures whose `LOCAL` filter moved (`LOCAL(q)` is applied on edges
/// into `q`, so it is the callers' input), and the nodes an edge patch
/// touched — then grows only through components whose recomputed
/// fixpoint actually changed.
#[allow(clippy::too_many_arguments)]
fn sweep_gmod_side<S: EffectSet>(
    dc: &DynCondensation,
    rows: &mut [S],
    seeds: &[S],
    locals: &[S],
    dirty: Option<(&[bool], &[bool], &[usize])>,
    nv: usize,
    pool: &ThreadPool,
    guard: &Guard,
    reused: &mut usize,
    recomputed: &mut usize,
) -> Result<(), Interrupt> {
    guard.checkpoint("incr.gmod.sweep")?;
    match dirty {
        None => {
            let levels = dc.levels();
            for level in 0..levels.num_levels() {
                run_batch(
                    levels.group(level),
                    dc,
                    rows,
                    seeds,
                    locals,
                    nv,
                    pool,
                    guard,
                    |_, _| {},
                )?;
            }
            *recomputed += dc.sccs().len();
        }
        Some((seed_dirty, locals_dirty, patch_nodes)) => {
            let comp_map = dc.sccs().component_map();
            let mut sweep = SparseSweep::new(dc.cond_preds(), dc.levels().level_map());
            for (p, &d) in seed_dirty.iter().enumerate() {
                if d {
                    sweep.seed(comp_map[p]);
                }
            }
            for (q, &d) in locals_dirty.iter().enumerate() {
                if d {
                    for &u in dc.predecessors(q) {
                        sweep.seed(comp_map[u]);
                    }
                }
            }
            for &node in patch_nodes {
                sweep.seed(comp_map[node]);
            }
            let mut batch = Vec::new();
            while sweep.next_batch(&mut batch) {
                run_batch(&batch, dc, rows, seeds, locals, nv, pool, guard, |c, changed| {
                    sweep.update(c, changed)
                })?;
            }
            *reused += sweep.total() - sweep.recomputed();
            *recomputed += sweep.recomputed();
        }
    }
    Ok(())
}
#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::{Expr, ProgramBuilder};

    fn base_engine() -> (IncrementalEngine, VarId, VarId, ProcId, ProcId, CallSiteId) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let h = b.global("h");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::load(g));
        let q = b.proc_("q", &[]);
        b.assign(q, h, Expr::constant(1));
        let main = b.main();
        let s = b.call(main, p, &[g]);
        b.call(main, q, &[]);
        let program = b.finish().expect("valid");
        (IncrementalEngine::new(program), g, h, p, q, s)
    }

    fn assert_matches_scratch(engine: &IncrementalEngine) {
        let summary = Analyzer::new().analyze(engine.program());
        for p in engine.program().procs() {
            assert_eq!(engine.rmod(p), summary.rmod(p), "rmod({p})");
            assert_eq!(engine.ruse(p), summary.ruse(p), "ruse({p})");
            assert_eq!(engine.imod_plus(p), summary.imod_plus(p), "plus({p})");
            assert_eq!(engine.gmod(p), summary.gmod(p), "gmod({p})");
            assert_eq!(engine.guse(p), summary.guse(p), "guse({p})");
        }
        for s in engine.program().sites() {
            assert_eq!(engine.dmod_site(s), summary.dmod_site(s), "dmod({s})");
            assert_eq!(engine.duse_site(s), summary.duse_site(s), "duse({s})");
            assert_eq!(engine.mod_site(s), summary.mod_site(s), "mod({s})");
            assert_eq!(engine.use_site(s), summary.use_site(s), "use({s})");
        }
    }

    #[test]
    fn initial_build_matches_scratch() {
        let (engine, ..) = base_engine();
        assert!(engine.stats().full_rebuild);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn set_local_effects_applies_incrementally() {
        let (mut engine, g, h, _p, q, s) = base_engine();
        let delta = engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: vec![g],
                uses: vec![h],
            })
            .expect("valid edit");
        assert!(!engine.stats().full_rebuild);
        assert!(delta.changed_procs.contains(&q));
        assert_matches_scratch(&engine);
        let _ = s;
    }

    #[test]
    fn unrelated_edit_reuses_components() {
        let (mut engine, g, _h, _p, q, _s) = base_engine();
        // Re-assert q's existing effects: nothing changes downstream.
        let before = engine.gmod(q).clone();
        engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: engine.gmod(q).iter().map(VarId::new).collect(),
                uses: vec![],
            })
            .expect("valid edit");
        assert_eq!(&before, engine.gmod(q));
        assert!(engine.stats().gmod_components_reused > 0);
        assert_matches_scratch(&engine);
        let _ = g;
    }

    #[test]
    fn structural_edits_apply_incrementally() {
        let (mut engine, g, h, p, _q, _s) = base_engine();
        engine
            .apply(&Edit::AddCallSite {
                caller: ProcId::MAIN,
                callee: p,
                args: vec![Actual::Ref(modref_ir::Ref::scalar(h))],
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::AddProcedure {
                name: "fresh".into(),
                parent: ProcId::MAIN,
                formals: vec!["z".into()],
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        let s0 = CallSiteId::new(0);
        engine
            .apply(&Edit::RebindActual {
                site: s0,
                position: 0,
                actual: Actual::Ref(modref_ir::Ref::scalar(g)),
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::RemoveCallSite { site: s0 })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        // The add-call edit above appended a second call to p; drop it so
        // p becomes call-free and removable.
        engine
            .apply(&Edit::RemoveCallSite {
                site: CallSiteId::new(1),
            })
            .expect("valid edit");
        assert_matches_scratch(&engine);
        engine
            .apply(&Edit::RemoveProcedure { proc_: p })
            .expect("valid edit");
        assert_matches_scratch(&engine);
    }

    #[test]
    fn rejected_edit_leaves_everything_intact() {
        let (mut engine, ..) = base_engine();
        let before_gmod: Vec<BitSet> = engine.gmod_all().to_vec();
        let err = engine
            .apply(&Edit::RemoveProcedure {
                proc_: ProcId::MAIN,
            })
            .expect_err("removing main is rejected");
        assert!(matches!(err, EditError::RemoveMain));
        assert_eq!(engine.gmod_all(), &before_gmod[..]);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn refresh_is_idempotent() {
        let (mut engine, g, _h, _p, q, _s) = base_engine();
        engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: vec![g],
                uses: vec![],
            })
            .expect("valid edit");
        let gmods: Vec<BitSet> = engine.gmod_all().to_vec();
        engine.refresh();
        assert!(engine.stats().full_rebuild);
        assert_eq!(engine.gmod_all(), &gmods[..]);
    }

    #[test]
    fn analyzer_extension_carries_threads() {
        let (engine, ..) = base_engine();
        let program = engine.program().clone();
        let via_analyzer = Analyzer::new().threads(2).incremental(program);
        assert_matches_scratch(&via_analyzer);
    }

    #[test]
    fn reasserting_local_effects_cuts_off_everything() {
        let (mut engine, _g, h, _p, q, _s) = base_engine();
        // q already writes exactly {h}; re-asserting the same effects must
        // cut off at the seeds — zero components recomputed anywhere.
        let delta = engine
            .apply(&Edit::SetLocalEffects {
                proc_: q,
                mods: vec![h],
                uses: vec![],
            })
            .expect("valid edit");
        assert!(delta.changed_procs.is_empty());
        assert!(delta.changed_sites.is_empty());
        let s = engine.stats();
        assert!(!s.full_rebuild);
        assert_eq!(s.rmod_components_recomputed, 0);
        assert_eq!(s.gmod_components_recomputed, 0);
        assert_eq!(s.sites_recomputed, 0);
        assert!(s.sites_reused > 0);
        assert_matches_scratch(&engine);
    }

    #[test]
    fn structural_patch_reuses_components() {
        let (mut engine, _g, h, p, _q, _s) = base_engine();
        // A new call with a *global* actual patches the call condensation
        // but adds no binding edge, so Figure 1 reuses every component.
        engine
            .apply(&Edit::AddCallSite {
                caller: ProcId::MAIN,
                callee: p,
                args: vec![Actual::Ref(modref_ir::Ref::scalar(h))],
            })
            .expect("valid edit");
        let s = engine.stats();
        assert!(!s.full_rebuild);
        assert_eq!(s.rmod_components_recomputed, 0);
        assert!(s.gmod_components_reused > 0);
        assert_matches_scratch(&engine);
    }
}
