//! Shared renderers for per-site result sets.
//!
//! Three consumers print the same `MOD`/`DMOD`/`USE` report: the CLI's
//! batch `analyze`, its incremental `analyze --edits`, and the analysis
//! server's `query` responses (`modref-serve`). Report formatting is part
//! of the machine-readable contract — scripts and the protocol soak suite
//! compare output byte for byte — so there is exactly one renderer, here,
//! and every consumer goes through it. [`SiteSets`] collects the three
//! set families in call-site index order from either a batch
//! [`Summary`](modref_core::Summary) or a live [`IncrementalEngine`];
//! [`SiteSets::conservative`] is the sound widened fallback a degraded
//! request reports (the same shape the engine's own degradation path
//! uses, so "exact ⊆ reported" holds everywhere).

use std::fmt::Write as _;

use modref_bitset::{BitSet, EffectSet};
use modref_ir::{CallSiteId, Program, VarId};
use modref_trace::escape_json;

use crate::engine::IncrementalEngineIn;
#[cfg(test)]
use crate::engine::IncrementalEngine;

/// The three per-site set families every analyze-style report prints,
/// collected in call-site index order so the batch
/// [`Summary`](modref_core::Summary) and the incremental engine can feed
/// the same renderers.
#[derive(Debug, Clone)]
pub struct SiteSets {
    /// Final alias-factored `MOD` per call site.
    pub mods: Vec<BitSet>,
    /// Final alias-factored `USE` per call site.
    pub uses: Vec<BitSet>,
    /// Direct (pre-alias) `DMOD` per call site.
    pub dmods: Vec<BitSet>,
}

impl SiteSets {
    /// Collects the sets from a batch analysis summary.
    pub fn from_summary(program: &Program, summary: &modref_core::Summary) -> Self {
        SiteSets {
            mods: program.sites().map(|s| summary.mod_site(s).clone()).collect(),
            uses: program.sites().map(|s| summary.use_site(s).clone()).collect(),
            dmods: program
                .sites()
                .map(|s| summary.dmod_site(s).clone())
                .collect(),
        }
    }

    /// Collects the sets from a live incremental engine.
    pub fn from_engine<S: EffectSet>(engine: &IncrementalEngineIn<S>) -> Self {
        let program = engine.program();
        SiteSets {
            mods: program
                .sites()
                .map(|s| engine.mod_site(s).to_dense())
                .collect(),
            uses: program
                .sites()
                .map(|s| engine.use_site(s).to_dense())
                .collect(),
            dmods: program
                .sites()
                .map(|s| engine.dmod_site(s).to_dense())
                .collect(),
        }
    }

    /// The sound conservative fallback: every set at a site widened to the
    /// caller's visible set — the same per-site shape the engine's
    /// degradation path reports, so anything observable at run time is
    /// inside these sets regardless of what a cut-short analysis knew.
    pub fn conservative(program: &Program) -> Self {
        let visible = program.visible_sets();
        let per_site: Vec<BitSet> = program
            .sites()
            .map(|s| visible[program.site(s).caller().index()].clone())
            .collect();
        SiteSets {
            mods: per_site.clone(),
            uses: per_site.clone(),
            dmods: per_site,
        }
    }
}

/// Renders a variable set as the report's sorted `{a, b}` form (`∅` when
/// empty).
pub fn set_names(program: &Program, set: &BitSet) -> String {
    let mut v: Vec<&str> = set
        .iter()
        .map(|i| program.var_name(VarId::new(i)))
        .collect();
    v.sort_unstable();
    if v.is_empty() {
        "∅".to_owned()
    } else {
        format!("{{{}}}", v.join(", "))
    }
}

/// The per-site text report shared by plain and `--edits` analyses (and
/// the server's text-mode clients). One line group per call site.
pub fn render_text(program: &Program, sets: &SiteSets, no_use: bool, no_alias: bool) -> String {
    let mut out = String::new();
    for site in program.sites() {
        let info = program.site(site);
        let _ = writeln!(
            out,
            "site {site}: call {} (in {})",
            program.proc_name(info.callee()),
            program.proc_name(info.caller())
        );
        let _ = writeln!(out, "  MOD  = {}", set_names(program, &sets.mods[site.index()]));
        if !no_alias {
            let _ = writeln!(out, "  DMOD = {}", set_names(program, &sets.dmods[site.index()]));
        }
        if !no_use {
            let _ = writeln!(out, "  USE  = {}", set_names(program, &sets.uses[site.index()]));
        }
    }
    out
}

/// Hand-rolled JSON report over all sites (identifiers are
/// `[A-Za-z0-9_]`, but escape anyway). Ends with a newline; `analyze
/// --json` prints this verbatim and the server embeds it verbatim, which
/// is what makes query responses byte-comparable to batch output.
pub fn render_json(program: &Program, sets: &SiteSets) -> String {
    render_json_filtered(program, sets, None)
}

/// [`render_json`] restricted to a single call site (`{"sites":[…one…]}`).
pub fn render_json_site(program: &Program, sets: &SiteSets, site: CallSiteId) -> String {
    render_json_filtered(program, sets, Some(site))
}

/// The single-site object rendered directly from one answer's sets —
/// byte-identical to [`render_json_site`] over a full [`SiteSets`] with
/// the same values, which is what lets the demand-driven query path and
/// the exhaustive path share one output contract.
pub fn render_json_site_answer(
    program: &Program,
    site: CallSiteId,
    mods: &BitSet,
    uses: &BitSet,
    dmod: &BitSet,
) -> String {
    let esc = escape_json;
    let info = program.site(site);
    format!(
        "{{\"sites\":[{{\"id\":{},\"caller\":\"{}\",\"callee\":\"{}\",\"mod\":{},\"use\":{},\"dmod\":{}}}]}}\n",
        site.index(),
        esc(program.proc_name(info.caller())),
        esc(program.proc_name(info.callee())),
        set_names_json(program, mods),
        set_names_json(program, uses),
        set_names_json(program, dmod),
    )
}

/// `{"proc":…,"gmod":[…],"guse":[…]}` with the same sorted-quoted-name
/// arrays the site report uses. One renderer for the CLI's `--query
/// proc:NAME` and the server's `query proc` responses.
pub fn render_json_proc(program: &Program, name: &str, gmod: &BitSet, guse: &BitSet) -> String {
    format!(
        "{{\"proc\":\"{}\",\"gmod\":{},\"guse\":{}}}\n",
        escape_json(name),
        set_names_json(program, gmod),
        set_names_json(program, guse)
    )
}

/// The sorted `["a","b"]` JSON array every renderer uses for a set.
fn set_names_json(program: &Program, set: &BitSet) -> String {
    let mut parts: Vec<String> = set
        .iter()
        .map(|i| format!("\"{}\"", escape_json(program.var_name(VarId::new(i)))))
        .collect();
    parts.sort();
    format!("[{}]", parts.join(","))
}

fn render_json_filtered(program: &Program, sets: &SiteSets, only: Option<CallSiteId>) -> String {
    let esc = escape_json;
    let names = |set: &BitSet| set_names_json(program, set);
    let mut out = String::from("{\"sites\":[");
    let mut emitted = 0usize;
    for site in program.sites() {
        if only.is_some_and(|s| s != site) {
            continue;
        }
        if emitted > 0 {
            out.push(',');
        }
        emitted += 1;
        let info = program.site(site);
        let _ = write!(
            out,
            "{{\"id\":{},\"caller\":\"{}\",\"callee\":\"{}\",\"mod\":{},\"use\":{},\"dmod\":{}}}",
            site.index(),
            esc(program.proc_name(info.caller())),
            esc(program.proc_name(info.callee())),
            names(&sets.mods[site.index()]),
            names(&sets.uses[site.index()]),
            names(&sets.dmods[site.index()]),
        );
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_core::Analyzer;
    use modref_ir::{Expr, ProgramBuilder};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[g]);
        b.finish().expect("valid")
    }

    #[test]
    fn engine_and_summary_renders_agree() {
        let program = sample();
        let summary = Analyzer::new().analyze(&program);
        let engine = IncrementalEngine::new(program.clone());
        let from_summary = SiteSets::from_summary(&program, &summary);
        let from_engine = SiteSets::from_engine(&engine);
        assert_eq!(
            render_json(&program, &from_summary),
            render_json(&program, &from_engine)
        );
        assert_eq!(
            render_text(&program, &from_summary, false, false),
            render_text(&program, &from_engine, false, false)
        );
    }

    #[test]
    fn single_site_filter_matches_full_report_slice() {
        let program = sample();
        let summary = Analyzer::new().analyze(&program);
        let sets = SiteSets::from_summary(&program, &summary);
        let site = program.sites().next().expect("one site");
        let one = render_json_site(&program, &sets, site);
        let all = render_json(&program, &sets);
        // The lone site's object appears verbatim inside the full report.
        let body = one
            .trim_end()
            .strip_prefix("{\"sites\":[")
            .and_then(|s| s.strip_suffix("]}"))
            .expect("shape");
        assert!(all.contains(body), "{all} should contain {body}");
    }

    #[test]
    fn conservative_sets_contain_exact_sets() {
        let program = sample();
        let summary = Analyzer::new().analyze(&program);
        let exact = SiteSets::from_summary(&program, &summary);
        let wide = SiteSets::conservative(&program);
        for s in program.sites() {
            let i = s.index();
            assert!(exact.mods[i].is_subset(&wide.mods[i]));
            assert!(exact.uses[i].is_subset(&wide.uses[i]));
            assert!(exact.dmods[i].is_subset(&wide.dmods[i]));
        }
    }
}
