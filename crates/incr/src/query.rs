//! The per-session query engine: one front door over the *exhaustive*
//! incremental cache and the *demand-driven* memo, so a consumer (the
//! CLI's `--query`, a `modref serve` session) can answer point queries
//! without solving the world.
//!
//! A [`QueryEngine`] starts in one of two modes:
//!
//! * **Full** — wraps a warm [`IncrementalEngine`]. Every summary is
//!   already solved; point queries are O(1) reads of its cached rows.
//! * **Lazy** — holds just the program plus a
//!   [`DemandMemo`](modref_core::DemandMemo). Nothing is solved up
//!   front; `MOD(site)` / `GMOD(p)` queries walk only the β/call-graph
//!   slice the query reaches (see `modref_core::demand`), memoizing
//!   partial fixpoints as they go. An `all` query *promotes* the session
//!   to Full (one exhaustive solve, cached thereafter).
//!
//! The memo-sharing/invalidation contract: in Full mode the exhaustive
//! cache *is* the memo — queries read it directly. In Lazy mode an edit
//! goes through the same [`Edit`] vocabulary (pure IR apply, no
//! analysis) and discards the demand memo, exactly as an apply
//! invalidates the incremental cache. Either way a query after an edit
//! can never observe stale sets.
//!
//! Degradation mirrors the incremental engine's ladder: a lazy query cut
//! short by the guard (budget, deadline, cancellation, injected fault)
//! or a contained panic answers with the conservative visible-set
//! widening — a superset of the exact answer — and reports why; the memo
//! keeps only finalised values across an interrupt, and is dropped on a
//! contained panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use modref_core::demand::{
    conservative_proc_answer, conservative_site_answer, query_proc_guarded, query_site_guarded,
    DemandMemoIn, ProcAnswer, SiteAnswer,
};
use modref_core::{Analyzer, Guard};
use modref_bitset::{BitSet, EffectSet, HybridSet, OpCounter, SetRepr};
use modref_core::Trace;
use modref_ir::{CallSiteId, Edit, EditError, ProcId, Program};

use crate::engine::{IncrDelta, IncrOutcome, IncrementalEngineIn, IncrementalExt, ReplayError};
use crate::render::SiteSets;
use crate::script::Script;

/// One answered query: the sets, why they were widened (if they were),
/// and the work charged in the paper's cost units.
#[derive(Debug)]
pub struct QueryOutcome<T> {
    /// The answer — exact unless `degraded` is set, in which case it is
    /// the sound conservative widening.
    pub answer: T,
    /// `Some(reason)` when the query was cut short and the answer is the
    /// visible-set fallback.
    pub degraded: Option<String>,
    /// Operations charged by this query (zero for Full-mode cache reads).
    pub ops: OpCounter,
}

enum State<S: EffectSet> {
    Lazy {
        program: Program,
        memo: DemandMemoIn<S>,
        threads: Option<usize>,
        trace: Trace,
    },
    Full(IncrementalEngineIn<S>),
    /// Transient placeholder while promoting; never observable.
    Poisoned,
}

/// See the module docs. Constructed per session (serve) or per run (CLI).
pub struct QueryEngineIn<S: EffectSet> {
    state: State<S>,
}

/// [`QueryEngineIn`] over the paper's dense bit vectors — the default
/// representation of the public API.
pub type QueryEngine = QueryEngineIn<BitSet>;

impl<S: EffectSet> QueryEngineIn<S> {
    /// A lazy engine: no up-front analysis, demand-driven queries.
    pub fn new_lazy(program: Program) -> Self {
        Self::new_lazy_with(program, None, Trace::disabled())
    }

    /// [`QueryEngine::new_lazy`] with the thread count and trace handle a
    /// promotion to Full will use.
    pub fn new_lazy_with(program: Program, threads: Option<usize>, trace: Trace) -> Self {
        let memo = DemandMemoIn::new(&program);
        QueryEngineIn {
            state: State::Lazy {
                program,
                memo,
                threads,
                trace,
            },
        }
    }

    /// A full engine wrapping an already-built incremental cache.
    pub fn new_full(engine: IncrementalEngineIn<S>) -> Self {
        QueryEngineIn {
            state: State::Full(engine),
        }
    }

    /// `true` while no exhaustive solve has run (demand-driven mode).
    pub fn is_lazy(&self) -> bool {
        matches!(self.state, State::Lazy { .. })
    }

    /// The current (post-edit) program.
    pub fn program(&self) -> &Program {
        match &self.state {
            State::Lazy { program, .. } => program,
            State::Full(engine) => engine.program(),
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// `true` while the engine holds degraded (widened) *state* — only
    /// possible in Full mode after a cut-short apply. Lazy degradation is
    /// per-query (see [`QueryOutcome::degraded`]), never sticky.
    pub fn holds_degraded(&self) -> bool {
        match &self.state {
            State::Lazy { .. } => false,
            State::Full(engine) => engine.stats().degraded,
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// The wrapped incremental engine, if this session has been promoted
    /// (or was opened Full).
    pub fn engine(&self) -> Option<&IncrementalEngineIn<S>> {
        match &self.state {
            State::Full(engine) => Some(engine),
            _ => None,
        }
    }

    /// Applies one edit. Full mode delegates to
    /// [`IncrementalEngine::apply_guarded`] (incremental recompute under
    /// the guard); Lazy mode is a pure IR apply — no analysis runs — and
    /// the demand memo is discarded, which is the lazy cache's
    /// invalidation. A lazy apply is always [`IncrOutcome::Clean`] with
    /// an empty delta (nothing is solved, so nothing observable changed
    /// yet).
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected; program and
    /// memo are untouched.
    pub fn apply_guarded(
        &mut self,
        edit: &Edit,
        guard: &Guard,
    ) -> Result<IncrOutcome, EditError> {
        match &mut self.state {
            State::Lazy { program, memo, .. } => {
                let (next, _delta) = program.apply_edit(edit)?;
                *program = next;
                *memo = DemandMemoIn::new(program);
                Ok(IncrOutcome::Clean(IncrDelta::default()))
            }
            State::Full(engine) => engine.apply_guarded(edit, guard),
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// Replays a recorded edit history (the `--edits` grammar), exactly
    /// as [`IncrementalEngine::replay_history`] — but a lazy session
    /// replays at IR speed, with no analysis at all. Returns the number
    /// of edits applied.
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] naming the first entry that fails to
    /// parse, resolve, or apply; state produced by earlier entries is
    /// kept.
    pub fn replay_history<'a, I>(&mut self, history: I) -> Result<u64, ReplayError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        match &mut self.state {
            State::Full(engine) => engine.replay_history(history),
            State::Lazy { .. } => {
                let mut applied = 0u64;
                for (index, line) in history.into_iter().enumerate() {
                    let fail = |message: String| ReplayError { index, message };
                    let script = Script::parse(line).map_err(|e| fail(e.message))?;
                    for step in script.steps() {
                        let edit = step.resolve(self.program()).map_err(|e| fail(e.message))?;
                        self.apply_guarded(&edit, &Guard::unlimited())
                            .map_err(|e| fail(e.to_string()))?;
                        applied += 1;
                    }
                }
                Ok(applied)
            }
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// `MOD(s)`/`USE(s)`/`DMOD(s)`/`DUSE(s)` for one call site. Lazy mode
    /// demands exactly the slice the site depends on; Full mode reads the
    /// cache. Never fails: a cut-short lazy query degrades to the
    /// conservative answer with the reason recorded.
    pub fn site_answer(&mut self, s: CallSiteId, guard: &Guard) -> QueryOutcome<SiteAnswer> {
        match &mut self.state {
            State::Full(engine) => QueryOutcome {
                answer: SiteAnswer {
                    mods: engine.mod_site(s).to_dense(),
                    uses: engine.use_site(s).to_dense(),
                    dmod: engine.dmod_site(s).to_dense(),
                    duse: engine.duse_site(s).to_dense(),
                },
                degraded: engine
                    .stats()
                    .degraded
                    .then(|| "session holds degraded (sound, widened) results".to_owned()),
                ops: OpCounter::new(),
            },
            State::Lazy {
                program,
                memo,
                trace,
                ..
            } => {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    query_site_guarded(program, memo, s, guard, trace)
                }));
                match attempt {
                    Ok(Ok((answer, ops))) => QueryOutcome {
                        answer,
                        degraded: None,
                        ops,
                    },
                    Ok(Err(interrupt)) => QueryOutcome {
                        answer: conservative_site_answer(program, s),
                        degraded: Some(interrupt.to_string()),
                        ops: OpCounter::new(),
                    },
                    Err(payload) => {
                        // Containment mirrors the incremental engine: the
                        // memo is dropped (a panicking solver may have
                        // been interrupted anywhere) and the answer is
                        // the sound widening.
                        *memo = DemandMemoIn::new(program);
                        QueryOutcome {
                            answer: conservative_site_answer(program, s),
                            degraded: Some(format!(
                                "panic during demand query: {}",
                                panic_text(payload.as_ref())
                            )),
                            ops: OpCounter::new(),
                        }
                    }
                }
            }
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// `GMOD(p)`/`GUSE(p)` for one procedure, with the same mode split
    /// and degradation contract as [`QueryEngine::site_answer`].
    pub fn proc_answer(&mut self, p: ProcId, guard: &Guard) -> QueryOutcome<ProcAnswer> {
        match &mut self.state {
            State::Full(engine) => QueryOutcome {
                answer: ProcAnswer {
                    gmod: engine.gmod(p).to_dense(),
                    guse: engine.guse(p).to_dense(),
                },
                degraded: engine
                    .stats()
                    .degraded
                    .then(|| "session holds degraded (sound, widened) results".to_owned()),
                ops: OpCounter::new(),
            },
            State::Lazy {
                program,
                memo,
                trace,
                ..
            } => {
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    query_proc_guarded(program, memo, p, guard, trace)
                }));
                match attempt {
                    Ok(Ok((answer, ops))) => QueryOutcome {
                        answer,
                        degraded: None,
                        ops,
                    },
                    Ok(Err(interrupt)) => QueryOutcome {
                        answer: conservative_proc_answer(program, p),
                        degraded: Some(interrupt.to_string()),
                        ops: OpCounter::new(),
                    },
                    Err(payload) => {
                        *memo = DemandMemoIn::new(program);
                        QueryOutcome {
                            answer: conservative_proc_answer(program, p),
                            degraded: Some(format!(
                                "panic during demand query: {}",
                                panic_text(payload.as_ref())
                            )),
                            ops: OpCounter::new(),
                        }
                    }
                }
            }
            State::Poisoned => unreachable!("promotion never escapes"),
        }
    }

    /// Every site's sets — the `query all` target. A lazy session is
    /// first *promoted*: one exhaustive incremental build replaces the
    /// demand memo, and the session stays Full (subsequent point queries
    /// are cache reads, subsequent edits recompute incrementally).
    pub fn all_sets(&mut self) -> SiteSets {
        self.promote();
        match &self.state {
            State::Full(engine) => SiteSets::from_engine(engine),
            _ => unreachable!("promote() always lands in Full"),
        }
    }

    /// Promotes a lazy session to Full by running the exhaustive
    /// analysis with the configured threads and trace. No-op when
    /// already Full.
    pub fn promote(&mut self) {
        if let State::Full(_) = self.state {
            return;
        }
        let state = std::mem::replace(&mut self.state, State::Poisoned);
        let State::Lazy {
            program,
            threads,
            trace,
            ..
        } = state
        else {
            unreachable!("promotion never escapes");
        };
        let mut analyzer = Analyzer::new();
        analyzer.with_trace(trace);
        if let Some(t) = threads {
            analyzer.threads(t);
        }
        self.state = State::Full(analyzer.incremental_in::<S>(program));
    }
}

/// A [`QueryEngineIn`] over whichever set representation a [`SetRepr`]
/// knob picked at construction time — the dispatch point `modref serve`
/// sessions and the CLI's `--query` path use so one `--set-repr` flag
/// covers the demand memo, the incremental caches, and every per-node
/// row behind them. Answers are always dense ([`SiteAnswer`] /
/// [`ProcAnswer`]), so consumers are representation-blind.
pub enum AnyQueryEngine {
    /// The paper's dense bit vectors (the default).
    Dense(QueryEngineIn<BitSet>),
    /// The hybrid small/spilled representation.
    Hybrid(QueryEngineIn<HybridSet>),
}

impl AnyQueryEngine {
    /// A lazy engine over the representation `repr` selects for this
    /// program's universe (no size hint: a demand session cannot know
    /// its answer sizes up front).
    pub fn new_lazy_with(
        program: Program,
        threads: Option<usize>,
        trace: Trace,
        repr: SetRepr,
    ) -> Self {
        if repr.use_hybrid(program.num_vars(), None) {
            AnyQueryEngine::Hybrid(QueryEngineIn::new_lazy_with(program, threads, trace))
        } else {
            AnyQueryEngine::Dense(QueryEngineIn::new_lazy_with(program, threads, trace))
        }
    }

    /// A full engine: runs the exhaustive initial analysis with
    /// `analyzer`'s threads and trace, over the representation `repr`
    /// selects.
    pub fn new_full_with(analyzer: &Analyzer, program: Program, repr: SetRepr) -> Self {
        if repr.use_hybrid(program.num_vars(), None) {
            AnyQueryEngine::Hybrid(QueryEngineIn::new_full(
                analyzer.incremental_in::<HybridSet>(program),
            ))
        } else {
            AnyQueryEngine::Dense(QueryEngineIn::new_full(
                analyzer.incremental_in::<BitSet>(program),
            ))
        }
    }

    /// Wraps an already-built dense engine (journal recovery rebuilds
    /// dense so its bit-identity check runs against the dense goldens).
    pub fn from_dense_full(engine: IncrementalEngineIn<BitSet>) -> Self {
        AnyQueryEngine::Dense(QueryEngineIn::new_full(engine))
    }

    /// `"dense"` or `"hybrid"` — which representation this engine runs.
    pub fn repr_name(&self) -> &'static str {
        match self {
            AnyQueryEngine::Dense(_) => BitSet::REPR_NAME,
            AnyQueryEngine::Hybrid(_) => HybridSet::REPR_NAME,
        }
    }

    /// See [`QueryEngineIn::program`].
    pub fn program(&self) -> &Program {
        match self {
            AnyQueryEngine::Dense(e) => e.program(),
            AnyQueryEngine::Hybrid(e) => e.program(),
        }
    }

    /// See [`QueryEngineIn::is_lazy`].
    pub fn is_lazy(&self) -> bool {
        match self {
            AnyQueryEngine::Dense(e) => e.is_lazy(),
            AnyQueryEngine::Hybrid(e) => e.is_lazy(),
        }
    }

    /// See [`QueryEngineIn::holds_degraded`].
    pub fn holds_degraded(&self) -> bool {
        match self {
            AnyQueryEngine::Dense(e) => e.holds_degraded(),
            AnyQueryEngine::Hybrid(e) => e.holds_degraded(),
        }
    }

    /// See [`QueryEngineIn::apply_guarded`].
    ///
    /// # Errors
    ///
    /// Returns the [`EditError`] if the edit is rejected.
    pub fn apply_guarded(
        &mut self,
        edit: &Edit,
        guard: &Guard,
    ) -> Result<IncrOutcome, EditError> {
        match self {
            AnyQueryEngine::Dense(e) => e.apply_guarded(edit, guard),
            AnyQueryEngine::Hybrid(e) => e.apply_guarded(edit, guard),
        }
    }

    /// See [`QueryEngineIn::replay_history`].
    ///
    /// # Errors
    ///
    /// Returns a [`ReplayError`] naming the first failing entry.
    pub fn replay_history<'a, I>(&mut self, history: I) -> Result<u64, ReplayError>
    where
        I: IntoIterator<Item = &'a str>,
    {
        match self {
            AnyQueryEngine::Dense(e) => e.replay_history(history),
            AnyQueryEngine::Hybrid(e) => e.replay_history(history),
        }
    }

    /// See [`QueryEngineIn::site_answer`].
    pub fn site_answer(&mut self, s: CallSiteId, guard: &Guard) -> QueryOutcome<SiteAnswer> {
        match self {
            AnyQueryEngine::Dense(e) => e.site_answer(s, guard),
            AnyQueryEngine::Hybrid(e) => e.site_answer(s, guard),
        }
    }

    /// See [`QueryEngineIn::proc_answer`].
    pub fn proc_answer(&mut self, p: ProcId, guard: &Guard) -> QueryOutcome<ProcAnswer> {
        match self {
            AnyQueryEngine::Dense(e) => e.proc_answer(p, guard),
            AnyQueryEngine::Hybrid(e) => e.proc_answer(p, guard),
        }
    }

    /// See [`QueryEngineIn::all_sets`].
    pub fn all_sets(&mut self) -> SiteSets {
        match self {
            AnyQueryEngine::Dense(e) => e.all_sets(),
            AnyQueryEngine::Hybrid(e) => e.all_sets(),
        }
    }

    /// See [`QueryEngineIn::promote`].
    pub fn promote(&mut self) {
        match self {
            AnyQueryEngine::Dense(e) => e.promote(),
            AnyQueryEngine::Hybrid(e) => e.promote(),
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::IncrementalEngine;
    use modref_ir::{Expr, ProgramBuilder};

    fn sample() -> (Program, CallSiteId, ProcId) {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::constant(1));
        let main = b.main();
        let s = b.call(main, p, &[g]);
        (b.finish().expect("valid"), s, p)
    }

    #[test]
    fn lazy_and_full_agree_on_point_queries() {
        let (program, s, p) = sample();
        let guard = Guard::unlimited();
        let mut lazy = QueryEngine::new_lazy(program.clone());
        let mut full = QueryEngine::new_full(IncrementalEngine::new(program));
        let (ls, fs) = (lazy.site_answer(s, &guard), full.site_answer(s, &guard));
        assert_eq!(ls.answer, fs.answer);
        assert!(ls.degraded.is_none() && fs.degraded.is_none());
        let (lp, fp) = (lazy.proc_answer(p, &guard), full.proc_answer(p, &guard));
        assert_eq!(lp.answer, fp.answer);
    }

    #[test]
    fn lazy_edit_invalidates_and_requeries_exactly() {
        let (program, s, _p) = sample();
        let guard = Guard::unlimited();
        let h = program
            .vars()
            .find(|&v| program.var_name(v) == "g")
            .expect("g exists");
        let target = program
            .procs()
            .find(|&p| program.proc_name(p) == "p")
            .expect("p exists");
        let edit = Edit::SetLocalEffects {
            proc_: target,
            mods: vec![],
            uses: vec![h],
        };
        let mut lazy = QueryEngine::new_lazy(program.clone());
        let _ = lazy.site_answer(s, &guard); // warm the memo
        lazy.apply_guarded(&edit, &guard).expect("edit applies");
        let mut full = QueryEngine::new_full(IncrementalEngine::new(program));
        full.apply_guarded(&edit, &guard).expect("edit applies");
        assert_eq!(
            lazy.site_answer(s, &guard).answer,
            full.site_answer(s, &guard).answer
        );
    }

    #[test]
    fn all_query_promotes_and_matches_full() {
        let (program, s, _p) = sample();
        let guard = Guard::unlimited();
        let mut lazy = QueryEngine::new_lazy(program.clone());
        assert!(lazy.is_lazy());
        let promoted = lazy.all_sets();
        assert!(!lazy.is_lazy());
        let full = SiteSets::from_engine(&IncrementalEngine::new(program));
        assert_eq!(promoted.mods, full.mods);
        assert_eq!(promoted.uses, full.uses);
        assert_eq!(promoted.dmods, full.dmods);
        // Still answers point queries (now from the cache).
        assert!(lazy.site_answer(s, &guard).degraded.is_none());
    }

    #[test]
    fn interrupted_lazy_query_degrades_soundly() {
        let (program, s, _p) = sample();
        let mut lazy = QueryEngine::new_lazy(program.clone());
        let tight = Guard::new(&modref_core::Budget::unlimited().with_bitvec_steps(0));
        let out = lazy.site_answer(s, &tight);
        assert!(out.degraded.is_some());
        let guard = Guard::unlimited();
        let exact = QueryEngine::new_full(IncrementalEngine::new(program))
            .site_answer(s, &guard)
            .answer;
        assert!(exact.mods.is_subset(&out.answer.mods));
        assert!(exact.uses.is_subset(&out.answer.uses));
        // And the same engine answers exactly once the pressure is gone.
        assert_eq!(lazy.site_answer(s, &guard).answer, exact);
    }
}
