//! Incremental MOD/USE summaries — cached, edit-driven recomputation.
//!
//! The batch pipeline ([`modref_core::Analyzer`]) answers "what does this
//! *program* mod and use"; this crate answers the question an editor or
//! build server actually asks: "the program just *changed* — what do the
//! summaries look like now?" An [`IncrementalEngine`] keeps the full
//! per-phase state of Cooper–Kennedy's linear-time analysis — flat and
//! extended `LMOD`/`LUSE`, the Figure 1 `RMOD`/`RUSE` sweep over the
//! binding multi-graph's condensation, the per-component `GMOD`/`GUSE`
//! fixpoints of the level schedule, and the per-site projections — and,
//! for each typed [`Edit`], recomputes only the pieces the edit
//! invalidates. The invariant, enforced by an exhaustive differential rig
//! (`tests/incr_equiv.rs`), is strict: after **every** edit the engine's
//! results are bit-identical to a from-scratch run on the edited program,
//! at every thread count.
//!
//! Three layers:
//!
//! * [`engine`] — the cache, the dirty-set propagation over the two
//!   condensations ([`modref_graph::DirtySweep`]), and the guarded apply
//!   path that degrades soundly (conservative sets, cache dropped) on a
//!   budget trip or contained panic;
//! * [`script`] — a tiny text format for edit scripts (`analyze --edits`
//!   in the CLI) plus [`EditGen`], the seeded random edit generator the
//!   property suite and the `incrscale` bench share;
//! * [`render`] — the one shared renderer for per-site `MOD`/`DMOD`/`USE`
//!   reports (text and JSON), used byte-identically by the CLI and the
//!   `modref-serve` daemon;
//! * [`query`] — the [`QueryEngine`] front door that answers point
//!   queries either from the warm incremental cache (Full mode) or by
//!   demand-driven lazy resolution over `modref_core::demand` (Lazy
//!   mode), with promotion on `all` queries;
//! * re-exports of the edit vocabulary ([`Edit`], [`EditDelta`],
//!   [`EditError`]) so consumers need only this crate.

pub mod engine;
pub mod query;
pub mod render;
pub mod script;

pub use engine::{
    IncrDegradeReason, IncrDelta, IncrOutcome, IncrStats, IncrementalEngine, IncrementalEngineIn,
    IncrementalExt, ReplayError,
};
pub use modref_ir::{Edit, EditDelta, EditError};
pub use query::{AnyQueryEngine, QueryEngine, QueryEngineIn, QueryOutcome};
pub use render::SiteSets;
pub use script::{EditGen, Script, ScriptError};
