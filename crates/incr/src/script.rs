//! Edit scripts: a small text format plus a seeded random generator.
//!
//! The text format drives `modref analyze --edits <file>`; the generator
//! ([`EditGen`]) drives the differential property suite and the
//! `incrscale` bench. Both produce the same typed [`Edit`] values the
//! engine consumes, so a failing random script can be written down as a
//! text script and replayed by hand.
//!
//! # Grammar
//!
//! One edit per line; blank lines and `#` comments are skipped. Names
//! refer to the *current* program (each step sees the program after the
//! previous steps), and site indices are current [`CallSiteId`] values:
//!
//! ```text
//! set-local p mod=g,h use=k      # rewrite p's local effects
//! add-call main p args=g,3       # append `call p(g, 3)` to main
//! remove-call 2                  # remove call site 2
//! add-proc helper parent=main formals=x,y
//! remove-proc helper             # must be call-free first
//! rebind 0 1 h                   # site 0, argument 1, now passes h
//! ```
//!
//! A bare integer argument (`3` above) is passed by value; a name is a
//! by-reference scalar actual.

use modref_ir::{Actual, CallSiteId, Edit, Expr, ProcId, Program, Ref, VarId};

/// A parse or resolution failure, with the 1-based script line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptError {
    /// 1-based line number in the script text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScriptError {}

fn err(line: usize, message: impl Into<String>) -> ScriptError {
    ScriptError {
        line,
        message: message.into(),
    }
}

/// One parsed (but unresolved) step: names stay names until the step is
/// resolved against the program state it applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScriptStep {
    /// 1-based source line, for error reporting.
    pub line: usize,
    op: Op,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    SetLocal {
        proc_: String,
        mods: Vec<String>,
        uses: Vec<String>,
    },
    AddCall {
        caller: String,
        callee: String,
        args: Vec<String>,
    },
    RemoveCall {
        site: usize,
    },
    AddProc {
        name: String,
        parent: String,
        formals: Vec<String>,
    },
    RemoveProc {
        name: String,
    },
    Rebind {
        site: usize,
        position: usize,
        arg: String,
    },
}

/// A parsed edit script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Script {
    steps: Vec<ScriptStep>,
}

impl Script {
    /// Parses the text format. Only syntax is checked here; names and
    /// site indices are resolved step by step during application, since
    /// each step sees the program produced by the previous ones.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line.
    pub fn parse(text: &str) -> Result<Self, ScriptError> {
        let mut steps = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let verb = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            let op = match verb {
                "set-local" => {
                    let (names, opts) = split_options(line, &rest)?;
                    let [proc_] = positional(line, verb, &names, 1)?;
                    Op::SetLocal {
                        proc_,
                        mods: list_option(line, &opts, "mod")?,
                        uses: list_option(line, &opts, "use")?,
                    }
                }
                "add-call" => {
                    let (names, opts) = split_options(line, &rest)?;
                    let [caller, callee] = positional(line, verb, &names, 2)?;
                    Op::AddCall {
                        caller,
                        callee,
                        args: list_option(line, &opts, "args")?,
                    }
                }
                "remove-call" => {
                    let (names, _) = split_options(line, &rest)?;
                    let [site] = positional(line, verb, &names, 1)?;
                    Op::RemoveCall {
                        site: parse_index(line, &site, "site index")?,
                    }
                }
                "add-proc" => {
                    let (names, opts) = split_options(line, &rest)?;
                    let [name] = positional(line, verb, &names, 1)?;
                    let parent = opts
                        .iter()
                        .find(|(k, _)| k == "parent")
                        .map(|(_, v)| v.clone())
                        .ok_or_else(|| err(line, "add-proc needs parent=<proc>"))?;
                    Op::AddProc {
                        name,
                        parent,
                        formals: list_option(line, &opts, "formals")?,
                    }
                }
                "remove-proc" => {
                    let (names, _) = split_options(line, &rest)?;
                    let [name] = positional(line, verb, &names, 1)?;
                    Op::RemoveProc { name }
                }
                "rebind" => {
                    let (names, _) = split_options(line, &rest)?;
                    let [site, position, arg] = positional(line, verb, &names, 3)?;
                    Op::Rebind {
                        site: parse_index(line, &site, "site index")?,
                        position: parse_index(line, &position, "argument position")?,
                        arg,
                    }
                }
                other => return Err(err(line, format!("unknown edit verb `{other}`"))),
            };
            steps.push(ScriptStep { line, op });
        }
        Ok(Script { steps })
    }

    /// The parsed steps, in order.
    pub fn steps(&self) -> &[ScriptStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for a script with no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

fn split_options(
    line: usize,
    tokens: &[&str],
) -> Result<(Vec<String>, Vec<(String, String)>), ScriptError> {
    let mut names = Vec::new();
    let mut opts = Vec::new();
    for &t in tokens {
        if let Some((k, v)) = t.split_once('=') {
            if k.is_empty() {
                return Err(err(line, format!("malformed option `{t}`")));
            }
            opts.push((k.to_string(), v.to_string()));
        } else {
            names.push(t.to_string());
        }
    }
    Ok((names, opts))
}

fn positional<const N: usize>(
    line: usize,
    verb: &str,
    names: &[String],
    want: usize,
) -> Result<[String; N], ScriptError> {
    debug_assert_eq!(N, want);
    if names.len() != want {
        return Err(err(
            line,
            format!("`{verb}` takes {want} positional operand(s), got {}", names.len()),
        ));
    }
    Ok(std::array::from_fn(|i| names[i].clone()))
}

fn list_option(
    line: usize,
    opts: &[(String, String)],
    key: &str,
) -> Result<Vec<String>, ScriptError> {
    let mut out = Vec::new();
    for (k, v) in opts {
        if k == key {
            if v.is_empty() {
                return Err(err(line, format!("empty `{key}=` list")));
            }
            out.extend(v.split(',').map(|s| s.trim().to_string()));
        }
    }
    Ok(out)
}

fn parse_index(line: usize, token: &str, what: &str) -> Result<usize, ScriptError> {
    token
        .parse::<usize>()
        .map_err(|_| err(line, format!("`{token}` is not a {what}")))
}

impl ScriptStep {
    /// Resolves names against `program` into a typed [`Edit`].
    ///
    /// Variable names prefer the global of that name, then a variable
    /// owned by the procedure the step concerns; an ambiguous or unknown
    /// name is an error. A token that parses as an integer denotes a
    /// by-value constant actual.
    ///
    /// # Errors
    ///
    /// Returns the unresolved name or out-of-range index, tagged with the
    /// step's script line.
    pub fn resolve(&self, program: &Program) -> Result<Edit, ScriptError> {
        let line = self.line;
        match &self.op {
            Op::SetLocal { proc_, mods, uses } => {
                let p = find_proc(program, proc_, line)?;
                Ok(Edit::SetLocalEffects {
                    proc_: p,
                    mods: resolve_vars(program, p, mods, line)?,
                    uses: resolve_vars(program, p, uses, line)?,
                })
            }
            Op::AddCall {
                caller,
                callee,
                args,
            } => {
                let caller = find_proc(program, caller, line)?;
                let callee = find_proc(program, callee, line)?;
                let mut actuals = Vec::with_capacity(args.len());
                for a in args {
                    actuals.push(resolve_actual(program, caller, a, line)?);
                }
                Ok(Edit::AddCallSite {
                    caller,
                    callee,
                    args: actuals,
                })
            }
            Op::RemoveCall { site } => Ok(Edit::RemoveCallSite {
                site: find_site(program, *site, line)?,
            }),
            Op::AddProc {
                name,
                parent,
                formals,
            } => Ok(Edit::AddProcedure {
                name: name.clone(),
                parent: find_proc(program, parent, line)?,
                formals: formals.clone(),
            }),
            Op::RemoveProc { name } => Ok(Edit::RemoveProcedure {
                proc_: find_proc(program, name, line)?,
            }),
            Op::Rebind {
                site,
                position,
                arg,
            } => {
                let site = find_site(program, *site, line)?;
                let caller = program.site(site).caller();
                Ok(Edit::RebindActual {
                    site,
                    position: *position,
                    actual: resolve_actual(program, caller, arg, line)?,
                })
            }
        }
    }
}

fn find_proc(program: &Program, name: &str, line: usize) -> Result<ProcId, ScriptError> {
    let mut found = None;
    for p in program.procs() {
        if program.symbols().resolve(program.proc_(p).name()) == name {
            if found.is_some() {
                return Err(err(line, format!("procedure name `{name}` is ambiguous")));
            }
            found = Some(p);
        }
    }
    found.ok_or_else(|| err(line, format!("unknown procedure `{name}`")))
}

fn find_site(program: &Program, index: usize, line: usize) -> Result<CallSiteId, ScriptError> {
    if index >= program.num_sites() {
        return Err(err(
            line,
            format!(
                "call site {index} out of range (program has {})",
                program.num_sites()
            ),
        ));
    }
    Ok(CallSiteId::new(index))
}

/// Name lookup for variables: the global of that name wins, then a
/// variable owned by `context`; anything else must be globally unique.
fn find_var(
    program: &Program,
    context: ProcId,
    name: &str,
    line: usize,
) -> Result<VarId, ScriptError> {
    let mut global = None;
    let mut owned = None;
    let mut other = Vec::new();
    for v in program.vars() {
        let info = program.var(v);
        if program.symbols().resolve(info.name()) != name {
            continue;
        }
        match info.owner() {
            None => global = Some(v),
            Some(p) if p == context => owned = Some(v),
            Some(_) => other.push(v),
        }
    }
    if let Some(v) = global.or(owned) {
        return Ok(v);
    }
    match other.len() {
        0 => Err(err(line, format!("unknown variable `{name}`"))),
        1 => Ok(other[0]),
        _ => Err(err(line, format!("variable name `{name}` is ambiguous"))),
    }
}

fn resolve_vars(
    program: &Program,
    context: ProcId,
    names: &[String],
    line: usize,
) -> Result<Vec<VarId>, ScriptError> {
    names
        .iter()
        .map(|n| find_var(program, context, n, line))
        .collect()
}

fn resolve_actual(
    program: &Program,
    caller: ProcId,
    token: &str,
    line: usize,
) -> Result<Actual, ScriptError> {
    if let Ok(value) = token.parse::<i64>() {
        return Ok(Actual::Value(Expr::constant(value)));
    }
    Ok(Actual::Ref(Ref::scalar(find_var(
        program, caller, token, line,
    )?)))
}

/// A seeded random edit generator (splitmix64, no external crates —
/// the same replayability contract as the `property!` harness: one `u64`
/// seed determines the whole script).
///
/// The generator aims for *mostly valid* edits — it respects visibility
/// and rank where cheap to do so — but makes no guarantee: callers skip
/// the occasional [`EditError`], which doubles as coverage of the
/// reject-leaves-state-intact path.
#[derive(Debug, Clone)]
pub struct EditGen {
    state: u64,
    fresh: u32,
}

impl EditGen {
    /// A generator whose whole output is determined by `seed`.
    pub fn new(seed: u64) -> Self {
        EditGen {
            state: seed,
            fresh: 0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 (public domain), as used by the check harness.
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// The next edit for the *current* state of `program`. Always returns
    /// an edit; when a rolled kind has no applicable target (no removable
    /// procedure, no call site), it falls back to a `set-local` edit,
    /// which is always available.
    pub fn next_edit(&mut self, program: &Program) -> Edit {
        let roll = self.pick(100);
        if roll < 45 {
            self.gen_set_local(program)
        } else if roll < 65 {
            self.gen_add_call(program)
        } else if roll < 75 {
            self.gen_remove_call(program)
                .unwrap_or_else(|| self.gen_set_local(program))
        } else if roll < 85 {
            self.gen_rebind(program)
                .unwrap_or_else(|| self.gen_set_local(program))
        } else if roll < 93 {
            self.gen_add_proc(program)
        } else {
            self.gen_remove_proc(program)
                .unwrap_or_else(|| self.gen_set_local(program))
        }
    }

    /// Like [`EditGen::next_edit`] but heavily biased toward *structural*
    /// edits — call insertion/removal, rebinding, procedure churn — the
    /// diet that exercises the engine's dynamic-condensation patch path
    /// (merges, splits, level reorders) instead of its set-local fast
    /// path. Set-local edits still appear (and are the fallback when a
    /// rolled kind has no target) so value and structure dirt interleave.
    pub fn next_structural_edit(&mut self, program: &Program) -> Edit {
        let roll = self.pick(100);
        if roll < 10 {
            self.gen_set_local(program)
        } else if roll < 45 {
            self.gen_add_call(program)
        } else if roll < 65 {
            self.gen_remove_call(program)
                .unwrap_or_else(|| self.gen_add_call(program))
        } else if roll < 80 {
            self.gen_rebind(program)
                .unwrap_or_else(|| self.gen_add_call(program))
        } else if roll < 90 {
            self.gen_add_proc(program)
        } else {
            self.gen_remove_proc(program)
                .unwrap_or_else(|| self.gen_add_call(program))
        }
    }

    fn random_proc(&mut self, program: &Program) -> ProcId {
        let n = program.num_procs();
        ProcId::new(self.pick(n))
    }

    /// Scalar variables visible in `p` — the safe pool for `set-local`
    /// targets and by-reference actuals.
    fn scalar_pool(&self, program: &Program, p: ProcId) -> Vec<VarId> {
        program
            .visible_set(p)
            .iter()
            .map(VarId::new)
            .filter(|&v| program.var(v).rank() == 0)
            .collect()
    }

    fn gen_set_local(&mut self, program: &Program) -> Edit {
        let p = self.random_proc(program);
        let pool = self.scalar_pool(program, p);
        let take = |gen: &mut Self, max: usize| -> Vec<VarId> {
            if pool.is_empty() {
                return Vec::new();
            }
            let count = gen.pick(max + 1);
            (0..count).map(|_| pool[gen.pick(pool.len())]).collect()
        };
        let mods = take(self, 3);
        let uses = take(self, 3);
        Edit::SetLocalEffects {
            proc_: p,
            mods,
            uses,
        }
    }

    fn gen_add_call(&mut self, program: &Program) -> Edit {
        let caller = self.random_proc(program);
        // Candidate callees whose declaring parent is the caller itself
        // or one of its ancestors — the nesting-visibility rule — so the
        // edit usually validates.
        let mut ancestors = vec![caller];
        let mut cur = caller;
        while let Some(parent) = program.proc_(cur).parent() {
            ancestors.push(parent);
            cur = parent;
        }
        let candidates: Vec<ProcId> = program
            .procs()
            .filter(|&q| {
                q != ProcId::MAIN
                    && program
                        .proc_(q)
                        .parent()
                        .is_some_and(|par| ancestors.contains(&par))
            })
            .collect();
        if candidates.is_empty() {
            return self.gen_set_local(program);
        }
        let callee = candidates[self.pick(candidates.len())];
        let pool = self.scalar_pool(program, caller);
        let args: Vec<Actual> = program
            .proc_(callee)
            .formals()
            .iter()
            .map(|_| {
                if pool.is_empty() || self.pick(4) == 0 {
                    Actual::Value(Expr::constant(self.pick(10) as i64))
                } else {
                    Actual::Ref(Ref::scalar(pool[self.pick(pool.len())]))
                }
            })
            .collect();
        Edit::AddCallSite {
            caller,
            callee,
            args,
        }
    }

    fn gen_remove_call(&mut self, program: &Program) -> Option<Edit> {
        let ns = program.num_sites();
        if ns == 0 {
            return None;
        }
        Some(Edit::RemoveCallSite {
            site: CallSiteId::new(self.pick(ns)),
        })
    }

    fn gen_rebind(&mut self, program: &Program) -> Option<Edit> {
        let with_args: Vec<CallSiteId> = program
            .sites()
            .filter(|&s| !program.site(s).args().is_empty())
            .collect();
        if with_args.is_empty() {
            return None;
        }
        let site = with_args[self.pick(with_args.len())];
        let call = program.site(site);
        let position = self.pick(call.args().len());
        let pool = self.scalar_pool(program, call.caller());
        let actual = if pool.is_empty() || self.pick(4) == 0 {
            Actual::Value(Expr::constant(self.pick(10) as i64))
        } else {
            Actual::Ref(Ref::scalar(pool[self.pick(pool.len())]))
        };
        Some(Edit::RebindActual {
            site,
            position,
            actual,
        })
    }

    fn gen_add_proc(&mut self, program: &Program) -> Edit {
        let parent = self.random_proc(program);
        self.fresh += 1;
        let formal_names = ["fa", "fb", "fc"];
        let count = self.pick(3);
        Edit::AddProcedure {
            name: format!("gen{}", self.fresh),
            parent,
            formals: formal_names[..count].iter().map(|s| s.to_string()).collect(),
        }
    }

    fn gen_remove_proc(&mut self, program: &Program) -> Option<Edit> {
        // Removable: not main, no nested procedures, call-free on both
        // sides (no site targets it, no site lives in it).
        let mut involved = vec![false; program.num_procs()];
        for s in program.sites() {
            let site = program.site(s);
            involved[site.caller().index()] = true;
            involved[site.callee().index()] = true;
        }
        let candidates: Vec<ProcId> = program
            .procs()
            .filter(|&p| {
                p != ProcId::MAIN
                    && !involved[p.index()]
                    && program.proc_(p).children().is_empty()
            })
            .collect();
        if candidates.is_empty() {
            return None;
        }
        Some(Edit::RemoveProcedure {
            proc_: candidates[self.pick(candidates.len())],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modref_ir::ProgramBuilder;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let g = b.global("g");
        let p = b.proc_("p", &["x"]);
        b.assign(p, b.formal(p, 0), Expr::constant(1));
        let main = b.main();
        b.call(main, p, &[g]);
        b.finish().expect("valid")
    }

    #[test]
    fn parses_and_resolves_every_verb() {
        let program = sample();
        let text = "\
# a comment
set-local p mod=g use=x

add-call main p args=g
add-call main p args=7   # by-value constant
remove-call 0
add-proc helper parent=main formals=a,b
remove-proc helper
rebind 0 0 g
";
        let script = Script::parse(text).expect("parses");
        assert_eq!(script.len(), 7);
        // Each step resolves against the program state it applies to.
        let mut cur = program;
        for step in script.steps() {
            let edit = step.resolve(&cur).expect("resolves");
            let (next, _) = cur.apply_edit(&edit).expect("applies");
            cur = next;
        }
    }

    #[test]
    fn set_local_prefers_global_over_foreign_formal() {
        // `g` is global; `x` is p's formal. In a set-local on main, `g`
        // must resolve to the global even though p also sees it.
        let program = sample();
        let script = Script::parse("set-local main mod=g").expect("parses");
        let edit = script.steps()[0].resolve(&program).expect("resolves");
        match edit {
            Edit::SetLocalEffects { mods, .. } => {
                assert_eq!(mods.len(), 1);
                assert!(program.var(mods[0]).is_global());
            }
            other => panic!("wrong edit: {other:?}"),
        }
    }

    #[test]
    fn reports_unknown_names_with_line_numbers() {
        let program = sample();
        let script = Script::parse("\n\nset-local nosuch").expect("parses");
        let e = script.steps()[0].resolve(&program).expect_err("unknown proc");
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nosuch"));

        let bad = Script::parse("frobnicate p").expect_err("unknown verb");
        assert_eq!(bad.line, 1);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Script::parse("set-local").is_err());
        assert!(Script::parse("remove-call notanumber").is_err());
        assert!(Script::parse("add-proc q").is_err()); // missing parent=
        assert!(Script::parse("rebind 0 0").is_err());
    }

    #[test]
    fn generator_is_deterministic_and_mostly_applicable() {
        let mut a = EditGen::new(42);
        let mut b = EditGen::new(42);
        let mut program = sample();
        let mut applied = 0;
        for _ in 0..64 {
            let ea = a.next_edit(&program);
            let eb = b.next_edit(&program);
            assert_eq!(format!("{ea:?}"), format!("{eb:?}"), "same seed, same script");
            if let Ok((next, _)) = program.apply_edit(&ea) {
                program = next;
                applied += 1;
            }
        }
        // Validity is best-effort, but the generator must not be junk.
        assert!(applied >= 32, "only {applied}/64 edits applied");
    }
}
