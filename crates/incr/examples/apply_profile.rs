//! Per-phase wall profile of steady-state incremental applies — the
//! instrument behind EXPERIMENTS.md E11's copy-cost analysis. Runs the
//! `incrscale` toggle workload on one progen program with tracing on and
//! prints the aggregated `incr.phase.*` span summary.
//!
//! ```text
//! cargo run --release -p modref-incr --example apply_profile [procs] [applies]
//! ```

use modref_core::Trace;
use modref_incr::{Edit, IncrementalEngine};
use modref_ir::VarId;
use modref_progen::{generate, GenConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let procs: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1024);
    let applies: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let program = generate(&GenConfig::fortran_like(procs), 42);
    let p = program.procs().nth(1).expect("generated programs have procs");
    let pool: Vec<VarId> = program
        .visible_set(p)
        .iter()
        .map(VarId::new)
        .filter(|&v| program.var(v).rank() == 0)
        .collect();
    let a = Edit::SetLocalEffects {
        proc_: p,
        mods: vec![pool[0]],
        uses: vec![],
    };
    let b = Edit::SetLocalEffects {
        proc_: p,
        mods: vec![pool[1]],
        uses: vec![pool[0]],
    };

    let mut engine = IncrementalEngine::new(program);
    engine.apply(&a).expect("toggle edit applies");
    let trace = Trace::enabled();
    engine.with_trace(trace.clone());
    let start = std::time::Instant::now();
    for i in 0..applies {
        engine
            .apply(if i % 2 == 0 { &b } else { &a })
            .expect("toggle edit applies");
    }
    let total = start.elapsed();
    println!(
        "{applies} applies on fortran_{procs}: {:.3} ms/apply",
        total.as_secs_f64() * 1e3 / applies as f64
    );
    print!("{}", trace.export_summary());
}
