//! The dense fixed-universe [`BitSet`].

use std::fmt;

use crate::{words_for, DomainMismatch, WORD_BITS};

/// A dense set of `usize` elements drawn from a fixed universe `0..domain`.
///
/// Every set operation that combines two sets requires both operands to have
/// the same domain size; this models the paper's bit vectors, which are all
/// as long as the variable universe of the program under analysis.
///
/// # Domain-mismatch contract
///
/// The binary operations (`union_with`, `intersect_with`, …) **debug-assert**
/// that both operands share one domain. In release builds the check is
/// elided from these hot loops: a mismatch then yields an unspecified (but
/// memory-safe) result — the word loops simply stop at the shorter vector.
/// All sets produced by one analysis share the program's variable universe,
/// so the solvers never mix domains; at trust boundaries (deserialised
/// state, cross-program sets) use the fallible `try_*` variants, which
/// return a typed [`DomainMismatch`] error in every build profile.
///
/// # Examples
///
/// ```
/// use modref_bitset::BitSet;
///
/// let mut mods = BitSet::new(10);
/// mods.insert(2);
/// mods.insert(7);
/// assert!(mods.contains(2));
/// assert_eq!(mods.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BitSet {
    domain: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// Creates an empty set over the universe `0..domain`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = modref_bitset::BitSet::new(100);
    /// assert!(s.is_empty());
    /// assert_eq!(s.domain(), 100);
    /// ```
    pub fn new(domain: usize) -> Self {
        BitSet {
            domain,
            words: vec![0; words_for(domain)],
        }
    }

    /// Creates a set containing every element of the universe.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = modref_bitset::BitSet::full(70);
    /// assert_eq!(s.len(), 70);
    /// assert!(s.contains(69));
    /// ```
    pub fn full(domain: usize) -> Self {
        let mut set = BitSet {
            domain,
            words: vec![!0u64; words_for(domain)],
        };
        set.trim_tail();
        set
    }

    /// Creates a set from an iterator of elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= domain`.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = modref_bitset::BitSet::from_iter_with_domain(8, [1, 5]);
    /// assert!(s.contains(5));
    /// ```
    pub fn from_iter_with_domain<I: IntoIterator<Item = usize>>(domain: usize, iter: I) -> Self {
        let mut set = BitSet::new(domain);
        for x in iter {
            set.insert(x);
        }
        set
    }

    /// The size of the universe this set draws from.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Number of elements currently in the set.
    ///
    /// This is `O(domain / 64)`.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set contains no elements.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts `x`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.domain()`.
    pub fn insert(&mut self, x: usize) -> bool {
        self.check(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        let mask = 1u64 << b;
        let fresh = self.words[w] & mask == 0;
        self.words[w] |= mask;
        fresh
    }

    /// Removes `x`, returning `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.domain()`.
    pub fn remove(&mut self, x: usize) -> bool {
        self.check(x);
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        let mask = 1u64 << b;
        let present = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        present
    }

    /// Tests membership of `x`. Elements outside the universe are absent.
    pub fn contains(&self, x: usize) -> bool {
        if x >= self.domain {
            return false;
        }
        let (w, b) = (x / WORD_BITS, x % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self ∪= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        self.check_domains(other);
        let mut changed = false;
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// `self ∩= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        self.check_domains(other);
        let mut changed = false;
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            let next = *d & s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// `self ∖= other`; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn difference_with(&mut self, other: &BitSet) -> bool {
        self.check_domains(other);
        let mut changed = false;
        for (d, s) in self.words.iter_mut().zip(&other.words) {
            let next = *d & !s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// `self ∪= src ∖ minus` in one pass; returns `true` if `self` changed.
    ///
    /// This is the single-step form of the paper's equation (4),
    /// `GMOD[p] ∪= GMOD[q] ∖ LOCAL[q]`, and is what makes each edge of the
    /// call graph cost exactly one bit-vector step in `findgmod`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn union_with_difference(&mut self, src: &BitSet, minus: &BitSet) -> bool {
        self.check_domains(src);
        self.check_domains(minus);
        let mut changed = false;
        for ((d, s), m) in self.words.iter_mut().zip(&src.words).zip(&minus.words) {
            let next = *d | (s & !m);
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// `self ∪= src ∩ mask` in one pass; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn union_with_intersection(&mut self, src: &BitSet, mask: &BitSet) -> bool {
        self.check_domains(src);
        self.check_domains(mask);
        let mut changed = false;
        for ((d, s), m) in self.words.iter_mut().zip(&src.words).zip(&mask.words) {
            let next = *d | (s & m);
            changed |= next != *d;
            *d = next;
        }
        changed
    }

    /// Returns `true` if the two sets share no element.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.check_domains(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Returns `true` if every element of `self` is in `other`.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the domains differ; release builds elide the
    /// check (see the type-level *domain-mismatch contract*). Use the
    /// corresponding `try_*` method where a checked, typed error is needed.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.check_domains(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in ascending order.
    ///
    /// # Examples
    ///
    /// ```
    /// let s = modref_bitset::BitSet::from_iter_with_domain(200, [150, 3]);
    /// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 150]);
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Read-only view of the underlying words (for hashing/serialisation).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    fn check(&self, x: usize) {
        assert!(
            x < self.domain,
            "element {x} out of universe 0..{}",
            self.domain
        );
    }

    fn check_domains(&self, other: &BitSet) {
        debug_assert_eq!(
            self.domain, other.domain,
            "bit-set domain mismatch: {} vs {}",
            self.domain, other.domain
        );
    }

    /// Checks that `other` draws from the same universe, returning a typed
    /// error otherwise. The backbone of the `try_*` operations.
    pub fn checked_domains(&self, other: &BitSet) -> Result<(), DomainMismatch> {
        if self.domain == other.domain {
            Ok(())
        } else {
            Err(DomainMismatch {
                left: self.domain,
                right: other.domain,
            })
        }
    }

    /// Fallible [`union_with`](BitSet::union_with): checked in every build
    /// profile, returning [`DomainMismatch`] instead of asserting.
    pub fn try_union_with(&mut self, other: &BitSet) -> Result<bool, DomainMismatch> {
        self.checked_domains(other)?;
        Ok(self.union_with(other))
    }

    /// Fallible [`intersect_with`](BitSet::intersect_with).
    pub fn try_intersect_with(&mut self, other: &BitSet) -> Result<bool, DomainMismatch> {
        self.checked_domains(other)?;
        Ok(self.intersect_with(other))
    }

    /// Fallible [`difference_with`](BitSet::difference_with).
    pub fn try_difference_with(&mut self, other: &BitSet) -> Result<bool, DomainMismatch> {
        self.checked_domains(other)?;
        Ok(self.difference_with(other))
    }

    /// Fallible [`union_with_difference`](BitSet::union_with_difference).
    pub fn try_union_with_difference(
        &mut self,
        src: &BitSet,
        minus: &BitSet,
    ) -> Result<bool, DomainMismatch> {
        self.checked_domains(src)?;
        self.checked_domains(minus)?;
        Ok(self.union_with_difference(src, minus))
    }

    /// Fallible [`union_with_intersection`](BitSet::union_with_intersection).
    pub fn try_union_with_intersection(
        &mut self,
        src: &BitSet,
        mask: &BitSet,
    ) -> Result<bool, DomainMismatch> {
        self.checked_domains(src)?;
        self.checked_domains(mask)?;
        Ok(self.union_with_intersection(src, mask))
    }

    /// Fallible [`is_subset`](BitSet::is_subset).
    pub fn try_is_subset(&self, other: &BitSet) -> Result<bool, DomainMismatch> {
        self.checked_domains(other)?;
        Ok(self.is_subset(other))
    }

    /// Fallible [`is_disjoint`](BitSet::is_disjoint).
    pub fn try_is_disjoint(&self, other: &BitSet) -> Result<bool, DomainMismatch> {
        self.checked_domains(other)?;
        Ok(self.is_disjoint(other))
    }

    /// Zeroes any bits past `domain` in the last word.
    fn trim_tail(&mut self) {
        let extra = self.words.len() * WORD_BITS - self.domain;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for x in iter {
            self.insert(x);
        }
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

/// Iterator over the elements of a [`BitSet`], ascending.
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0));
        assert!(s.contains(129));
        assert!(!s.contains(64));
        assert!(s.remove(0));
        assert!(!s.remove(0));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn contains_out_of_domain_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1_000_000));
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_domain_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    #[should_panic(expected = "domain mismatch")]
    fn union_domain_mismatch_panics() {
        let mut a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_with(&b);
    }

    #[test]
    fn full_respects_domain() {
        let s = BitSet::full(67);
        assert_eq!(s.len(), 67);
        assert_eq!(s.iter().max(), Some(66));
        let e = BitSet::full(0);
        assert!(e.is_empty());
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::from_iter_with_domain(100, [1, 2]);
        let b = BitSet::from_iter_with_domain(100, [2, 3]);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn intersect_and_difference() {
        let mut a = BitSet::from_iter_with_domain(100, [1, 2, 3, 99]);
        let b = BitSet::from_iter_with_domain(100, [2, 3, 4]);
        let mut c = a.clone();
        assert!(c.intersect_with(&b));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert!(a.difference_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn union_with_difference_matches_composed_ops() {
        let mut fast = BitSet::from_iter_with_domain(256, [0, 100]);
        let src = BitSet::from_iter_with_domain(256, [100, 200, 255]);
        let minus = BitSet::from_iter_with_domain(256, [200]);
        let mut slow_tmp = src.clone();
        slow_tmp.difference_with(&minus);
        let mut slow = fast.clone();
        slow.union_with(&slow_tmp);
        assert!(fast.union_with_difference(&src, &minus));
        assert_eq!(fast, slow);
        assert!(!fast.union_with_difference(&src, &minus));
    }

    #[test]
    fn union_with_intersection_matches_composed_ops() {
        let mut fast = BitSet::from_iter_with_domain(70, [1]);
        let src = BitSet::from_iter_with_domain(70, [2, 3, 69]);
        let mask = BitSet::from_iter_with_domain(70, [3, 69]);
        assert!(fast.union_with_intersection(&src, &mask));
        assert_eq!(fast.iter().collect::<Vec<_>>(), vec![1, 3, 69]);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = BitSet::from_iter_with_domain(64, [1, 2]);
        let b = BitSet::from_iter_with_domain(64, [1, 2, 3]);
        let c = BitSet::from_iter_with_domain(64, [10]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(BitSet::new(64).is_subset(&a));
    }

    #[test]
    fn debug_is_never_empty() {
        let s = BitSet::new(8);
        assert_eq!(format!("{s:?}"), "{}");
        let mut s2 = BitSet::new(8);
        s2.insert(5);
        assert_eq!(format!("{s2:?}"), "{5}");
    }

    #[test]
    fn extend_and_into_iterator() {
        let mut s = BitSet::new(16);
        s.extend([4usize, 8, 4]);
        let via_ref: Vec<usize> = (&s).into_iter().collect();
        assert_eq!(via_ref, vec![4, 8]);
    }

    #[test]
    fn try_ops_report_domain_mismatch() {
        let mut a = BitSet::new(64);
        let b = BitSet::new(65);
        let err = DomainMismatch { left: 64, right: 65 };
        assert_eq!(a.try_union_with(&b), Err(err));
        assert_eq!(a.try_intersect_with(&b), Err(err));
        assert_eq!(a.try_difference_with(&b), Err(err));
        assert_eq!(a.try_is_subset(&b), Err(err));
        assert_eq!(a.try_is_disjoint(&b), Err(err));
        let c = BitSet::new(64);
        assert_eq!(a.try_union_with_difference(&c, &b), Err(err));
        assert_eq!(a.try_union_with_intersection(&b, &c), Err(err));
        // Matching domains succeed and report change like the panicking forms.
        let d = BitSet::from_iter_with_domain(64, [7]);
        assert_eq!(a.try_union_with(&d), Ok(true));
        assert_eq!(a.try_union_with(&d), Ok(false));
        assert!(a.contains(7));
    }

    #[test]
    fn word_boundary_domains() {
        // domain % 64 == 0 and ±1: the tail-trim and word-count edges.
        for domain in [63usize, 64, 65, 127, 128, 129] {
            let full = BitSet::full(domain);
            assert_eq!(full.len(), domain, "full len at {domain}");
            assert_eq!(full.iter().max(), Some(domain - 1));
            assert!(!full.contains(domain));

            let mut s = BitSet::new(domain);
            s.insert(domain - 1);
            assert!(s.is_subset(&full), "subset at {domain}");
            let mut t = full.clone();
            assert!(t.difference_with(&s), "difference at {domain}");
            assert_eq!(t.len(), domain - 1);
            assert!(t.is_disjoint(&s), "disjoint at {domain}");

            let mut u = BitSet::new(domain);
            assert!(u.union_with_difference(&full, &s));
            assert_eq!(u, t, "union_with_difference at {domain}");
            let mut v = BitSet::new(domain);
            assert!(v.union_with_intersection(&full, &s));
            assert_eq!(v, s, "union_with_intersection at {domain}");
            assert_eq!(words_for(domain), full.as_words().len());
        }
    }

    #[test]
    fn empty_domain_set_is_sane() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        let mut t = s.clone();
        assert!(!t.union_with(&s));
    }
}
