#![warn(missing_docs)]

//! Dense bit-vector sets for interprocedural data-flow analysis.
//!
//! The algorithms of Cooper & Kennedy (PLDI 1988) state their complexity in
//! *bit-vector steps*: whole-vector boolean operations over a universe of
//! variables that, for interprocedural problems, grows linearly with program
//! size (§1 of the paper). This crate provides the two representations every
//! solver in the workspace uses:
//!
//! * [`BitSet`] — a fixed-universe dense set of `usize` elements.
//! * [`BitMatrix`] — a rectangular array of rows over one shared universe,
//!   with the split-row operations (`or_rows`, `or_rows_masked`) that
//!   equation (4) of the paper needs (`GMOD[p] ∪= GMOD[q] ∖ LOCAL[q]`).
//!
//! Both types are plain data: no interior mutability, `Clone`/`Eq`/`Hash`,
//! and deterministic iteration in ascending element order.
//!
//! Since the solvers charge their cost model in representation-independent
//! whole-vector steps, the *representation* is swappable: the [`EffectSet`]
//! trait abstracts the set operations every solver phase uses, with two
//! implementations — dense [`BitSet`] and the sparse-friendly
//! [`HybridSet`] (inline word + sorted spill, promoting to dense past a
//! density threshold). [`SetMatrix`] is the representation-generic twin of
//! [`BitMatrix`], and [`SetRepr`] is the user-facing knob
//! (`--set-repr dense|hybrid|auto`). See `docs/SETREPR.md`.
//!
//! # Examples
//!
//! ```
//! use modref_bitset::BitSet;
//!
//! let mut a = BitSet::new(128);
//! a.insert(3);
//! a.insert(96);
//! let mut b = BitSet::new(128);
//! b.insert(96);
//! b.insert(100);
//! let changed = a.union_with(&b);
//! assert!(changed);
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 96, 100]);
//! ```

mod bitmatrix;
mod bitset;
mod counter;
mod effect;
mod hybrid;
mod matrix;

pub use bitmatrix::BitMatrix;
pub use bitset::{BitSet, Iter};
pub use counter::OpCounter;
pub use effect::{
    DomainMismatch, EffectSet, SetRepr, AUTO_DENSE_DOMAIN, AUTO_SMALL_LEN,
};
pub use hybrid::{HybridIter, HybridSet, DENSITY_DIV, INLINE_BITS, SPILL_MAX};
pub use matrix::SetMatrix;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
pub(crate) const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::words_for;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }
}
