#![warn(missing_docs)]

//! Dense bit-vector sets for interprocedural data-flow analysis.
//!
//! The algorithms of Cooper & Kennedy (PLDI 1988) state their complexity in
//! *bit-vector steps*: whole-vector boolean operations over a universe of
//! variables that, for interprocedural problems, grows linearly with program
//! size (§1 of the paper). This crate provides the two representations every
//! solver in the workspace uses:
//!
//! * [`BitSet`] — a fixed-universe dense set of `usize` elements.
//! * [`BitMatrix`] — a rectangular array of rows over one shared universe,
//!   with the split-row operations (`or_rows`, `or_rows_masked`) that
//!   equation (4) of the paper needs (`GMOD[p] ∪= GMOD[q] ∖ LOCAL[q]`).
//!
//! Both types are plain data: no interior mutability, `Clone`/`Eq`/`Hash`,
//! and deterministic iteration in ascending element order.
//!
//! # Examples
//!
//! ```
//! use modref_bitset::BitSet;
//!
//! let mut a = BitSet::new(128);
//! a.insert(3);
//! a.insert(96);
//! let mut b = BitSet::new(128);
//! b.insert(96);
//! b.insert(100);
//! let changed = a.union_with(&b);
//! assert!(changed);
//! assert_eq!(a.iter().collect::<Vec<_>>(), vec![3, 96, 100]);
//! ```

mod bitmatrix;
mod bitset;
mod counter;

pub use bitmatrix::BitMatrix;
pub use bitset::{BitSet, Iter};
pub use counter::OpCounter;

/// Number of bits per storage word.
pub(crate) const WORD_BITS: usize = 64;

/// Number of `u64` words needed to hold `bits` bits.
pub(crate) const fn words_for(bits: usize) -> usize {
    bits.div_ceil(WORD_BITS)
}

#[cfg(test)]
mod tests {
    use super::words_for;

    #[test]
    fn words_for_boundaries() {
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(1), 1);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert_eq!(words_for(128), 2);
        assert_eq!(words_for(129), 3);
    }
}
